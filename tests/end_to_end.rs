//! Cross-crate integration tests: from the variant-aware representation through
//! flattening / abstraction / simulation down to synthesis, exercising the full pipeline
//! that the paper describes.

use spi_repro::sim::{SimConfig, Simulator};
use spi_repro::synth::report::table1;
use spi_repro::synth::{baseline, design_time, from_variant_system, strategy};
use spi_repro::variants::{ExtractionPolicy, VariantChoice};
use spi_repro::workloads::{
    figure1, figure2_system, figure3_system, run_video_scenario, table1_params, table1_problem,
    tv_problem, tv_system, VideoParams, VideoScenario,
};

#[test]
fn figure1_simulates_with_data_dependent_modes() {
    // p1 tags every token with 'a', so p2 always executes mode m1 and p3 consumes the
    // produced tokens.
    let graph = figure1().expect("figure 1 builds");
    let p2 = graph.process_by_name("p2").unwrap().id();
    let report = Simulator::new(graph, SimConfig::with_horizon(300).max_executions(5))
        .run()
        .expect("simulation runs");
    assert!(report.stats.executions_of(p2) > 0);
    // Mode m1 (id 0) is the only one activated: all tokens carry tag 'a'.
    assert!(report
        .stats
        .mode_executions
        .keys()
        .filter(|(p, _)| *p == p2)
        .all(|(_, m)| m.index() == 0));
}

#[test]
fn figure2_flattening_and_synthesis_agree_on_variant_count() {
    let system = figure2_system().expect("figure 2 builds");
    let flattened = system.flatten_all().expect("all variants flatten");
    let problem = from_variant_system(&system, 15, table1_params).expect("bridge works");
    assert_eq!(flattened.len(), problem.applications().len());
    // Every flattened application validates and still contains the common processes.
    for (_, graph) in &flattened {
        assert!(graph.validate().is_ok());
        assert!(graph.process_by_name("PA").is_some());
        assert!(graph.process_by_name("PB").is_some());
    }
}

#[test]
fn table1_shape_holds_for_model_derived_costs() {
    let table = table1(&table1_problem().unwrap()).unwrap();
    let app1 = &table.rows[0];
    let app2 = &table.rows[1];
    let superposition = table.superposition().unwrap();
    let variants = table.with_variants().unwrap();

    // Qualitative shape reported by the paper.
    assert!(superposition.total > app1.total.max(app2.total));
    assert!(variants.total < superposition.total);
    assert!(variants.total > app1.total.min(app2.total));
    assert_eq!(superposition.time, app1.time + app2.time);
    assert!(variants.time < superposition.time);
    // Superposition reuses the software architecture but pays for both ASICs.
    assert_eq!(
        superposition.hardware_cost,
        app1.hardware_cost + app2.hardware_cost
    );
    assert_eq!(superposition.software_cost, app1.software_cost);
    // The variant-aware flow moves the common process into hardware.
    assert!(variants.hardware.contains(&"PA".to_string()));
}

#[test]
fn figure3_abstraction_selects_and_configures_by_user_tag() {
    for (tag, expected_configuration) in [("V1", 0usize), ("V2", 1usize)] {
        let system = figure3_system(tag).unwrap();
        let attachment = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(attachment, ExtractionPolicy::Coarse)
            .unwrap();
        let report = Simulator::new(
            abstracted.graph.clone(),
            SimConfig::with_horizon(500).max_executions(10),
        )
        .with_configurations(abstracted.configurations.clone())
        .run()
        .unwrap();
        // The abstracted process ran, and only in modes of the selected configuration.
        let set = abstracted.configuration_set();
        let executed: Vec<usize> = report
            .stats
            .mode_executions
            .keys()
            .filter(|(p, _)| *p == abstracted.process)
            .map(|(_, m)| set.configuration_of_mode(*m).unwrap())
            .collect();
        assert!(!executed.is_empty(), "variant {tag} never executed");
        assert!(executed.iter().all(|c| *c == expected_configuration));
    }
}

#[test]
fn flattened_variant_and_abstracted_process_have_consistent_latency() {
    // The coarse extracted mode latency must cover the end-to-end latency of the
    // flattened cluster it abstracts (conservative abstraction).
    let system = figure3_system("V1").unwrap();
    let attachment = system.attachment_by_name("interface1").unwrap();
    let abstracted = system
        .abstract_interface(attachment, ExtractionPolicy::Coarse)
        .unwrap();
    let interface = system.interface(attachment).unwrap();
    for (index, cluster) in interface.clusters().iter().enumerate() {
        let flat = system
            .flatten(&VariantChoice::new().with("interface1", cluster.name()))
            .unwrap();
        let entry = flat
            .process_by_name(&format!("interface1/{}/P0", cluster.name()))
            .unwrap()
            .id();
        let exit = flat
            .process_by_name(&format!("interface1/{}/P1", cluster.name()))
            .unwrap()
            .id();
        let path = spi_repro::model::timing::end_to_end_latency(&flat, entry, exit).unwrap();
        let set = abstracted.configuration_set();
        let process = abstracted.graph.process(abstracted.process).unwrap();
        let mode_latency = set.configurations()[index]
            .modes()
            .map(|m| process.mode(m).unwrap().latency())
            .next()
            .unwrap();
        assert!(mode_latency.hi() >= path.hi());
        assert!(mode_latency.lo() <= path.lo() || mode_latency.lo() == path.lo());
    }
}

#[test]
fn video_case_study_preserves_output_integrity_across_parameter_sweep() {
    for (frame_period, resume_delay) in [(15u64, 60u64), (20, 80), (30, 120)] {
        let scenario = VideoScenario {
            frame_period,
            resume_delay,
            frame_count: 40,
            // Both requests fall inside the frame stream for every swept period, so the
            // stages reconfigure twice each regardless of the period.
            requests: vec![(200, "V2"), (400, "V1")],
            ..Default::default()
        };
        let outcome = run_video_scenario(&VideoParams::default(), &scenario).unwrap();
        assert_eq!(
            outcome.fresh_frames + outcome.repeated_frames + outcome.dropped_at_input,
            outcome.frames_in
        );
        assert_eq!(outcome.reconfigurations, 4);
    }
}

#[test]
fn variant_aware_synthesis_dominates_baselines_on_the_tv_scenario() {
    let problem = tv_problem().unwrap();
    let variant_aware = strategy::variant_aware(&problem).unwrap();
    let superposition = strategy::superposition(&problem).unwrap();
    let serialized = baseline::serialization(&problem).unwrap();
    let order: Vec<&str> = problem
        .applications()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    let incremental = baseline::incremental(&problem, &order).unwrap();

    assert!(variant_aware.cost.total() <= superposition.cost.total());
    assert!(variant_aware.cost.total() <= serialized.cost.total());
    assert!(variant_aware.cost.total() <= incremental.cost.total());
    assert!(variant_aware.feasibility.feasible());
    assert!(
        design_time::joint(&problem).total <= design_time::independent(&problem).unwrap().total
    );
}

#[test]
fn tv_system_round_trips_through_the_bridge() {
    let system = tv_system().unwrap();
    let problem =
        from_variant_system(&system, 20, spi_repro::workloads::scenarios::tv_params).unwrap();
    assert_eq!(problem.applications().len(), system.variant_space().count());
    assert_eq!(
        problem.common_tasks().len(),
        system
            .common()
            .processes()
            .filter(|p| !p.is_virtual())
            .count()
    );
}
