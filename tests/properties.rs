//! Property-based tests over the core data structures and the paper's structural
//! invariants, using proptest.

use proptest::prelude::*;

use spi_repro::model::{ChannelKind, GraphBuilder, Interval};
use spi_repro::synth::{design_time, strategy, ApplicationSpec, SynthesisProblem, TaskSpec};
use spi_repro::variants::{Cluster, Interface, VariantSystem, VariantType};

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0u64..1_000, 0u64..1_000).prop_map(|(a, b)| Interval::new(a.min(b), a.max(b)).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The hull of two intervals contains both operands; intersection (when it exists)
    /// is contained in both.
    #[test]
    fn interval_hull_and_intersection_are_bounds(a in interval_strategy(), b in interval_strategy()) {
        let hull = a.hull(b);
        prop_assert!(hull.contains_interval(a));
        prop_assert!(hull.contains_interval(b));
        if let Some(meet) = a.intersect(b) {
            prop_assert!(a.contains_interval(meet));
            prop_assert!(b.contains_interval(meet));
            prop_assert!(hull.contains_interval(meet));
        }
    }

    /// Interval addition is monotone in both bounds and commutative.
    #[test]
    fn interval_addition_is_commutative_and_monotone(a in interval_strategy(), b in interval_strategy()) {
        let sum = a.add(b);
        prop_assert_eq!(sum, b.add(a));
        prop_assert!(sum.lo() >= a.lo() && sum.lo() >= b.lo());
        prop_assert!(sum.hi() >= a.hi() && sum.hi() >= b.hi());
    }

    /// A variant system with `k` interfaces of `n_i` clusters spans `prod(n_i)` variant
    /// combinations, and every combination flattens into a graph that contains the
    /// common processes plus exactly the chosen clusters' processes.
    #[test]
    fn variant_space_and_flattening_are_consistent(
        clusters_per_interface in prop::collection::vec(1usize..4, 1..3),
        cluster_size in 1usize..4,
    ) {
        let system = build_synthetic_system(&clusters_per_interface, cluster_size).unwrap();
        let expected: usize = clusters_per_interface.iter().product();
        prop_assert_eq!(system.variant_space().count(), expected);

        let common_processes = system.common().process_count();
        let flattened = system.flatten_all().unwrap();
        prop_assert_eq!(flattened.len(), expected);
        for (_, graph) in flattened {
            prop_assert!(graph.validate().is_ok());
            prop_assert_eq!(
                graph.process_count(),
                common_processes + clusters_per_interface.len() * cluster_size
            );
        }
    }

    /// On any synthesizable problem: the variant-aware optimum never costs more than
    /// the superposition of per-application optima, and the joint design time never
    /// exceeds the independent design time.
    #[test]
    fn variant_aware_never_loses_to_superposition(
        common in 1usize..4,
        variants in 2usize..4,
        seed in 0u64..50,
    ) {
        let problem = random_problem(common, variants, seed);
        let superposition = strategy::superposition(&problem).unwrap();
        let joint = strategy::variant_aware(&problem).unwrap();
        prop_assert!(joint.cost.total() <= superposition.cost.total());
        prop_assert!(joint.feasibility.feasible());
        prop_assert!(
            design_time::joint(&problem).total
                <= design_time::independent(&problem).unwrap().total
        );
    }
}

/// Builds a chain-shaped variant system with the given cluster counts per interface.
fn build_synthetic_system(
    clusters_per_interface: &[usize],
    cluster_size: usize,
) -> Result<VariantSystem, Box<dyn std::error::Error>> {
    let stages = clusters_per_interface.len() + 1;
    let mut b = GraphBuilder::new("prop_system");
    let mut previous = None;
    for stage in 0..stages {
        let process = b
            .process(format!("common{stage}"))
            .latency(Interval::point(1))
            .build()?;
        if previous.is_some() {
            let into = b.channel(format!("gap{stage}_in"), ChannelKind::Queue)?;
            let out_of = b.channel(format!("gap{stage}_out"), ChannelKind::Queue)?;
            b.connect_output(previous.unwrap(), into, Interval::point(1))?;
            b.connect_input(out_of, process, Interval::point(1))?;
        }
        previous = Some(process);
    }
    let mut system = VariantSystem::new(b.finish()?);

    for (index, clusters) in clusters_per_interface.iter().enumerate() {
        let mut interface = Interface::new(format!("if{index}"));
        interface.add_input_port("i");
        interface.add_output_port("o");
        for cluster_index in 0..*clusters {
            let name = format!("if{index}_v{cluster_index}");
            let mut cb = GraphBuilder::new(&name);
            let mut prev = None;
            for depth in 0..cluster_size {
                let process = cb
                    .process(format!("P{depth}"))
                    .latency(Interval::point(1 + depth as u64))
                    .build()?;
                if let Some(prev) = prev {
                    let channel = cb.channel(format!("c{depth}"), ChannelKind::Queue)?;
                    cb.connect_output(prev, channel, Interval::point(1))?;
                    cb.connect_input(channel, process, Interval::point(1))?;
                }
                prev = Some(process);
            }
            let mut cluster = Cluster::new(&name, cb.finish()?);
            cluster.add_input_port("i", "P0", Interval::point(1))?;
            cluster.add_output_port("o", format!("P{}", cluster_size - 1).as_str(), Interval::point(1))?;
            interface.add_cluster(cluster)?;
        }
        let attachment = system.attach_interface(interface, VariantType::Production)?;
        system.bind_input(attachment, "i", &format!("gap{}_in", index + 1))?;
        system.bind_output(attachment, "o", &format!("gap{}_out", index + 1))?;
    }
    system.validate()?;
    Ok(system)
}

/// Builds a small random-but-deterministic synthesis problem with one variant set.
fn random_problem(common: usize, variants: usize, seed: u64) -> SynthesisProblem {
    // Simple deterministic pseudo-random sequence (avoids pulling rand into the test).
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = |range: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % range
    };
    let mut problem = SynthesisProblem::new(format!("random{seed}"), 10 + next(10));
    let mut common_names = Vec::new();
    for index in 0..common {
        let name = format!("common{index}");
        problem.add_task(TaskSpec::new(
            &name,
            5 + next(15),
            100,
            15 + next(30),
            3 + next(9),
        ));
        common_names.push(name);
    }
    let mut cluster_names = Vec::new();
    for index in 0..variants {
        let name = format!("variant{index}");
        problem.add_task(TaskSpec::new(
            &name,
            30 + next(45),
            100,
            15 + next(20),
            20 + next(30),
        ));
        cluster_names.push(name);
    }
    for (index, cluster) in cluster_names.iter().enumerate() {
        let mut tasks = common_names.clone();
        tasks.push(cluster.clone());
        problem
            .add_application(ApplicationSpec::new(format!("application{index}"), tasks))
            .expect("tasks exist");
    }
    problem
}
