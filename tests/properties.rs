//! Property-style tests over the core data structures and the paper's structural
//! invariants.
//!
//! The build environment has no crates.io access, so instead of `proptest` these
//! tests drive the same properties through a deterministic case generator: a
//! seeded LCG (`Cases`) produces a few hundred pseudo-random inputs per property,
//! which keeps failures reproducible without any dependency.

use spi_repro::model::{ChannelKind, GraphBuilder, Interval, SpiGraph};
use spi_repro::synth::compiled::{CompiledProblem, IncrementalEvaluator, TaskId};
use spi_repro::synth::partition::{
    optimize, optimize_serial_reference, FeasibilityMode, SearchStrategy,
};
use spi_repro::synth::{
    cost, design_time, schedule, strategy, ApplicationSpec, Implementation, SynthesisProblem,
    TaskSpec,
};
use spi_repro::variants::{
    Cluster, Flattener, Interface, VariantChoice, VariantSpace, VariantSystem, VariantType,
};

/// Deterministic pseudo-random case generator — the shared workspace LCG.
use spi_testutil::Lcg as Cases;

/// Domain-specific draws layered over the shared generator.
trait CaseExt {
    fn interval(&mut self) -> Interval;
}

impl CaseExt for Cases {
    fn interval(&mut self) -> Interval {
        let a = self.below(1_000);
        let b = self.below(1_000);
        Interval::new(a.min(b), a.max(b)).unwrap()
    }
}

// --- interval algebra ------------------------------------------------------------

#[test]
fn interval_hull_and_intersection_are_bounds() {
    let mut cases = Cases::new(1);
    for _ in 0..256 {
        let a = cases.interval();
        let b = cases.interval();
        let hull = a.hull(b);
        assert!(hull.contains_interval(a));
        assert!(hull.contains_interval(b));
        if let Some(meet) = a.intersect(b) {
            assert!(a.contains_interval(meet));
            assert!(b.contains_interval(meet));
            assert!(hull.contains_interval(meet));
        }
    }
}

#[test]
fn interval_addition_is_commutative_and_monotone() {
    let mut cases = Cases::new(2);
    for _ in 0..256 {
        let a = cases.interval();
        let b = cases.interval();
        let sum = a.add(b);
        assert_eq!(sum, b.add(a));
        assert!(sum.lo() >= a.lo() && sum.lo() >= b.lo());
        assert!(sum.hi() >= a.hi() && sum.hi() >= b.hi());
    }
}

// --- lazy enumeration vs the eager cross product ---------------------------------

/// Builds a variant space with the given cluster counts (axis `i` is named
/// `propspace{tag}_if{i}` to keep interned names collision-free across tests).
fn space_with_axes(tag: &str, clusters_per_axis: &[usize]) -> VariantSpace {
    VariantSpace::new(
        clusters_per_axis
            .iter()
            .enumerate()
            .map(|(axis, &clusters)| {
                (
                    format!("propspace{tag}_if{axis}"),
                    (0..clusters).map(|c| format!("v{c}")).collect(),
                )
            })
            .collect(),
    )
}

#[test]
fn choices_iter_agrees_with_eager_choices_in_count_order_and_content() {
    let mut cases = Cases::new(3);
    for round in 0..64 {
        let axis_count = 1 + cases.below(4) as usize;
        let clusters: Vec<usize> = (0..axis_count)
            .map(|_| 1 + cases.below(4) as usize)
            .collect();
        let space = space_with_axes(&format!("agree{round}"), &clusters);

        let eager = space.choices();
        let lazy: Vec<VariantChoice> = space.choices_iter().collect();
        assert_eq!(
            eager.len(),
            space.count(),
            "count mismatch for {clusters:?}"
        );
        assert_eq!(eager, lazy, "order/content mismatch for {clusters:?}");
        assert_eq!(space.choices_iter().len(), eager.len());
    }
}

#[test]
fn nth_matches_indexing_into_the_eager_enumeration() {
    let space = space_with_axes("nth", &[3, 2, 4]);
    let eager = space.choices();
    for (index, expected) in eager.iter().enumerate() {
        assert_eq!(space.choices_iter().nth(index).as_ref(), Some(expected));
        assert_eq!(space.choice_at(index).as_ref(), Some(expected));
    }
    assert_eq!(space.choices_iter().nth(space.count()), None);
    assert_eq!(space.choice_at(space.count()), None);
}

#[test]
fn strided_shards_cover_the_space_exactly_once() {
    let mut cases = Cases::new(4);
    for round in 0..32 {
        let clusters: Vec<usize> = (0..1 + cases.below(3) as usize)
            .map(|_| 1 + cases.below(4) as usize)
            .collect();
        let space = space_with_axes(&format!("shard{round}"), &clusters);
        let shard_count = 1 + cases.below(5) as usize;

        let mut recombined: Vec<VariantChoice> = Vec::new();
        for shard in 0..shard_count {
            recombined.extend(space.choices_iter().skip(shard).step_by(shard_count));
        }
        recombined.sort();
        let mut expected = space.choices();
        expected.sort();
        assert_eq!(
            recombined, expected,
            "shards {shard_count} over {clusters:?} must partition the space"
        );
    }
}

#[test]
fn empty_and_collapsed_spaces_enumerate_nothing() {
    // No axes at all.
    let empty = VariantSpace::default();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.choices_iter().count(), 0);
    assert!(empty.choices().is_empty());

    // An axis without clusters collapses the product to zero.
    let collapsed = space_with_axes("collapsed", &[2, 0, 3]);
    assert_eq!(collapsed.count(), 0);
    assert_eq!(collapsed.choices_iter().len(), 0);
    assert_eq!(collapsed.choices_iter().next(), None);
    assert!(collapsed.choices().is_empty());
}

// --- variant systems: space, flattening, Flattener -------------------------------

#[test]
fn variant_space_and_flattening_are_consistent() {
    let mut cases = Cases::new(5);
    for round in 0..24 {
        let interface_count = 1 + cases.below(2) as usize;
        let clusters_per_interface: Vec<usize> = (0..interface_count)
            .map(|_| 1 + cases.below(3) as usize)
            .collect();
        let cluster_size = 1 + cases.below(3) as usize;
        let system = build_synthetic_system(round, &clusters_per_interface, cluster_size).unwrap();
        let expected: usize = clusters_per_interface.iter().product();
        assert_eq!(system.variant_space().count(), expected);

        let common_processes = system.common().process_count();
        let flattened = system.flatten_all().unwrap();
        assert_eq!(flattened.len(), expected);
        for (_, graph) in flattened {
            assert!(graph.validate().is_ok());
            assert_eq!(
                graph.process_count(),
                common_processes + clusters_per_interface.len() * cluster_size
            );
        }
    }
}

#[test]
fn flattener_agrees_with_legacy_flatten_everywhere() {
    let mut cases = Cases::new(6);
    for round in 0..16 {
        let clusters_per_interface: Vec<usize> = (0..1 + cases.below(2) as usize)
            .map(|_| 1 + cases.below(3) as usize)
            .collect();
        let cluster_size = 1 + cases.below(2) as usize;
        let system =
            build_synthetic_system(100 + round, &clusters_per_interface, cluster_size).unwrap();

        let flattener = Flattener::new(&system).unwrap();
        let mut scratch = SpiGraph::new("");
        for (index, choice) in system.variant_space().choices_iter().enumerate() {
            let legacy = system.flatten(&choice).unwrap();
            let fast = flattener.flatten(&choice).unwrap();
            assert_eq!(legacy, fast, "combination {index} diverged");
            flattener.flatten_into(&choice, &mut scratch).unwrap();
            assert_eq!(legacy, scratch, "flatten_into diverged at {index}");
            let (decoded, indexed) = flattener.flatten_at(index).unwrap();
            assert_eq!(decoded, choice);
            assert_eq!(legacy, indexed, "flatten_at diverged at {index}");
        }
    }
}

// --- synthesis dominance ---------------------------------------------------------

#[test]
fn variant_aware_never_loses_to_superposition() {
    let mut cases = Cases::new(7);
    for _ in 0..48 {
        let common = 1 + cases.below(3) as usize;
        let variants = 2 + cases.below(2) as usize;
        let seed = cases.below(50);
        let problem = random_problem(common, variants, seed);
        let superposition = strategy::superposition(&problem).unwrap();
        let joint = strategy::variant_aware(&problem).unwrap();
        assert!(joint.cost.total() <= superposition.cost.total());
        assert!(joint.feasibility.feasible());
        assert!(
            design_time::joint(&problem).total <= design_time::independent(&problem).unwrap().total
        );
    }
}

// --- search differential: branch-and-bound vs the serial oracle ------------------

/// On seeded random problems, branch-and-bound must return the bit-identical optimum
/// — same mapping, same cost breakdown, same `(total, hw-count, Reverse(mask))`
/// tie-break — as the retained string-keyed serial exhaustive reference, under both
/// feasibility modes. The chunked parallel exhaustive search is held to the same
/// standard while we are at it.
#[test]
fn exact_searches_match_the_serial_oracle_on_random_problems() {
    let mut cases = Cases::new(11);
    for round in 0..24 {
        let problem = if round % 2 == 0 {
            // Single variant set: few tasks, many ties.
            random_problem(
                1 + cases.below(3) as usize,
                2 + cases.below(2) as usize,
                cases.below(50),
            )
        } else {
            // Two variant sets with cross-product applications: richer sharing
            // structure, up to ~10 tasks.
            random_multi_problem(
                1 + cases.below(3) as usize,
                2 + cases.below(2) as usize,
                1000 + cases.below(50),
            )
        };
        for mode in [FeasibilityMode::PerApplication, FeasibilityMode::Serialized] {
            let oracle = optimize_serial_reference(&problem, mode).unwrap();
            for exact in [SearchStrategy::Exhaustive, SearchStrategy::BranchAndBound] {
                let result = optimize(&problem, mode, exact).unwrap();
                assert_eq!(
                    result.mapping,
                    oracle.mapping,
                    "{exact:?}/{mode:?} mapping diverged on round {round} \
                     ({})",
                    problem.name()
                );
                assert_eq!(result.cost, oracle.cost, "cost diverged on round {round}");
                assert_eq!(
                    result.feasibility, oracle.feasibility,
                    "feasibility report diverged on round {round}"
                );
            }
        }
    }
}

/// The branch-and-bound node count can never exceed the full decision tree, and its
/// prune count can never exceed its node count — the accounting contract documented
/// on `PartitionResult`.
#[test]
fn branch_and_bound_accounting_stays_within_the_decision_tree() {
    let mut cases = Cases::new(12);
    for _ in 0..16 {
        let problem = random_multi_problem(
            1 + cases.below(2) as usize,
            2 + cases.below(2) as usize,
            2000 + cases.below(50),
        );
        let n = problem.task_count() as u64;
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::BranchAndBound,
        )
        .unwrap();
        assert!(result.evaluated_candidates <= (1 << (n + 1)) - 2);
        assert!(result.pruned_candidates <= result.evaluated_candidates);
        assert!(result.evaluated_candidates >= n);
    }
}

// --- incremental evaluator vs from-scratch check/evaluate ------------------------

/// Random walk over single-task flips: after every `apply` — and after every `undo`
/// — the incremental per-application loads, the serialized load, the feasibility
/// report and the cost breakdown must equal a from-scratch `schedule::check` /
/// `schedule::check_serialized` / `cost::evaluate` on the materialized mapping.
#[test]
fn incremental_evaluator_matches_scratch_evaluation_on_a_random_walk() {
    let mut cases = Cases::new(13);
    for round in 0..8 {
        let problem = random_multi_problem(
            1 + cases.below(3) as usize,
            2 + cases.below(2) as usize,
            3000 + cases.below(50),
        );
        let compiled = CompiledProblem::compile(&problem).unwrap();
        let n = compiled.task_count();
        let mut evaluator = IncrementalEvaluator::new(&compiled);

        let assert_matches_scratch = |evaluator: &IncrementalEvaluator, step: usize| {
            let mapping = evaluator.mapping();
            let scratch_check = schedule::check(&problem, &mapping).unwrap();
            assert_eq!(
                evaluator.feasibility_report(FeasibilityMode::PerApplication),
                scratch_check,
                "per-application report diverged at round {round} step {step}"
            );
            assert_eq!(
                evaluator.feasible(FeasibilityMode::PerApplication),
                scratch_check.feasible()
            );
            let scratch_serialized = schedule::check_serialized(&problem, &mapping).unwrap();
            assert_eq!(
                evaluator.feasibility_report(FeasibilityMode::Serialized),
                scratch_serialized,
                "serialized report diverged at round {round} step {step}"
            );
            assert_eq!(
                evaluator.serialized_load_permille(),
                scratch_serialized.applications[0].load_permille
            );
            let scratch_cost = cost::evaluate(&problem, &mapping, None).unwrap();
            assert_eq!(
                evaluator.cost_breakdown(),
                scratch_cost,
                "cost breakdown diverged at round {round} step {step}"
            );
            assert_eq!(evaluator.total_cost(), scratch_cost.total());
        };

        assert_matches_scratch(&evaluator, 0);
        let mut applied = 0usize;
        for step in 1..=200 {
            if applied > 0 && cases.below(4) == 0 {
                // Exercise the undo path as part of the walk, not only at the end.
                assert!(evaluator.undo());
                applied -= 1;
            } else {
                let task = TaskId(cases.below(n as u64) as u32);
                let implementation = if cases.below(2) == 0 {
                    Implementation::Software
                } else {
                    Implementation::Hardware
                };
                evaluator.apply(task, implementation);
                applied += 1;
            }
            assert_matches_scratch(&evaluator, step);
        }

        // Unwind the whole trail; every intermediate state must still match, and the
        // final state must be the all-software start.
        let mut step = 201;
        while evaluator.undo() {
            assert_matches_scratch(&evaluator, step);
            step += 1;
        }
        assert_eq!(evaluator.software_count(), n);
        assert_eq!(evaluator.hardware_area(), 0);
    }
}

// --- generators ------------------------------------------------------------------

/// Builds a chain-shaped variant system with the given cluster counts per interface.
fn build_synthetic_system(
    tag: u64,
    clusters_per_interface: &[usize],
    cluster_size: usize,
) -> Result<VariantSystem, Box<dyn std::error::Error>> {
    let stages = clusters_per_interface.len() + 1;
    let mut b = GraphBuilder::new(format!("prop_system{tag}"));
    let mut previous = None;
    for stage in 0..stages {
        let process = b
            .process(format!("common{stage}"))
            .latency(Interval::point(1))
            .build()?;
        if let Some(previous) = previous {
            let into = b.channel(format!("gap{stage}_in"), ChannelKind::Queue)?;
            let out_of = b.channel(format!("gap{stage}_out"), ChannelKind::Queue)?;
            b.connect_output(previous, into, Interval::point(1))?;
            b.connect_input(out_of, process, Interval::point(1))?;
        }
        previous = Some(process);
    }
    let mut system = VariantSystem::new(b.finish()?);

    for (index, clusters) in clusters_per_interface.iter().enumerate() {
        let mut interface = Interface::new(format!("if{index}"));
        interface.add_input_port("i");
        interface.add_output_port("o");
        for cluster_index in 0..*clusters {
            let name = format!("if{index}_v{cluster_index}");
            let mut cb = GraphBuilder::new(&name);
            let mut prev = None;
            for depth in 0..cluster_size {
                let process = cb
                    .process(format!("P{depth}"))
                    .latency(Interval::point(1 + depth as u64))
                    .build()?;
                if let Some(prev) = prev {
                    let channel = cb.channel(format!("c{depth}"), ChannelKind::Queue)?;
                    cb.connect_output(prev, channel, Interval::point(1))?;
                    cb.connect_input(channel, process, Interval::point(1))?;
                }
                prev = Some(process);
            }
            let mut cluster = Cluster::new(&name, cb.finish()?);
            cluster.add_input_port("i", "P0", Interval::point(1))?;
            cluster.add_output_port(
                "o",
                format!("P{}", cluster_size - 1).as_str(),
                Interval::point(1),
            )?;
            interface.add_cluster(cluster)?;
        }
        let attachment = system.attach_interface(interface, VariantType::Production)?;
        system.bind_input(attachment, "i", format!("gap{}_in", index + 1))?;
        system.bind_output(attachment, "o", format!("gap{}_out", index + 1))?;
    }
    system.validate()?;
    Ok(system)
}

/// Builds a small random-but-deterministic synthesis problem with one variant set.
fn random_problem(common: usize, variants: usize, seed: u64) -> SynthesisProblem {
    let mut cases = Cases::new(seed);
    let mut problem = SynthesisProblem::new(format!("random{seed}"), 10 + cases.below(10));
    let mut common_names = Vec::new();
    for index in 0..common {
        let name = format!("common{index}");
        problem.add_task(TaskSpec::new(
            &name,
            5 + cases.below(15),
            100,
            15 + cases.below(30),
            3 + cases.below(9),
        ));
        common_names.push(name);
    }
    let mut cluster_names = Vec::new();
    for index in 0..variants {
        let name = format!("variant{index}");
        problem.add_task(TaskSpec::new(
            &name,
            30 + cases.below(45),
            100,
            15 + cases.below(20),
            20 + cases.below(30),
        ));
        cluster_names.push(name);
    }
    for (index, cluster) in cluster_names.iter().enumerate() {
        let mut tasks = common_names.clone();
        tasks.push(cluster.clone());
        problem
            .add_application(ApplicationSpec::new(format!("application{index}"), tasks))
            .expect("tasks exist");
    }
    problem
}

/// Builds a deterministic synthesis problem with **two** variant sets and one
/// application per cross-product combination — the sharing structure (common tasks in
/// every application, each cluster in several) that exercises the incremental
/// evaluator's `task → applications` fan-out.
fn random_multi_problem(common: usize, variants_per_set: usize, seed: u64) -> SynthesisProblem {
    let mut cases = Cases::new(seed);
    let mut problem = SynthesisProblem::new(format!("multi{seed}"), 10 + cases.below(10));
    let mut common_names = Vec::new();
    for index in 0..common {
        let name = format!("common{index}");
        problem.add_task(TaskSpec::new(
            &name,
            5 + cases.below(15),
            100,
            15 + cases.below(30),
            3 + cases.below(9),
        ));
        common_names.push(name);
    }
    let mut sets: Vec<Vec<String>> = Vec::new();
    for set in 0..2 {
        let mut clusters = Vec::new();
        for index in 0..variants_per_set {
            let name = format!("if{set}/v{index}");
            problem.add_task(TaskSpec::new(
                &name,
                25 + cases.below(40),
                100,
                15 + cases.below(20),
                20 + cases.below(30),
            ));
            clusters.push(name);
        }
        sets.push(clusters);
    }
    let mut index = 0;
    for first in &sets[0] {
        for second in &sets[1] {
            let mut tasks = common_names.clone();
            tasks.push(first.clone());
            tasks.push(second.clone());
            problem
                .add_application(ApplicationSpec::new(format!("application{index}"), tasks))
                .expect("tasks exist");
            index += 1;
        }
    }
    problem
}
