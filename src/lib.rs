//! # spi-repro
//!
//! Facade crate of the reproduction of *"Representation of Function Variants for
//! Embedded System Optimization and Synthesis"* (Richter, Ziegenbein, Ernst, Thiele,
//! Teich — DAC 1999).
//!
//! The implementation is split into focused crates, re-exported here for convenience:
//!
//! | Crate | Module alias | Contents |
//! |---|---|---|
//! | `spi-model` | [`model`] | the SPI process-network substrate (processes, channels, modes, tags, activation, timing) |
//! | `spi-variants` | [`variants`] | **the paper's contribution**: clusters, interfaces, cluster selection, configurations, flattening and abstraction |
//! | `spi-sim` | [`sim`] | discrete-event simulation with reconfiguration semantics |
//! | `spi-synth` | [`synth`] | HW/SW partitioning, cost/design-time models, Table 1 flows and prior-work baselines |
//! | `spi-workloads` | [`workloads`] | the paper's figures, the video case study, TV/automotive scenarios, synthetic generators |
//! | `spi-explore` | [`explore`] | the sharded exploration service: job/lease protocol, worker pool, pluggable evaluators, ndjson frontend (`spi-explored`) |
//!
//! # Quickstart
//!
//! ```rust
//! use spi_repro::workloads;
//! use spi_repro::synth::report::table1;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The Figure 2 design scenario, flattened into its two applications...
//! let system = workloads::figure2_system()?;
//! assert_eq!(system.variant_space().count(), 2);
//!
//! // ...and the reproduced Table 1 (system cost of the four synthesis flows).
//! let table = table1(&workloads::table1_problem()?)?;
//! assert!(table.with_variants().unwrap().total < table.superposition().unwrap().total);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spi_explore as explore;
pub use spi_model as model;
pub use spi_sim as sim;
pub use spi_synth as synth;
pub use spi_variants as variants;
pub use spi_workloads as workloads;
