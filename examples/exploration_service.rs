//! The exploration service end to end: submit the scenario suite as jobs,
//! stream progress events while a worker pool drains the variant spaces, and
//! print the per-scenario optimum — then drive the same flow once more over
//! the ndjson wire protocol `spi-explored` speaks.
//!
//! Run with `cargo run --release --example exploration_service`.

use std::sync::Arc;

use spi_repro::explore::{
    serve, ExplorationService, JobEvent, JobSpec, PartitionEvaluator, ServiceConfig,
};
use spi_repro::model::json::JsonValue;
use spi_repro::workloads::exploration_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- in-process client API ---------------------------------------------------
    //
    // One long-running service; jobs are independent and drain concurrently.
    let service = ExplorationService::start(ServiceConfig::with_workers(4));
    println!("service up with {} workers\n", service.worker_count());

    for (name, system) in exploration_suite()? {
        let combinations = system.variant_space().count();
        let job = service.submit(
            &system,
            JobSpec {
                name: name.clone(),
                shard_count: 8,
                top_k: 3,
                ..JobSpec::default()
            },
            // The default evaluator: pose each flattened variant as a
            // single-application synthesis problem and run the compiled
            // partition search. Implement `Evaluator` to plug in your own.
            Arc::new(PartitionEvaluator::default()),
        )?;

        // Progress arrives as events over a plain mpsc channel: improvements,
        // shard completions, termination.
        let events = service.subscribe(job)?;
        let status = service.wait(job)?;
        let improvements = events
            .try_iter()
            .filter(|event| matches!(event, JobEvent::Improved { .. }))
            .count();

        let best = status
            .best()
            .expect("every scenario has a feasible variant");
        println!(
            "{name}: {combinations} variants in {} shards",
            status.shard_count
        );
        println!(
            "  evaluated {} (pruned {}, improvements seen {})",
            status.report.evaluated, status.report.pruned, improvements
        );
        println!(
            "  optimum: variant #{} cost {} — {} ({})",
            best.index, best.cost, best.choice, best.detail
        );
        for runner_up in status.report.top.iter().skip(1) {
            println!(
                "  runner-up: variant #{} cost {}",
                runner_up.index, runner_up.cost
            );
        }
        println!();
    }

    // --- the same thing over the wire --------------------------------------------
    //
    // `spi-explored` wraps exactly this loop around stdin/stdout; here the
    // requests come from a string (against a fresh service, so the submitted
    // job predictably gets id 0) to keep the example self-contained.
    let wire_service = ExplorationService::start(ServiceConfig::with_workers(4));
    let requests = concat!(
        "{\"op\":\"submit\",\"name\":\"wire-demo\",",
        "\"system\":{\"scaling\":{\"interfaces\":8,\"clusters\":2}},\"shards\":8,\"top_k\":3}\n",
        "{\"op\":\"wait\",\"job\":0}\n",
        "{\"op\":\"shutdown\"}\n",
    );
    let mut responses = Vec::new();
    serve(&wire_service, requests.as_bytes(), &mut responses)?;
    println!("ndjson session:");
    for line in String::from_utf8(responses)?.lines() {
        let value = JsonValue::parse(line)?;
        match value.get("op").and_then(JsonValue::as_str) {
            Some("wait") => println!(
                "  wait → state {} best {}",
                value.get("state").unwrap(),
                value.get("best").unwrap().to_line()
            ),
            Some(op) => println!("  {op} → {}", line),
            None => println!("  {line}"),
        }
    }
    Ok(())
}
