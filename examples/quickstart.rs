//! Quickstart: build the paper's Figure 2 design scenario, inspect its variant space,
//! derive the two single-variant applications, and reproduce Table 1.
//!
//! Run with `cargo run --example quickstart`.

use spi_repro::synth::report::table1;
use spi_repro::synth::{from_variant_system, strategy};
use spi_repro::workloads::{figure2_system, table1_params, table1_problem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The variant-aware representation: common processes PA/PB plus interface1 with
    //    two mutually exclusive clusters.
    let system = figure2_system()?;
    println!("{system}\n");

    // 2. Flattening: one plain SPI graph per variant (the two "applications").
    for (choice, graph) in system.flatten_all()? {
        println!("--- flattened for {choice} ---");
        println!("{graph}");
    }

    // 3. Synthesis: reproduce Table 1 from the calibrated problem...
    let table = table1(&table1_problem()?)?;
    println!("Reproduced Table 1 (System Cost):\n{table}");

    // 4. ...and show that the same table can be derived straight from the model via the
    //    bridge, using the same cost annotations.
    let derived = from_variant_system(&system, 15, table1_params)?;
    let joint = strategy::variant_aware(&derived)?;
    println!("variant-aware synthesis on the derived problem: {joint}");

    Ok(())
}
