//! Durable exploration: restart recovery and the content-addressed cache.
//!
//! Runs the same exploration job three times against one store directory:
//!
//! 1. **cold** — a fresh store; every variant is evaluated and every shard
//!    commit is write-ahead logged;
//! 2. **restart** — the service is dropped (as a crash would) and a new one
//!    recovers the finished job and the result cache from the WAL;
//! 3. **warm** — resubmitting the identical job hits the cache: completed at
//!    birth, `evaluated == 0`, the optimum served without a single worker
//!    evaluation.
//!
//! ```sh
//! cargo run --release --example durable_exploration
//! ```

use std::sync::Arc;
use std::time::Instant;

use spi_repro::explore::{ExplorationService, JobSpec, PartitionEvaluator, ServiceConfig};
use spi_repro::model::json::JsonValue;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("spi-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let interfaces = 8usize;
    let system = spi_workloads::scaling_system(interfaces, 2)?;
    let recipe = JsonValue::parse(&format!(
        r#"{{"system":{{"scaling":{{"interfaces":{interfaces},"clusters":2}}}}}}"#
    ))?;
    let spec = || JobSpec {
        name: "durable-demo".to_string(),
        shard_count: 16,
        top_k: 4,
        ..JobSpec::default()
    };
    let config = || ServiceConfig {
        store_dir: Some(dir.clone()),
        ..ServiceConfig::with_workers(4)
    };

    // 1. Cold run: full sweep, write-ahead logged.
    let cold_started = Instant::now();
    let service = ExplorationService::try_start(config())?;
    let job = service.submit_with_recipe(
        &system,
        spec(),
        Arc::new(PartitionEvaluator::default()),
        Some(recipe.clone()),
    )?;
    let cold = service.wait(job)?;
    let cold_elapsed = cold_started.elapsed();
    let best = cold.best().expect("a feasible optimum exists");
    println!(
        "cold:    {} variants evaluated+pruned in {:.1?} → optimum cost {} at index {}",
        cold.report.accounted(),
        cold_elapsed,
        best.cost,
        best.index,
    );

    // 2. Crash + restart: drop without ceremony, recover from the WAL.
    drop(service);
    let recovery_started = Instant::now();
    let service = ExplorationService::try_start(config())?;
    println!(
        "restart: recovered {} job(s), {} cached result(s) in {:.1?}",
        service.restored().jobs,
        service.restored().cache_entries,
        recovery_started.elapsed(),
    );

    // 3. Warm run: the identical submission is a cache hit.
    let warm_started = Instant::now();
    let job = service.submit_with_recipe(
        &system,
        spec(),
        Arc::new(PartitionEvaluator::default()),
        Some(recipe),
    )?;
    let warm = service.wait(job)?;
    let warm_elapsed = warm_started.elapsed();
    let cached = warm.best().expect("cached optimum served");
    assert!(warm.cache_hit);
    assert_eq!(warm.report.evaluated, 0, "no worker evaluation ran");
    assert_eq!((cached.cost, cached.index), (best.cost, best.index));
    println!(
        "warm:    cache hit in {:.1?} ({}x faster), evaluated {} — same optimum",
        warm_elapsed,
        (cold_elapsed.as_nanos() / warm_elapsed.as_nanos().max(1)),
        warm.report.evaluated,
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
