//! The reconfigurable video system of Figure 4: a frame stream passes through the chain
//! `PIn → P1 → P2 → POut`; user requests switch the function variants of `P1` and `P2`
//! at run time while the valves suppress invalid output images.
//!
//! Run with `cargo run --example video_reconfiguration`.

use spi_repro::workloads::{run_video_scenario, VideoParams, VideoScenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = VideoParams::default();

    println!("scenario 1: steady state, no reconfiguration requests");
    let steady = VideoScenario {
        requests: vec![],
        ..Default::default()
    };
    report(&run_video_scenario(&params, &steady)?);

    println!("\nscenario 2: two user requests (switch to V2 at t=400, back to V1 at t=900)");
    let dynamic = VideoScenario::default();
    report(&run_video_scenario(&params, &dynamic)?);

    println!("\nscenario 3: slow reconfiguration hardware (longer suspension window)");
    let slow = VideoParams {
        p1_reconfiguration: (120, 150),
        p2_reconfiguration: (120, 150),
        ..Default::default()
    };
    let long_window = VideoScenario {
        resume_delay: 200,
        ..Default::default()
    };
    report(&run_video_scenario(&slow, &long_window)?);

    Ok(())
}

fn report(outcome: &spi_repro::workloads::VideoOutcome) {
    println!(
        "  frames in: {:>3}   fresh out: {:>3}   repeated: {:>3}   dropped at input: {:>3}",
        outcome.frames_in, outcome.fresh_frames, outcome.repeated_frames, outcome.dropped_at_input
    );
    println!(
        "  reconfigurations: {}   total reconfiguration latency: {}",
        outcome.reconfigurations, outcome.reconfiguration_latency
    );
    assert_eq!(
        outcome.fresh_frames + outcome.repeated_frames + outcome.dropped_at_input,
        outcome.frames_in,
        "every frame is either delivered fresh, replaced by the last valid image, or \
         destroyed by the input valve — none silently becomes an invalid image"
    );
}
