//! The observability plane end to end: a multi-tenant job mix on a live
//! worker pool, watched while it runs — a bounded trace subscription
//! streaming scheduler decisions, metrics and health polled mid-flight, and
//! the final snapshot printed once the service drains.
//!
//! Run with `cargo run --release --example observability`.

use std::sync::Arc;
use std::time::Duration;

use spi_repro::explore::{Evaluation, ExplorationService, FnEvaluator, JobSpec, ServiceConfig};
use spi_repro::workloads::scaling_system;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Defaults already include the observability plane: metrics on, stall
    // watchdog sweeping every second.
    let service = ExplorationService::start(ServiceConfig::with_workers(4));
    println!("service up with {} workers\n", service.worker_count());

    // A bounded live subscription, opened before the jobs so it sees every
    // decision. The bound matters: a slow consumer costs trace
    // completeness (counted, see below), never scheduler throughput.
    let subscription = service.subscribe_trace(512);

    // Two tenants, different weights, mildly slow evaluation so the run is
    // long enough to observe mid-flight.
    let system = scaling_system(6, 2)?; // 64 variants per job
    let mut jobs = Vec::new();
    for (tenant, weight) in [("render-farm", 2u32), ("nightly-ci", 1)] {
        let spec = JobSpec {
            name: format!("{tenant}-sweep"),
            shard_count: 16,
            top_k: 3,
            tenant: tenant.to_string(),
            weight,
            ..JobSpec::default()
        };
        let evaluator = Arc::new(FnEvaluator::new(|index, _choice, _graph| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(Evaluation {
                cost: ((index as u64) * 131) % 251,
                feasible: true,
                detail: String::new(),
            })
        }));
        jobs.push(service.submit(&system, spec, evaluator)?);
    }

    // Poll the planes while the pool drains: counter deltas, per-tenant
    // service, and the watchdog's verdict.
    while !service.is_idle() {
        std::thread::sleep(Duration::from_millis(40));
        let snapshot = service.metrics_snapshot();
        let counters = snapshot.get("counters").expect("counters section");
        let commits = counters
            .get("shard.commits")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let grants = counters
            .get("lease.grants")
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        let health = service.health();
        println!(
            "mid-flight: {grants} leases granted, {commits}/32 shards committed, \
             health={}",
            health.status()
        );
    }
    for job in jobs {
        let status = service.wait(job)?;
        println!(
            "job {}: {} variants accounted, optimum cost {}",
            status.name,
            status.report.accounted(),
            status.best().map_or(0, |best| best.cost),
        );
    }

    // Drain what the subscription captured. `take_lagged` is the honesty
    // counter: events the bounded queue dropped because this consumer was
    // slower than the scheduler. Re-read any gap with read_trace_since.
    let mut delivered = 0usize;
    while subscription.try_next().is_some() {
        delivered += 1;
    }
    println!(
        "\nsubscription delivered {delivered} decisions, dropped {}",
        subscription.take_lagged()
    );

    // The final snapshot — the same JSON the `metrics` wire op answers and
    // quiesce persists as metrics.json on durable stores.
    let snapshot = service.metrics_snapshot();
    println!("\nfinal metrics snapshot:\n{}", snapshot.to_line());
    let health = service.health();
    println!(
        "\nfinal health: {} ({} sweeps, {} findings)",
        health.status(),
        health.sweeps,
        health.findings.len()
    );
    Ok(())
}
