//! Run-time variant selection (Figure 3): the user process writes a tagged token on the
//! register `CV`; the interface's cluster-selection rules pick the variant. The example
//! abstracts the interface into a single process with configurations and simulates both
//! selections, showing the configuration latency at start-up.
//!
//! Run with `cargo run --example runtime_variant_selection`.

use spi_repro::sim::{SimConfig, Simulator};
use spi_repro::variants::ExtractionPolicy;
use spi_repro::workloads::figure3_system;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for selected in ["V1", "V2"] {
        let system = figure3_system(selected)?;
        let attachment = system
            .attachment_by_name("interface1")
            .expect("interface1 is attached");

        // Abstract interface1 into the process `interface1_var` with one configuration
        // per cluster (Definition 4 of the paper).
        let abstracted = system.abstract_interface(attachment, ExtractionPolicy::Coarse)?;
        println!("--- user selects {selected} ---");
        println!("{}", abstracted.configuration_set());

        // Simulate: the environment processes produce the selection token and the data
        // stream; the abstracted process configures itself accordingly.
        let config = SimConfig::with_horizon(200).max_executions(20);
        let report = Simulator::new(abstracted.graph.clone(), config)
            .with_configurations(abstracted.configurations.clone())
            .run()?;
        let executions = report.stats.executions_of(abstracted.process);
        println!(
            "abstracted process executed {executions} times, \
             configuration latency spent: {}\n",
            report.stats.reconfiguration_latency
        );
    }
    Ok(())
}
