//! The profiling plane end to end: an 8-worker multi-tenant run with the
//! span recorder on, then the three ways to read it — the folded-stack
//! per-phase profile (pipe the stack lines into `flamegraph.pl` or
//! inferno), the per-job critical path with its straggler lease, and a
//! Chrome trace-event file you can drop into <https://ui.perfetto.dev>.
//!
//! Run with `cargo run --release --example profiling`.

use std::sync::Arc;
use std::time::Duration;

use spi_repro::explore::{
    Evaluation, ExplorationService, FnEvaluator, JobSpec, PartitionEvaluator, ServiceConfig,
};
use spi_repro::workloads::scaling_system;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spans are on by default (span_capacity bounds each worker's ring);
    // `--no-spans` / spans_enabled=false collapses every record site to one
    // predicted branch.
    let service = ExplorationService::start(ServiceConfig {
        workers: 8,
        ..ServiceConfig::default()
    });
    println!("service up with {} workers\n", service.worker_count());

    // Two tenants with different evaluators: one compiled partition search
    // (contributes compile_lower / partition_search spans) and one mildly
    // slow custom evaluator (pure drain time).
    let system = scaling_system(6, 2)?; // 64 variants per job
    let mut jobs = Vec::new();
    let spec = |tenant: &str| JobSpec {
        name: format!("{tenant}-sweep"),
        shard_count: 16,
        top_k: 3,
        tenant: tenant.to_string(),
        use_cache: false,
        ..JobSpec::default()
    };
    jobs.push(service.submit(
        &system,
        spec("render-farm"),
        Arc::new(PartitionEvaluator::default()),
    )?);
    jobs.push(service.submit(
        &system,
        spec("nightly-ci"),
        Arc::new(FnEvaluator::new(|index, _choice, _graph| {
            std::thread::sleep(Duration::from_millis(1));
            Ok(Evaluation {
                cost: ((index as u64) * 131) % 251,
                feasible: true,
                detail: String::new(),
            })
        })),
    )?);
    for job in jobs {
        let status = service.wait(job)?;
        println!(
            "job {}: {} variants accounted, optimum cost {}",
            status.name,
            status.report.accounted(),
            status.best().map_or(0, |best| best.cost),
        );
    }
    // The final drain span exits moments after its commit wakes `wait`.
    std::thread::sleep(Duration::from_millis(50));

    // 1. The per-phase profile: counts, total vs self time, and the folded
    //    stacks — each line is `phase;phase... self_ns`, the exact input
    //    format of flamegraph.pl / inferno-flamegraph.
    let profile = service.profile();
    println!("\nper-phase profile (dropped={}):", profile.dropped);
    for phase in &profile.phases {
        println!(
            "  {:<18} count {:>5}  total {:>12}ns  self {:>12}ns",
            phase.phase.name(),
            phase.count,
            phase.total_ns,
            phase.self_ns,
        );
    }
    println!("\nfolded stacks (feed to flamegraph.pl):");
    for (stack, self_ns) in &profile.folded {
        println!("  {stack} {self_ns}");
    }

    // 2. The critical path of each completed job: the longest chain of
    //    non-overlapping root spans ending at the job's last commit. The
    //    straggler is the lease that gated completion.
    println!("\ncritical paths:");
    for path in &profile.critical_paths {
        println!(
            "  job {}: wall {}ns over {} steps",
            path.job,
            path.wall_ns,
            path.steps.len()
        );
        if let Some(straggler) = &path.straggler {
            println!(
                "    straggler: {} lease {} on {} ({}ns)",
                straggler.phase.name(),
                straggler.lease.map_or("?".to_string(), |id| id.to_string()),
                straggler.worker.as_deref().unwrap_or("?"),
                straggler.end_ns - straggler.start_ns,
            );
        }
    }

    // 3. The Chrome trace export: one process per tenant, one thread per
    //    worker. Open the file in https://ui.perfetto.dev (or
    //    chrome://tracing) and every span lands on its worker's track.
    let trace_path = std::env::temp_dir().join("spi-profiling-example.trace.json");
    std::fs::write(&trace_path, service.chrome_trace().to_line())?;
    println!(
        "\nwrote Chrome trace to {} — load it in Perfetto",
        trace_path.display()
    );
    Ok(())
}
