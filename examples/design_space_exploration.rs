//! Design-space exploration over a multi-standard TV set: compare per-application
//! synthesis, superposition, variant-aware synthesis and the two prior-work baselines on
//! cost and design time, then sweep the number of variants to show how the design-time
//! advantage grows.
//!
//! Run with `cargo run --example design_space_exploration`.

use spi_repro::synth::{baseline, design_time, strategy};
use spi_repro::workloads::{synthetic_problem, tv_problem, SyntheticParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = tv_problem()?;
    println!(
        "multi-standard TV: {} tasks, {} variant combinations\n",
        problem.task_count(),
        problem.applications().len()
    );

    println!("{:<34} {:>8} {:>12}", "flow", "cost", "design time");
    for result in strategy::independent(&problem)? {
        println!(
            "{:<34} {:>8} {:>12}",
            result.strategy,
            result.cost.total(),
            result.design_time
        );
    }
    let superposition = strategy::superposition(&problem)?;
    let variant_aware = strategy::variant_aware(&problem)?;
    let serialized = baseline::serialization(&problem)?;
    let order: Vec<&str> = problem
        .applications()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    let incremental = baseline::incremental(&problem, &order)?;
    for result in [&superposition, &variant_aware, &serialized, &incremental] {
        println!(
            "{:<34} {:>8} {:>12}",
            result.strategy,
            result.cost.total(),
            result.design_time
        );
    }
    assert!(variant_aware.cost.total() <= superposition.cost.total());
    assert!(variant_aware.cost.total() <= serialized.cost.total());

    println!("\ndesign-time scaling with the number of variants per set (4 common tasks):");
    println!(
        "{:>9} {:>14} {:>12} {:>10}",
        "variants", "independent", "joint", "saving %"
    );
    for clusters in [2usize, 3, 4, 6, 8] {
        let synthetic = synthetic_problem(&SyntheticParams {
            clusters_per_interface: clusters,
            interfaces: 2,
            common_tasks: 4,
            ..Default::default()
        })?;
        let independent = design_time::independent(&synthetic)?.total;
        let joint = design_time::joint(&synthetic).total;
        println!(
            "{:>9} {:>14} {:>12} {:>9.1}",
            clusters,
            independent,
            joint,
            100.0 * (independent - joint) as f64 / independent as f64
        );
    }
    Ok(())
}
