//! Schedulability analysis and static schedule construction.
//!
//! The paper's argument for the variant-aware mapping hinges on schedulability: the two
//! clusters are mutually exclusive at run time, so they may share the processor with
//! only the common processes — "the available processor performance is not exceeded".
//! This module makes that argument checkable:
//!
//! * [`check`] verifies, per application (i.e. per variant combination), that the
//!   utilization of its software tasks fits the processor capacity. Because every
//!   application only contains the clusters of one variant, mutual exclusion is exploited
//!   exactly as in the paper.
//! * [`check_serialized`] sums the utilization of *all* tasks of *all* applications as if
//!   they could run concurrently — the pessimistic view a serializing approach
//!   (\[6\] in the paper) is forced to take.
//! * [`build_schedule`] produces a simple static one-processor schedule of one
//!   application for inspection and examples.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::SynthError;
use crate::problem::{Implementation, Mapping, SynthesisProblem};
use crate::Result;

/// Feasibility of one application under a mapping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationLoad {
    /// Application name.
    pub application: String,
    /// Processor load of the application's software tasks, in permille.
    pub load_permille: u64,
    /// Whether the load fits the processor capacity.
    pub feasible: bool,
}

/// Feasibility report over all applications.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Per-application loads.
    pub applications: Vec<ApplicationLoad>,
    /// Processor capacity used for the check, in permille.
    pub capacity_permille: u64,
}

impl FeasibilityReport {
    /// Returns `true` if every application fits.
    pub fn feasible(&self) -> bool {
        self.applications.iter().all(|a| a.feasible)
    }

    /// The highest per-application load, in permille.
    pub fn peak_load_permille(&self) -> u64 {
        self.applications
            .iter()
            .map(|a| a.load_permille)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for FeasibilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for app in &self.applications {
            writeln!(
                f,
                "{}: load {}.{:01} % — {}",
                app.application,
                app.load_permille / 10,
                app.load_permille % 10,
                if app.feasible { "ok" } else { "OVERLOAD" }
            )?;
        }
        Ok(())
    }
}

/// Checks schedulability per application: mutually exclusive variants never load the
/// processor at the same time.
///
/// # Errors
///
/// Returns [`SynthError::Validation`] if a task lacks a mapping decision and
/// [`SynthError::UnknownTask`] if an application references an unknown task.
pub fn check(problem: &SynthesisProblem, mapping: &Mapping) -> Result<FeasibilityReport> {
    let mut report = FeasibilityReport {
        capacity_permille: problem.processor_capacity_permille,
        ..Default::default()
    };
    for application in problem.applications() {
        let mut load = 0u64;
        for name in &application.tasks {
            let task = problem
                .task(name)
                .ok_or_else(|| SynthError::UnknownTask(name.clone()))?;
            match mapping.implementation(name) {
                Some(Implementation::Software) => load += task.utilization_permille(),
                Some(Implementation::Hardware) => {}
                None => {
                    return Err(SynthError::Validation(format!(
                        "task `{name}` has no implementation decision"
                    )))
                }
            }
        }
        report.applications.push(ApplicationLoad {
            application: application.name.clone(),
            load_permille: load,
            feasible: load <= problem.processor_capacity_permille,
        });
    }
    Ok(report)
}

/// Checks schedulability as a serializing approach must: all tasks of all applications
/// are assumed to compete for the processor simultaneously (no mutual exclusion).
///
/// # Errors
///
/// Same as [`check`].
pub fn check_serialized(
    problem: &SynthesisProblem,
    mapping: &Mapping,
) -> Result<FeasibilityReport> {
    let mut load = 0u64;
    for task in problem.tasks() {
        match mapping.implementation(&task.name) {
            Some(Implementation::Software) => load += task.utilization_permille(),
            Some(Implementation::Hardware) => {}
            None => {
                return Err(SynthError::Validation(format!(
                    "task `{}` has no implementation decision",
                    task.name
                )))
            }
        }
    }
    Ok(FeasibilityReport {
        applications: vec![ApplicationLoad {
            application: "serialized".to_string(),
            load_permille: load,
            feasible: load <= problem.processor_capacity_permille,
        }],
        capacity_permille: problem.processor_capacity_permille,
    })
}

/// One entry of a static schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Scheduled task.
    pub task: String,
    /// Resource the task runs on (`"processor"` or `"asic:<task>"`).
    pub resource: String,
    /// Start time within one scheduling period.
    pub start: u64,
    /// Completion time within one scheduling period.
    pub end: u64,
}

/// A static schedule of one application for one period.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Schedule entries in start-time order.
    pub entries: Vec<ScheduleEntry>,
    /// Completion time of the last processor task.
    pub processor_makespan: u64,
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(
                f,
                "{:>4} .. {:>4}  {:<12} {}",
                entry.start, entry.end, entry.resource, entry.task
            )?;
        }
        write!(f, "processor makespan: {}", self.processor_makespan)
    }
}

/// Builds a simple static schedule of one application: software tasks run back-to-back
/// on the single processor (in application order), hardware tasks run concurrently on
/// their dedicated units starting at time zero.
///
/// # Errors
///
/// Returns [`SynthError::UnknownApplication`], [`SynthError::UnknownTask`] or
/// [`SynthError::Validation`] (missing decision).
pub fn build_schedule(
    problem: &SynthesisProblem,
    application: &str,
    mapping: &Mapping,
) -> Result<Schedule> {
    let app = problem
        .application(application)
        .ok_or_else(|| SynthError::UnknownApplication(application.to_string()))?;
    let mut schedule = Schedule::default();
    let mut clock = 0u64;
    for name in &app.tasks {
        let task = problem
            .task(name)
            .ok_or_else(|| SynthError::UnknownTask(name.clone()))?;
        match mapping.implementation(name) {
            Some(Implementation::Software) => {
                schedule.entries.push(ScheduleEntry {
                    task: name.clone(),
                    resource: "processor".to_string(),
                    start: clock,
                    end: clock + task.sw_time,
                });
                clock += task.sw_time;
            }
            Some(Implementation::Hardware) => {
                // A dedicated unit: conservatively assume the same execution time as
                // software unless the task is pure hardware (area but zero sw time).
                schedule.entries.push(ScheduleEntry {
                    task: name.clone(),
                    resource: format!("asic:{name}"),
                    start: 0,
                    end: task.sw_time,
                });
            }
            None => {
                return Err(SynthError::Validation(format!(
                    "task `{name}` has no implementation decision"
                )))
            }
        }
    }
    schedule.processor_makespan = clock;
    schedule
        .entries
        .sort_by(|a, b| (a.start, &a.resource, &a.task).cmp(&(b.start, &b.resource, &b.task)));
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;

    fn mapping(hw: &[&str]) -> Mapping {
        let mut mapping = Mapping::new();
        for task in toy_problem().tasks() {
            let implementation = if hw.contains(&task.name.as_str()) {
                Implementation::Hardware
            } else {
                Implementation::Software
            };
            mapping.assign(task.name.clone(), implementation);
        }
        mapping
    }

    #[test]
    fn per_application_check_exploits_mutual_exclusion() {
        let problem = toy_problem();
        // Only PA in hardware: each application's software load is PB + its own cluster.
        let report = check(&problem, &mapping(&["PA"])).unwrap();
        assert!(report.feasible());
        assert_eq!(report.applications.len(), 2);
        assert_eq!(report.applications[0].load_permille, 150 + 700);
        assert_eq!(report.applications[1].load_permille, 150 + 800);
        assert_eq!(report.peak_load_permille(), 950);
    }

    #[test]
    fn serialized_check_sums_all_variants() {
        let problem = toy_problem();
        // The same mapping is infeasible when both variants are assumed concurrent.
        let report = check_serialized(&problem, &mapping(&["PA"])).unwrap();
        assert!(!report.feasible());
        assert_eq!(report.applications[0].load_permille, 150 + 700 + 800);
    }

    #[test]
    fn all_software_overloads_each_application() {
        let problem = toy_problem();
        let report = check(&problem, &mapping(&[])).unwrap();
        assert!(!report.feasible());
        assert!(report.applications.iter().all(|a| !a.feasible));
    }

    #[test]
    fn missing_decision_is_reported() {
        let problem = toy_problem();
        let incomplete = Mapping::new().with("PA", Implementation::Software);
        assert!(matches!(
            check(&problem, &incomplete),
            Err(SynthError::Validation(_))
        ));
        assert!(matches!(
            check_serialized(&problem, &incomplete),
            Err(SynthError::Validation(_))
        ));
    }

    #[test]
    fn schedule_entry_order_is_start_then_resource_then_task() {
        // Pins the sort key `(start, resource, task)`: both hardware clusters start at
        // time zero and order by resource name; the software tasks follow in start
        // order. (The comparison is by reference — no per-comparison clones.)
        let problem = toy_problem();
        let schedule =
            build_schedule(&problem, "application1", &mapping(&["PA", "cluster1"])).unwrap();
        let order: Vec<(u64, &str, &str)> = schedule
            .entries
            .iter()
            .map(|e| (e.start, e.resource.as_str(), e.task.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                (0, "asic:PA", "PA"),
                (0, "asic:cluster1", "cluster1"),
                (0, "processor", "PB"),
            ]
        );
    }

    #[test]
    fn schedule_places_software_back_to_back_and_hardware_in_parallel() {
        let problem = toy_problem();
        let schedule = build_schedule(&problem, "application1", &mapping(&["cluster1"])).unwrap();
        // PA (25) then PB (15) on the processor; cluster1 on its ASIC from time zero.
        assert_eq!(schedule.processor_makespan, 40);
        let asic = schedule
            .entries
            .iter()
            .find(|e| e.resource.starts_with("asic"))
            .unwrap();
        assert_eq!(asic.start, 0);
        let display = schedule.to_string();
        assert!(display.contains("processor makespan: 40"));
        assert!(matches!(
            build_schedule(&problem, "ghost", &mapping(&[])),
            Err(SynthError::UnknownApplication(_))
        ));
    }
}
