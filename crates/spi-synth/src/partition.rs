//! HW/SW partitioning: finding the cheapest feasible mapping.
//!
//! The optimizer searches the mapping space (software or hardware per task) for the
//! cheapest implementation whose schedulability check passes. Three search strategies
//! are provided: an exhaustive search that is exact for the small systems of the
//! paper, a branch-and-bound search that returns the same optimum while visiting only
//! a fraction of the space, and a greedy heuristic (with a local-improvement pass)
//! for the larger synthetic systems used in the scaling experiments. [`optimize`]
//! selects automatically based on the task count.
//!
//! All searches run over [`CompiledProblem`] — tasks lowered to dense indices with
//! utilization/area arrays and per-application membership — so no inner loop touches
//! a `String` key. The historical string-keyed serial scan survives as
//! [`optimize_serial_reference`], the oracle the differential tests compare against.
//!
//! The **exhaustive** search enumerates the `2^n` mapping masks in contiguous chunks
//! across all hardware threads (via `rayon::scope`) and shares the best total cost
//! found so far in an atomic **bound**: a mask whose hardware-area lower bound already
//! exceeds the bound is discarded before the schedulability check runs. The chunk
//! results are reduced by the exact ordering key `(total cost, hardware-task count,
//! Reverse(mask))`, so the parallel search returns the same optimum, bit for bit, as
//! the serial scan.
//!
//! The **branch-and-bound** search walks the decision tree depth-first instead of
//! enumerating leaves: task `i` is decided at depth `i`, undecided tasks sit in
//! hardware (where they contribute no processor load), and an
//! [`IncrementalEvaluator`] keeps every application's load current in O(applications
//! containing the flipped task). A subtree is cut when its partial software load
//! already overloads an application (every completion only adds load) or when the
//! admissible lower bound — committed hardware area plus a processor-cost floor —
//! strictly exceeds the shared incumbent. Subtree roots (the first few decision
//! levels) are sharded across threads exactly like the exhaustive search shards
//! masks. Because only strictly-worse subtrees are cut and surviving leaves are
//! reduced with the same ordering key, the result is bit-identical to the serial
//! scan, tie-breaks included.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::compiled::{CompiledProblem, IncrementalEvaluator, TaskId};
use crate::cost::{evaluate, CostBreakdown};
use crate::error::SynthError;
use crate::problem::{Implementation, Mapping, SynthesisProblem};
use crate::schedule::{check, check_serialized, FeasibilityReport};
use crate::Result;

/// Which schedulability view the optimizer must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FeasibilityMode {
    /// Per-application check: mutually exclusive variants share the processor
    /// (the paper's variant-aware view).
    #[default]
    PerApplication,
    /// Serialized check: all tasks of all variants are assumed concurrent
    /// (the view a serializing baseline is forced to take).
    Serialized,
}

/// Which search algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Enumerate every mapping (exact; exponential in the task count).
    Exhaustive,
    /// Depth-first search over partial mappings with an admissible lower bound
    /// (exact; returns the bit-identical optimum of [`SearchStrategy::Exhaustive`]
    /// while visiting only the subtrees the bound cannot cut).
    BranchAndBound,
    /// Greedy repair followed by local improvement (fast; near-optimal in practice).
    Greedy,
    /// Exhaustive up to [`EXHAUSTIVE_LIMIT`] tasks, greedy beyond.
    #[default]
    Auto,
}

/// Maximum task count for which [`SearchStrategy::Auto`] still enumerates exhaustively.
pub const EXHAUSTIVE_LIMIT: usize = 18;

/// Result of a partitioning run.
///
/// The candidate accounting is strategy-specific but always satisfies
/// `pruned_candidates <= evaluated_candidates`:
///
/// * **Exhaustive**: `evaluated_candidates` is the number of enumerated masks
///   (always `2^n`); `pruned_candidates` counts the masks the shared best-cost bound
///   discarded before their schedulability check.
/// * **Branch-and-bound**: `evaluated_candidates` is the number of decision-tree
///   nodes visited (one per single-task decision applied); `pruned_candidates`
///   counts the subtrees cut at such a node, by the bound or by partial
///   infeasibility.
/// * **Greedy**: `evaluated_candidates` is the number of complete mappings assessed;
///   nothing is pruned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionResult {
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Its cost breakdown.
    pub cost: CostBreakdown,
    /// The feasibility report of the chosen mapping.
    pub feasibility: FeasibilityReport,
    /// Number of candidates the search considered (see the type-level docs for the
    /// per-strategy meaning).
    pub evaluated_candidates: u64,
    /// Of the considered candidates, how many were discarded cheaply (see the
    /// type-level docs for the per-strategy meaning).
    pub pruned_candidates: u64,
}

/// Finds the cheapest feasible mapping.
///
/// # Errors
///
/// Returns [`SynthError::Infeasible`] if not even the all-hardware mapping is feasible
/// (cannot happen with the utilization-based check, but guards future constraint kinds),
/// [`SynthError::NoApplications`] for empty problems, or any evaluation error.
pub fn optimize(
    problem: &SynthesisProblem,
    mode: FeasibilityMode,
    strategy: SearchStrategy,
) -> Result<PartitionResult> {
    problem.validate()?;
    let compiled = CompiledProblem::compile(problem)?;
    optimize_compiled(&compiled, mode, strategy)
}

/// Finds the cheapest feasible mapping of an already-compiled problem.
///
/// This is [`optimize`] without the string-keyed detour: callers that build a
/// [`CompiledProblem`] directly (see
/// [`crate::bridge::compiled_from_flat_graph`]) skip both the
/// `SynthesisProblem` materialization and the per-call re-compilation. The
/// result is bit-identical to routing the same problem through [`optimize`].
///
/// # Errors
///
/// As [`optimize`]: [`SynthError::NoApplications`] for a problem without
/// applications, [`SynthError::Validation`] for an application without tasks,
/// [`SynthError::Infeasible`] when no mapping is schedulable.
pub fn optimize_compiled(
    compiled: &CompiledProblem,
    mode: FeasibilityMode,
    strategy: SearchStrategy,
) -> Result<PartitionResult> {
    // The same preconditions `optimize` enforces via `problem.validate()`,
    // so the two entry points accept and reject identical inputs.
    if compiled.application_count() == 0 {
        return Err(SynthError::NoApplications);
    }
    for application in 0..compiled.application_count() {
        if compiled.application_tasks(application).is_empty() {
            return Err(SynthError::Validation(format!(
                "application `{}` has no tasks",
                compiled.application_name(application)
            )));
        }
    }
    match strategy {
        SearchStrategy::Exhaustive => optimize_exhaustive(compiled, mode),
        SearchStrategy::BranchAndBound => optimize_branch_and_bound(compiled, mode),
        SearchStrategy::Greedy => optimize_greedy(compiled, mode),
        SearchStrategy::Auto => {
            if compiled.task_count() <= EXHAUSTIVE_LIMIT {
                optimize_exhaustive(compiled, mode)
            } else {
                optimize_greedy(compiled, mode)
            }
        }
    }
}

/// The exact ordering key shared by every exact search. The historical serial scan
/// replaces the incumbent on an exact `(total cost, hardware-task count)` tie, i.e.
/// it keeps the **highest** mask among tied optima — `Reverse(mask)` reproduces that
/// under a min-reduction.
type CandidateKey = (u64, u32, std::cmp::Reverse<u64>);

fn candidate_key(total: u64, mask: u64) -> CandidateKey {
    (total, mask.count_ones(), std::cmp::Reverse(mask))
}

/// Best candidate found by one worker, as `(key, mask)`; the mapping is only
/// materialized once, after the reduction.
type WorkerBest = Option<(CandidateKey, u64)>;

fn merge_best(best: &mut WorkerBest, candidate: (CandidateKey, u64)) {
    if best.as_ref().is_none_or(|current| candidate.0 < current.0) {
        *best = Some(candidate);
    }
}

/// Outcome of scanning one contiguous chunk of masks (or one set of subtree roots).
struct WorkerOutcome {
    best: WorkerBest,
    evaluated: u64,
    pruned: u64,
}

/// Scans `masks`, sharing (and tightening) the best-total bound with sibling chunks.
fn search_chunk(
    compiled: &CompiledProblem,
    mode: FeasibilityMode,
    masks: std::ops::Range<u64>,
    bound: &AtomicU64,
) -> WorkerOutcome {
    let areas = compiled.hardware_areas();
    let mut outcome = WorkerOutcome {
        best: None,
        evaluated: 0,
        pruned: 0,
    };
    for mask in masks {
        outcome.evaluated += 1;
        // Hardware areas are a lower bound on the total cost of this mask (the
        // processor, if needed, only adds to it). A strictly larger bound can
        // neither beat nor tie the best mapping seen so far, so the expensive
        // schedulability check is skipped.
        let mut area_bound = 0u64;
        let mut bits = mask;
        while bits != 0 {
            let index = bits.trailing_zeros() as usize;
            area_bound += areas[index];
            bits &= bits - 1;
        }
        if area_bound > bound.load(Ordering::Relaxed) {
            outcome.pruned += 1;
            continue;
        }

        if !compiled.feasible_mask(mask, mode) {
            continue;
        }
        let total = compiled.total_cost_of_mask(mask);
        bound.fetch_min(total, Ordering::Relaxed);
        merge_best(&mut outcome.best, (candidate_key(total, mask), mask));
    }
    outcome
}

fn materialize(
    compiled: &CompiledProblem,
    mode: FeasibilityMode,
    outcome: WorkerOutcome,
) -> Result<PartitionResult> {
    let (_, mask) = outcome.best.ok_or_else(|| {
        SynthError::Infeasible("no mapping satisfies the schedulability constraints".to_string())
    })?;
    Ok(PartitionResult {
        mapping: compiled.mapping_of_mask(mask),
        cost: compiled.cost_breakdown_of_mask(mask),
        feasibility: compiled.feasibility_report_of_mask(mask, mode),
        evaluated_candidates: outcome.evaluated,
        pruned_candidates: outcome.pruned,
    })
}

fn reduce_outcomes(outcomes: impl IntoIterator<Item = WorkerOutcome>) -> WorkerOutcome {
    let mut reduced = WorkerOutcome {
        best: None,
        evaluated: 0,
        pruned: 0,
    };
    for outcome in outcomes {
        reduced.evaluated += outcome.evaluated;
        reduced.pruned += outcome.pruned;
        if let Some(candidate) = outcome.best {
            merge_best(&mut reduced.best, candidate);
        }
    }
    reduced
}

fn optimize_exhaustive(
    compiled: &CompiledProblem,
    mode: FeasibilityMode,
) -> Result<PartitionResult> {
    let n = compiled.task_count();
    assert!(
        n < 64,
        "exhaustive search is limited to fewer than 64 tasks"
    );
    let total: u64 = 1u64 << n;

    // One chunk per hardware thread is enough: the per-mask work is uniform apart
    // from pruning, and fewer chunks keep the bound-sharing traffic low. Small
    // spaces run on the calling thread — `optimize` fires once per application in
    // the independent flows, so a per-call thread spawn would dominate there.
    let bound = AtomicU64::new(u64::MAX);
    let chunk_count = if total <= 1 << 10 {
        1u64
    } else {
        rayon::current_num_threads().min(usize::try_from(total).unwrap_or(usize::MAX)) as u64
    };

    let outcomes: Vec<WorkerOutcome> = if chunk_count == 1 {
        vec![search_chunk(compiled, mode, 0..total, &bound)]
    } else {
        let chunk_size = total.div_ceil(chunk_count);
        let mut slots: Vec<Option<WorkerOutcome>> = Vec::new();
        slots.resize_with(chunk_count as usize, || None);
        rayon::scope(|scope| {
            for (chunk_index, slot) in slots.iter_mut().enumerate() {
                let start = chunk_index as u64 * chunk_size;
                let end = (start + chunk_size).min(total);
                let bound = &bound;
                scope.spawn(move |_| {
                    *slot = Some(search_chunk(compiled, mode, start..end, bound));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk reports an outcome"))
            .collect()
    };

    materialize(compiled, mode, reduce_outcomes(outcomes))
}

/// One worker's depth-first walk over (a set of subtrees of) the decision tree.
struct BnbWorker<'p> {
    evaluator: IncrementalEvaluator<'p>,
    mode: FeasibilityMode,
    /// Suffix sums of hardware areas in decision order: `suffix_area[d]` is the total
    /// area of the still-undecided tasks `d..n`.
    suffix_area: &'p [u64],
    bound: &'p AtomicU64,
    outcome: WorkerOutcome,
}

impl<'p> BnbWorker<'p> {
    fn new(
        compiled: &'p CompiledProblem,
        mode: FeasibilityMode,
        suffix_area: &'p [u64],
        bound: &'p AtomicU64,
    ) -> Self {
        BnbWorker {
            // Undecided tasks park in hardware: they contribute no processor load, so
            // the evaluator's application loads are exactly the decided-software
            // loads — a lower bound on every completion's loads.
            evaluator: IncrementalEvaluator::all_hardware(compiled),
            mode,
            suffix_area,
            bound,
            outcome: WorkerOutcome {
                best: None,
                evaluated: 0,
                pruned: 0,
            },
        }
    }

    /// Admissible lower bound on the total cost of every completion below a node at
    /// `depth`: the hardware area already committed by decided tasks, plus the
    /// processor cost once any decided task is in software — or, while everything
    /// decided sits in hardware, the cheaper of "some remaining task goes to
    /// software" (processor cost) and "all remaining tasks go to hardware" (their
    /// area sum).
    fn lower_bound(&self, depth: usize) -> u64 {
        let compiled = self.evaluator.problem();
        let committed_area = self.evaluator.hardware_area() - self.suffix_area[depth];
        let floor = if self.evaluator.software_count() > 0 {
            compiled.processor_cost()
        } else {
            compiled.processor_cost().min(self.suffix_area[depth])
        };
        committed_area + floor
    }

    /// Applies the decision for the task at `depth` and reports whether the subtree
    /// below it survives the partial-infeasibility and bound cuts. `counted` is
    /// false only while a worker re-walks a prefix node owned by a sibling worker,
    /// so every decision-tree node is counted at most once across all workers.
    fn enter(&mut self, depth: usize, implementation: Implementation, counted: bool) -> bool {
        if counted {
            self.outcome.evaluated += 1;
        }
        self.evaluator.apply(TaskId(depth as u32), implementation);
        // Decided-software loads only grow toward the leaves, so a partial overload
        // dooms every completion; and a lower bound strictly above the shared
        // incumbent cannot beat or tie it (ties must survive for exact
        // tie-breaking, hence the strict comparison).
        if !self.evaluator.feasible(self.mode)
            || self.lower_bound(depth + 1) > self.bound.load(Ordering::Relaxed)
        {
            if counted {
                self.outcome.pruned += 1;
            }
            return false;
        }
        true
    }

    fn dfs(&mut self, depth: usize, mask: u64) {
        let n = self.evaluator.problem().task_count();
        if depth == n {
            // Complete mapping; partial pruning kept it feasible on the way down.
            let total = self.evaluator.total_cost();
            self.bound.fetch_min(total, Ordering::Relaxed);
            merge_best(&mut self.outcome.best, (candidate_key(total, mask), mask));
            return;
        }
        // Software first: leaves are reached in ascending mask order, mirroring the
        // serial scan, and the cheap low-mask region seeds the incumbent early.
        if self.enter(depth, Implementation::Software, true) {
            self.dfs(depth + 1, mask);
        }
        self.evaluator.undo();
        if self.enter(depth, Implementation::Hardware, true) {
            self.dfs(depth + 1, mask | (1u64 << depth));
        }
        self.evaluator.undo();
    }

    /// Walks the prefix tree of the first `root_depth` decisions restricted to the
    /// contiguous root range `lo..hi`, then runs the unrestricted [`Self::dfs`]
    /// below every surviving root.
    ///
    /// Root indices order the prefix subtrees left to right: task `depth` maps to
    /// bit `root_depth - 1 - depth`, so a prefix node at `depth` spans the aligned
    /// root range `base .. base + 2^(root_depth - depth)` and a contiguous range of
    /// roots shares its early decisions. Shared prefixes inside one worker's range
    /// are therefore applied (and counted) once, not once per root. A prefix node
    /// whose span crosses worker boundaries is still re-applied by each
    /// intersecting worker, but only its **owner** — the worker whose range
    /// contains the node's leftmost root — counts the visit (and any cut at it), so
    /// `evaluated_candidates` sums to at most one visit per distinct tree node.
    fn search_roots(&mut self, depth: usize, root_depth: usize, base: u64, lo: u64, hi: u64) {
        if depth == root_depth {
            // `base` is the root index; reassemble the mask (task `d` = bit `d`).
            let mut mask = 0u64;
            for d in 0..root_depth {
                if base & (1u64 << (root_depth - 1 - d)) != 0 {
                    mask |= 1u64 << d;
                }
            }
            self.dfs(root_depth, mask);
            return;
        }
        let span = 1u64 << (root_depth - depth - 1);
        for (branch, implementation) in [
            (0u64, Implementation::Software),
            (1u64, Implementation::Hardware),
        ] {
            let branch_base = base + branch * span;
            if branch_base + span <= lo || branch_base >= hi {
                continue;
            }
            let owned = branch_base >= lo;
            if self.enter(depth, implementation, owned) {
                self.search_roots(depth + 1, root_depth, branch_base, lo, hi);
            }
            self.evaluator.undo();
        }
    }
}

fn optimize_branch_and_bound(
    compiled: &CompiledProblem,
    mode: FeasibilityMode,
) -> Result<PartitionResult> {
    let n = compiled.task_count();
    assert!(
        n < 64,
        "branch-and-bound search is limited to fewer than 64 tasks"
    );

    let mut suffix_area = vec![0u64; n + 1];
    for depth in (0..n).rev() {
        suffix_area[depth] = suffix_area[depth + 1] + compiled.hardware_areas()[depth];
    }
    // The all-hardware mapping is always feasible (zero processor load), so its total
    // is an achievable incumbent value the very first bound check can prune against.
    // It is seeded as a *value* only — the all-hardware leaf itself is still visited
    // and key-compared, so tie-breaking stays exact.
    let bound = AtomicU64::new(suffix_area[0]);

    let threads = rayon::current_num_threads();
    let outcome = if threads <= 1 || n <= 10 {
        let mut worker = BnbWorker::new(compiled, mode, &suffix_area, &bound);
        worker.search_roots(0, 0, 0, 0, 1);
        worker.outcome
    } else {
        // Shard subtree roots (the assignments of the first `root_depth` tasks)
        // across workers in contiguous ranges, the way the exhaustive search shards
        // masks. Each worker walks the prefix tree restricted to its range, so the
        // only duplicated evaluator work is the boundary prefixes shared between
        // neighbouring workers (at most `workers * root_depth` extra flips, none of
        // them double-counted — see `search_roots`). Aim for several roots per
        // worker: with exactly one power-of-two root per thread, a non-power-of-two
        // thread count would leave `roots.div_ceil(workers)`-sized ranges to a
        // prefix of the workers and the rest idle.
        let mut root_depth = 0usize;
        while (1u64 << root_depth) < 4 * threads as u64 && root_depth < n.min(10) {
            root_depth += 1;
        }
        let roots = 1u64 << root_depth;
        let worker_count = (threads as u64).min(roots);
        let per_worker = roots.div_ceil(worker_count);
        let mut slots: Vec<Option<WorkerOutcome>> = Vec::new();
        slots.resize_with(worker_count as usize, || None);
        rayon::scope(|scope| {
            for (worker_index, slot) in slots.iter_mut().enumerate() {
                let start = worker_index as u64 * per_worker;
                let end = (start + per_worker).min(roots);
                let (suffix_area, bound) = (&suffix_area, &bound);
                scope.spawn(move |_| {
                    let mut worker = BnbWorker::new(compiled, mode, suffix_area, bound);
                    worker.search_roots(0, root_depth, 0, start, end);
                    *slot = Some(worker.outcome);
                });
            }
        });
        reduce_outcomes(
            slots
                .into_iter()
                .map(|slot| slot.expect("every worker reports an outcome")),
        )
    };

    materialize(compiled, mode, outcome)
}

/// The historical single-threaded, prune-free, string-keyed scan, kept as the oracle
/// the compiled searches are differentially tested against: it goes through
/// [`crate::schedule::check`]/[`crate::schedule::check_serialized`] and
/// [`crate::cost::evaluate`] for every single mask, so any divergence in the compiled
/// layer shows up as a mismatch.
///
/// # Errors
///
/// As [`optimize`] with [`SearchStrategy::Exhaustive`].
pub fn optimize_serial_reference(
    problem: &SynthesisProblem,
    mode: FeasibilityMode,
) -> Result<PartitionResult> {
    problem.validate()?;
    let names: Vec<String> = problem.tasks().map(|t| t.name.clone()).collect();
    let n = names.len();
    assert!(
        n < 64,
        "exhaustive search is limited to fewer than 64 tasks"
    );
    let mut best: Option<PartitionResult> = None;
    let mut evaluated = 0u64;
    for mask in 0u64..(1u64 << n) {
        let mut mapping = Mapping::new();
        for (index, name) in names.iter().enumerate() {
            let implementation = if mask & (1 << index) != 0 {
                Implementation::Hardware
            } else {
                Implementation::Software
            };
            mapping.assign(name.clone(), implementation);
        }
        evaluated += 1;
        let report = match mode {
            FeasibilityMode::PerApplication => check(problem, &mapping)?,
            FeasibilityMode::Serialized => check_serialized(problem, &mapping)?,
        };
        if !report.feasible() {
            continue;
        }
        let cost = evaluate(problem, &mapping, None)?;
        let better = match &best {
            None => true,
            Some(current) => {
                let key = (cost.total(), cost.hardware_tasks.len(), mask);
                let current_key = (
                    current.cost.total(),
                    current.cost.hardware_tasks.len(),
                    u64::MAX,
                );
                key < current_key
            }
        };
        if better {
            best = Some(PartitionResult {
                mapping,
                cost,
                feasibility: report,
                evaluated_candidates: 0,
                pruned_candidates: 0,
            });
        }
    }
    let mut result = best.ok_or_else(|| {
        SynthError::Infeasible("no mapping satisfies the schedulability constraints".to_string())
    })?;
    result.evaluated_candidates = evaluated;
    Ok(result)
}

fn optimize_greedy(compiled: &CompiledProblem, mode: FeasibilityMode) -> Result<PartitionResult> {
    let n = compiled.task_count();
    let mut evaluator = IncrementalEvaluator::new(compiled);
    let mut evaluated = 1u64;

    // Repair: while some application overloads the processor, move the software task
    // with the highest utilization-per-area ratio (among tasks of overloaded
    // applications) to hardware.
    while !evaluator.feasible(mode) {
        let candidates: Vec<TaskId> = match mode {
            FeasibilityMode::Serialized => (0..n as u32).map(TaskId).collect(),
            FeasibilityMode::PerApplication => (0..compiled.application_count())
                .filter(|&app| evaluator.load_permille(app) > compiled.capacity_permille())
                .flat_map(|app| compiled.application_tasks(app).iter().copied())
                .collect(),
        };
        let best_move = candidates
            .into_iter()
            .filter(|&task| evaluator.implementation(task) == Implementation::Software)
            .max_by_key(|&task| {
                // Highest utilization relief per unit of hardware cost; scaled to keep
                // integer arithmetic meaningful.
                compiled.utilizations()[task.index()] * 1000
                    / compiled.hardware_areas()[task.index()].max(1)
            });
        let Some(task) = best_move else {
            return Err(SynthError::Infeasible(
                "processor overloaded but no software task left to move".to_string(),
            ));
        };
        evaluator.apply(task, Implementation::Hardware);
        evaluated += 1;
    }

    // Improvement: move hardware tasks back to software when that stays feasible and
    // reduces total cost.
    let mut improved = true;
    while improved {
        improved = false;
        for index in 0..n as u32 {
            let task = TaskId(index);
            if evaluator.implementation(task) != Implementation::Hardware {
                continue;
            }
            let old_cost = evaluator.total_cost();
            evaluator.apply(task, Implementation::Software);
            evaluated += 1;
            if evaluator.feasible(mode) && evaluator.total_cost() < old_cost {
                evaluator.commit();
                improved = true;
            } else {
                evaluator.undo();
            }
        }
    }

    Ok(PartitionResult {
        mapping: evaluator.mapping(),
        cost: evaluator.cost_breakdown(),
        feasibility: evaluator.feasibility_report(mode),
        evaluated_candidates: evaluated,
        pruned_candidates: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;
    use crate::problem::{ApplicationSpec, TaskSpec};

    #[test]
    fn optimize_compiled_rejects_degenerate_problems_like_optimize() {
        // Both entry points must accept and reject identical inputs: an
        // application without tasks is a validation error through either.
        let mut problem = toy_problem();
        problem
            .add_application(ApplicationSpec::new("empty", Vec::<String>::new()))
            .unwrap();
        let mode = FeasibilityMode::PerApplication;
        let strategy = SearchStrategy::Exhaustive;
        assert!(matches!(
            optimize(&problem, mode, strategy),
            Err(SynthError::Validation(_))
        ));
        let compiled = CompiledProblem::compile(&problem).unwrap();
        assert!(matches!(
            optimize_compiled(&compiled, mode, strategy),
            Err(SynthError::Validation(_))
        ));
        // And the no-applications case maps to the same error either way.
        let bare = SynthesisProblem::new("bare", 10);
        assert!(matches!(
            optimize(&bare, mode, strategy),
            Err(SynthError::NoApplications)
        ));
        let compiled_bare = CompiledProblem::compile(&bare).unwrap();
        assert!(matches!(
            optimize_compiled(&compiled_bare, mode, strategy),
            Err(SynthError::NoApplications)
        ));
    }

    #[test]
    fn exhaustive_finds_the_paper_optimum() {
        // Joint (variant-aware) synthesis of the Table 1 system: PA moves to hardware,
        // both clusters share the processor with PB.
        let problem = toy_problem();
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert_eq!(result.cost.total(), 41);
        assert_eq!(result.cost.hardware_tasks, vec!["PA"]);
        assert_eq!(
            result.cost.software_tasks,
            vec!["PB", "cluster1", "cluster2"]
        );
        assert!(result.feasibility.feasible());
        assert_eq!(result.evaluated_candidates, 16);
    }

    #[test]
    fn branch_and_bound_finds_the_paper_optimum() {
        let problem = toy_problem();
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::BranchAndBound,
        )
        .unwrap();
        assert_eq!(result.cost.total(), 41);
        assert_eq!(result.cost.hardware_tasks, vec!["PA"]);
        assert!(result.feasibility.feasible());
        // Nodes visited can never exceed the full decision tree (2^(n+1) - 2).
        assert!(result.evaluated_candidates <= (1 << 5) - 2);
        assert!(result.pruned_candidates <= result.evaluated_candidates);
    }

    #[test]
    fn per_application_synthesis_matches_table1_rows() {
        let problem = toy_problem();
        let app1 = problem.restrict_to("application1").unwrap();
        let result1 =
            optimize(&app1, FeasibilityMode::PerApplication, SearchStrategy::Auto).unwrap();
        assert_eq!(result1.cost.total(), 34);
        assert_eq!(result1.cost.hardware_tasks, vec!["cluster1"]);

        let app2 = problem.restrict_to("application2").unwrap();
        let result2 =
            optimize(&app2, FeasibilityMode::PerApplication, SearchStrategy::Auto).unwrap();
        assert_eq!(result2.cost.total(), 38);
        assert_eq!(result2.cost.hardware_tasks, vec!["cluster2"]);
    }

    #[test]
    fn serialized_feasibility_forces_more_hardware() {
        let problem = toy_problem();
        let serialized = optimize(
            &problem,
            FeasibilityMode::Serialized,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        let variant_aware = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert!(
            serialized.cost.total() > variant_aware.cost.total(),
            "serialization ({}) must cost more than variant-aware synthesis ({})",
            serialized.cost.total(),
            variant_aware.cost.total()
        );
    }

    #[test]
    fn greedy_is_feasible_but_may_miss_the_global_optimum() {
        // The paper's optimum requires the non-local move "put the *common* process PA
        // into hardware so that both clusters can stay in software". The greedy repair
        // heuristic instead moves the clusters (the locally best utilization/area
        // ratio) and ends at the superposition-like architecture. This documents the
        // gap that motivates the exhaustive search for small systems.
        let problem = toy_problem();
        let greedy = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Greedy,
        )
        .unwrap();
        let exact = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert!(greedy.feasibility.feasible());
        assert!(greedy.cost.total() >= exact.cost.total());
        assert_eq!(greedy.cost.total(), 57);
    }

    #[test]
    fn compiled_searches_match_the_serial_reference_on_table1() {
        // Acceptance check for the compiled searches: same optimum, same mapping, same
        // tie-breaking as the historical serial scan on the paper's Table 1 problem.
        let problem = toy_problem();
        for mode in [FeasibilityMode::PerApplication, FeasibilityMode::Serialized] {
            let serial = optimize_serial_reference(&problem, mode).unwrap();
            let compiled = CompiledProblem::compile(&problem).unwrap();
            let parallel = optimize_exhaustive(&compiled, mode).unwrap();
            assert_eq!(parallel.mapping, serial.mapping);
            assert_eq!(parallel.cost, serial.cost);
            assert_eq!(parallel.feasibility, serial.feasibility);
            assert_eq!(parallel.evaluated_candidates, serial.evaluated_candidates);
            let bnb = optimize_branch_and_bound(&compiled, mode).unwrap();
            assert_eq!(bnb.mapping, serial.mapping);
            assert_eq!(bnb.cost, serial.cost);
            assert_eq!(bnb.feasibility, serial.feasibility);
        }
    }

    /// 14 tasks = 16384 masks: beyond the serial-scan threshold, so the exhaustive
    /// search actually fans out over multiple chunks and the shared bound prunes.
    fn chunked_problem() -> SynthesisProblem {
        let mut problem = SynthesisProblem::new("chunked", 40);
        let mut app_a = Vec::new();
        let mut app_b = Vec::new();
        for index in 0..14u64 {
            let name = format!("t{index}");
            problem.add_task(TaskSpec::new(
                &name,
                20 + (index * 13) % 60,
                100,
                10 + (index * 7) % 30,
                5,
            ));
            if index % 2 == 0 {
                app_a.push(name);
            } else {
                app_b.push(name);
            }
        }
        problem
            .add_application(ApplicationSpec::new("a", app_a))
            .unwrap();
        problem
            .add_application(ApplicationSpec::new("b", app_b))
            .unwrap();
        problem
    }

    #[test]
    fn parallel_exhaustive_matches_serial_on_a_chunked_space() {
        let problem = chunked_problem();
        let compiled = CompiledProblem::compile(&problem).unwrap();
        let parallel = optimize_exhaustive(&compiled, FeasibilityMode::PerApplication).unwrap();
        let serial = optimize_serial_reference(&problem, FeasibilityMode::PerApplication).unwrap();
        assert_eq!(parallel.mapping, serial.mapping);
        assert_eq!(parallel.cost.total(), serial.cost.total());
        assert_eq!(parallel.evaluated_candidates, 1 << 14);
        assert!(
            parallel.pruned_candidates > 0,
            "the shared bound should discard some of the 16384 masks"
        );
    }

    #[test]
    fn candidate_accounting_is_consistent_across_strategies() {
        let problem = chunked_problem();
        let n = problem.task_count() as u64;
        let serial = optimize_serial_reference(&problem, FeasibilityMode::PerApplication).unwrap();
        let compiled = CompiledProblem::compile(&problem).unwrap();
        let exhaustive = optimize_exhaustive(&compiled, FeasibilityMode::PerApplication).unwrap();
        let bnb = optimize_branch_and_bound(&compiled, FeasibilityMode::PerApplication).unwrap();
        let greedy = optimize_greedy(&compiled, FeasibilityMode::PerApplication).unwrap();

        // Exhaustive: every mask is a candidate; pruning is a subset of enumeration.
        assert_eq!(exhaustive.evaluated_candidates, 1 << n);
        assert!(exhaustive.pruned_candidates <= exhaustive.evaluated_candidates);

        // Branch-and-bound: node visits are bounded by the full decision tree and —
        // on a space this size — far below the leaf count; cuts happen at visited
        // nodes only; the optimum is bit-identical.
        assert_eq!(bnb.mapping, serial.mapping);
        assert_eq!(bnb.cost, serial.cost);
        assert!(bnb.evaluated_candidates <= (1 << (n + 1)) - 2);
        assert!(
            bnb.evaluated_candidates < exhaustive.evaluated_candidates,
            "branch-and-bound must visit fewer nodes ({}) than the exhaustive \
             enumeration ({})",
            bnb.evaluated_candidates,
            exhaustive.evaluated_candidates
        );
        assert!(bnb.pruned_candidates <= bnb.evaluated_candidates);
        assert!(
            bnb.evaluated_candidates >= n,
            "at least one root-to-leaf path"
        );

        // Greedy never prunes.
        assert_eq!(greedy.pruned_candidates, 0);
        assert!(greedy.evaluated_candidates >= 1);
    }

    #[test]
    fn greedy_handles_larger_systems() {
        // 24 tasks exceed the exhaustive limit; Auto must still terminate and produce a
        // feasible mapping.
        let mut problem = SynthesisProblem::new("large", 50);
        let mut app_a = Vec::new();
        let mut app_b = Vec::new();
        for index in 0..24 {
            let name = format!("t{index}");
            problem.add_task(TaskSpec::new(&name, 10 + index % 7, 100, 20 + index, 5));
            if index % 3 == 0 {
                app_a.push(name.clone());
                app_b.push(name.clone());
            } else if index % 3 == 1 {
                app_a.push(name.clone());
            } else {
                app_b.push(name.clone());
            }
        }
        problem
            .add_application(ApplicationSpec::new("a", app_a))
            .unwrap();
        problem
            .add_application(ApplicationSpec::new("b", app_b))
            .unwrap();
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Auto,
        )
        .unwrap();
        assert!(result.feasibility.feasible());
        assert!(result.evaluated_candidates < 1u64 << 24);
    }

    #[test]
    fn infeasible_without_applications() {
        let problem = SynthesisProblem::new("empty", 1);
        assert!(matches!(
            optimize(
                &problem,
                FeasibilityMode::PerApplication,
                SearchStrategy::Auto
            ),
            Err(SynthError::NoApplications)
        ));
    }

    #[test]
    fn all_hardware_is_always_a_feasible_fallback() {
        // Tasks so heavy that nothing fits in software.
        let mut problem = SynthesisProblem::new("heavy", 100);
        problem.add_task(TaskSpec::new("x", 500, 100, 7, 1));
        problem.add_task(TaskSpec::new("y", 800, 100, 9, 1));
        problem
            .add_application(ApplicationSpec::new(
                "a",
                ["x".to_string(), "y".to_string()],
            ))
            .unwrap();
        for strategy in [
            SearchStrategy::Auto,
            SearchStrategy::BranchAndBound,
            SearchStrategy::Greedy,
        ] {
            let result = optimize(&problem, FeasibilityMode::PerApplication, strategy).unwrap();
            assert_eq!(result.cost.software_tasks.len(), 0);
            assert_eq!(result.cost.total(), 16);
        }
    }
}
