//! HW/SW partitioning: finding the cheapest feasible mapping.
//!
//! The optimizer searches the mapping space (software or hardware per task) for the
//! cheapest implementation whose schedulability check passes. Two search strategies are
//! provided: an exhaustive search that is exact for the small systems of the paper, and
//! a greedy heuristic (with a local-improvement pass) for the larger synthetic systems
//! used in the scaling experiments. [`optimize`] selects automatically based on the
//! task count.
//!
//! The exhaustive search enumerates the `2^n` mapping masks in contiguous chunks
//! across all hardware threads (via `rayon::scope`) and shares the best total cost
//! found so far in an atomic **bound**: a mask whose hardware-area lower bound already
//! exceeds the bound is discarded before the (much more expensive) schedulability
//! check and cost evaluation run. The chunk results are reduced by the exact ordering
//! key `(total cost, hardware-task count, Reverse(mask))`, so the parallel search
//! returns the same optimum, bit for bit, as the historical serial scan.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cost::{evaluate, CostBreakdown};
use crate::error::SynthError;
use crate::problem::{Implementation, Mapping, SynthesisProblem};
use crate::schedule::{check, check_serialized, FeasibilityReport};
use crate::Result;

/// Which schedulability view the optimizer must respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FeasibilityMode {
    /// Per-application check: mutually exclusive variants share the processor
    /// (the paper's variant-aware view).
    #[default]
    PerApplication,
    /// Serialized check: all tasks of all variants are assumed concurrent
    /// (the view a serializing baseline is forced to take).
    Serialized,
}

/// Which search algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Enumerate every mapping (exact; exponential in the task count).
    Exhaustive,
    /// Greedy repair followed by local improvement (fast; near-optimal in practice).
    Greedy,
    /// Exhaustive up to [`EXHAUSTIVE_LIMIT`] tasks, greedy beyond.
    #[default]
    Auto,
}

/// Maximum task count for which [`SearchStrategy::Auto`] still enumerates exhaustively.
pub const EXHAUSTIVE_LIMIT: usize = 18;

/// Result of a partitioning run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionResult {
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Its cost breakdown.
    pub cost: CostBreakdown,
    /// The feasibility report of the chosen mapping.
    pub feasibility: FeasibilityReport,
    /// Number of candidate mappings enumerated by the search (bound-pruned
    /// candidates included — they were considered, just discarded cheaply).
    pub evaluated_candidates: u64,
    /// Of the enumerated candidates, how many the shared best-cost bound discarded
    /// before schedulability/cost evaluation (always zero for the greedy search).
    pub pruned_candidates: u64,
}

fn feasibility(
    problem: &SynthesisProblem,
    mapping: &Mapping,
    mode: FeasibilityMode,
) -> Result<FeasibilityReport> {
    match mode {
        FeasibilityMode::PerApplication => check(problem, mapping),
        FeasibilityMode::Serialized => check_serialized(problem, mapping),
    }
}

/// Finds the cheapest feasible mapping.
///
/// # Errors
///
/// Returns [`SynthError::Infeasible`] if not even the all-hardware mapping is feasible
/// (cannot happen with the utilization-based check, but guards future constraint kinds),
/// [`SynthError::NoApplications`] for empty problems, or any evaluation error.
pub fn optimize(
    problem: &SynthesisProblem,
    mode: FeasibilityMode,
    strategy: SearchStrategy,
) -> Result<PartitionResult> {
    problem.validate()?;
    let use_exhaustive = match strategy {
        SearchStrategy::Exhaustive => true,
        SearchStrategy::Greedy => false,
        SearchStrategy::Auto => problem.task_count() <= EXHAUSTIVE_LIMIT,
    };
    if use_exhaustive {
        optimize_exhaustive(problem, mode)
    } else {
        optimize_greedy(problem, mode)
    }
}

fn task_names(problem: &SynthesisProblem) -> Vec<String> {
    problem.tasks().map(|t| t.name.clone()).collect()
}

/// Best candidate found in one chunk of the mask range, keyed for exact
/// tie-breaking. The historical serial scan replaces the incumbent on an exact
/// `(total cost, hardware-task count)` tie, i.e. it keeps the **highest** mask
/// among tied optima — `Reverse(mask)` reproduces that under a min-reduction.
struct ChunkBest {
    key: (u64, usize, std::cmp::Reverse<u64>),
    result: PartitionResult,
}

/// Outcome of scanning one contiguous chunk of masks.
struct ChunkOutcome {
    best: Option<ChunkBest>,
    pruned: u64,
}

fn materialize_mapping(names: &[String], mask: u64) -> Mapping {
    let mut mapping = Mapping::new();
    for (index, name) in names.iter().enumerate() {
        let implementation = if mask & (1 << index) != 0 {
            Implementation::Hardware
        } else {
            Implementation::Software
        };
        mapping.assign(name.clone(), implementation);
    }
    mapping
}

/// Scans `masks`, sharing (and tightening) the best-total bound with sibling chunks.
fn search_chunk(
    problem: &SynthesisProblem,
    mode: FeasibilityMode,
    names: &[String],
    areas: &[u64],
    masks: std::ops::Range<u64>,
    bound: &AtomicU64,
) -> Result<ChunkOutcome> {
    let mut outcome = ChunkOutcome {
        best: None,
        pruned: 0,
    };
    for mask in masks {
        // Hardware areas are a lower bound on the total cost of this mask (the
        // processor, if needed, only adds to it). A strictly larger bound can
        // neither beat nor tie the best mapping seen so far, so the expensive
        // schedulability check and cost evaluation are skipped.
        let mut area_bound = 0u64;
        let mut bits = mask;
        while bits != 0 {
            let index = bits.trailing_zeros() as usize;
            area_bound += areas[index];
            bits &= bits - 1;
        }
        if area_bound > bound.load(Ordering::Relaxed) {
            outcome.pruned += 1;
            continue;
        }

        let mapping = materialize_mapping(names, mask);
        let report = feasibility(problem, &mapping, mode)?;
        if !report.feasible() {
            continue;
        }
        let cost = evaluate(problem, &mapping, None)?;
        bound.fetch_min(cost.total(), Ordering::Relaxed);
        let key = (
            cost.total(),
            cost.hardware_tasks.len(),
            std::cmp::Reverse(mask),
        );
        if outcome
            .best
            .as_ref()
            .is_none_or(|current| key < current.key)
        {
            outcome.best = Some(ChunkBest {
                key,
                result: PartitionResult {
                    mapping,
                    cost,
                    feasibility: report,
                    evaluated_candidates: 0,
                    pruned_candidates: 0,
                },
            });
        }
    }
    Ok(outcome)
}

fn optimize_exhaustive(
    problem: &SynthesisProblem,
    mode: FeasibilityMode,
) -> Result<PartitionResult> {
    let names = task_names(problem);
    let n = names.len();
    assert!(
        n < 64,
        "exhaustive search is limited to fewer than 64 tasks"
    );
    let total: u64 = 1u64 << n;
    let areas: Vec<u64> = names
        .iter()
        .map(|name| problem.task(name).map_or(0, |task| task.hw_area))
        .collect();

    // One chunk per hardware thread is enough: the per-mask work is uniform apart
    // from pruning, and fewer chunks keep the bound-sharing traffic low. Small
    // spaces run on the calling thread — `optimize` fires once per application in
    // the independent flows, so a per-call thread spawn would dominate there.
    let bound = AtomicU64::new(u64::MAX);
    let chunk_count = if total <= 1 << 10 {
        1u64
    } else {
        rayon::current_num_threads().min(usize::try_from(total).unwrap_or(usize::MAX)) as u64
    };

    let outcomes: Vec<Result<ChunkOutcome>> = if chunk_count == 1 {
        vec![search_chunk(
            problem,
            mode,
            &names,
            &areas,
            0..total,
            &bound,
        )]
    } else {
        let chunk_size = total.div_ceil(chunk_count);
        let mut slots: Vec<Option<Result<ChunkOutcome>>> = Vec::new();
        slots.resize_with(chunk_count as usize, || None);
        rayon::scope(|scope| {
            for (chunk_index, slot) in slots.iter_mut().enumerate() {
                let start = chunk_index as u64 * chunk_size;
                let end = (start + chunk_size).min(total);
                let (problem, names, areas, bound) = (problem, &names, &areas, &bound);
                scope.spawn(move |_| {
                    *slot = Some(search_chunk(problem, mode, names, areas, start..end, bound));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every chunk reports an outcome"))
            .collect()
    };

    let mut best: Option<ChunkBest> = None;
    let mut pruned = 0u64;
    for outcome in outcomes {
        let outcome = outcome?;
        pruned += outcome.pruned;
        if let Some(chunk_best) = outcome.best {
            if best
                .as_ref()
                .is_none_or(|current| chunk_best.key < current.key)
            {
                best = Some(chunk_best);
            }
        }
    }

    let mut result = best.map(|chunk_best| chunk_best.result).ok_or_else(|| {
        SynthError::Infeasible("no mapping satisfies the schedulability constraints".to_string())
    })?;
    result.evaluated_candidates = total;
    result.pruned_candidates = pruned;
    Ok(result)
}

/// The historical single-threaded, prune-free scan, kept as the reference the
/// parallel search is tested against.
#[cfg(test)]
fn optimize_exhaustive_serial(
    problem: &SynthesisProblem,
    mode: FeasibilityMode,
) -> Result<PartitionResult> {
    let names = task_names(problem);
    let n = names.len();
    assert!(
        n < 64,
        "exhaustive search is limited to fewer than 64 tasks"
    );
    let mut best: Option<PartitionResult> = None;
    let mut evaluated = 0u64;
    for mask in 0u64..(1u64 << n) {
        let mapping = materialize_mapping(&names, mask);
        evaluated += 1;
        let report = feasibility(problem, &mapping, mode)?;
        if !report.feasible() {
            continue;
        }
        let cost = evaluate(problem, &mapping, None)?;
        let better = match &best {
            None => true,
            Some(current) => {
                let key = (cost.total(), cost.hardware_tasks.len(), mask);
                let current_key = (
                    current.cost.total(),
                    current.cost.hardware_tasks.len(),
                    u64::MAX,
                );
                key < current_key
            }
        };
        if better {
            best = Some(PartitionResult {
                mapping,
                cost,
                feasibility: report,
                evaluated_candidates: 0,
                pruned_candidates: 0,
            });
        }
    }
    let mut result = best.ok_or_else(|| {
        SynthError::Infeasible("no mapping satisfies the schedulability constraints".to_string())
    })?;
    result.evaluated_candidates = evaluated;
    Ok(result)
}

fn optimize_greedy(problem: &SynthesisProblem, mode: FeasibilityMode) -> Result<PartitionResult> {
    let names = task_names(problem);
    let mut mapping = Mapping::new();
    for name in &names {
        mapping.assign(name.clone(), Implementation::Software);
    }
    let mut evaluated = 1u64;

    // Repair: while some application overloads the processor, move the software task
    // with the highest utilization-per-area ratio (among tasks of overloaded
    // applications) to hardware.
    loop {
        let report = feasibility(problem, &mapping, mode)?;
        if report.feasible() {
            break;
        }
        let overloaded: Vec<&str> = report
            .applications
            .iter()
            .filter(|a| !a.feasible)
            .map(|a| a.application.as_str())
            .collect();
        let candidates: Vec<&str> = match mode {
            FeasibilityMode::Serialized => names.iter().map(String::as_str).collect(),
            FeasibilityMode::PerApplication => problem
                .applications()
                .iter()
                .filter(|a| overloaded.contains(&a.name.as_str()))
                .flat_map(|a| a.tasks.iter().map(String::as_str))
                .collect(),
        };
        let best_move = candidates
            .into_iter()
            .filter(|name| mapping.implementation(name) == Some(Implementation::Software))
            .filter_map(|name| problem.task(name))
            .max_by_key(|task| {
                // Highest utilization relief per unit of hardware cost; scaled to keep
                // integer arithmetic meaningful.
                task.utilization_permille() * 1000 / task.hw_area.max(1)
            });
        let Some(task) = best_move else {
            return Err(SynthError::Infeasible(
                "processor overloaded but no software task left to move".to_string(),
            ));
        };
        mapping.assign(task.name.clone(), Implementation::Hardware);
        evaluated += 1;
    }

    // Improvement: move hardware tasks back to software when that stays feasible and
    // reduces total cost.
    let mut improved = true;
    while improved {
        improved = false;
        for name in &names {
            if mapping.implementation(name) != Some(Implementation::Hardware) {
                continue;
            }
            let mut candidate = mapping.clone();
            candidate.assign(name.clone(), Implementation::Software);
            evaluated += 1;
            let report = feasibility(problem, &candidate, mode)?;
            if !report.feasible() {
                continue;
            }
            let old_cost = evaluate(problem, &mapping, None)?.total();
            let new_cost = evaluate(problem, &candidate, None)?.total();
            if new_cost < old_cost {
                mapping = candidate;
                improved = true;
            }
        }
    }

    let cost = evaluate(problem, &mapping, None)?;
    let report = feasibility(problem, &mapping, mode)?;
    Ok(PartitionResult {
        mapping,
        cost,
        feasibility: report,
        evaluated_candidates: evaluated,
        pruned_candidates: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;
    use crate::problem::{ApplicationSpec, TaskSpec};

    #[test]
    fn exhaustive_finds_the_paper_optimum() {
        // Joint (variant-aware) synthesis of the Table 1 system: PA moves to hardware,
        // both clusters share the processor with PB.
        let problem = toy_problem();
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert_eq!(result.cost.total(), 41);
        assert_eq!(result.cost.hardware_tasks, vec!["PA"]);
        assert_eq!(
            result.cost.software_tasks,
            vec!["PB", "cluster1", "cluster2"]
        );
        assert!(result.feasibility.feasible());
        assert_eq!(result.evaluated_candidates, 16);
    }

    #[test]
    fn per_application_synthesis_matches_table1_rows() {
        let problem = toy_problem();
        let app1 = problem.restrict_to("application1").unwrap();
        let result1 =
            optimize(&app1, FeasibilityMode::PerApplication, SearchStrategy::Auto).unwrap();
        assert_eq!(result1.cost.total(), 34);
        assert_eq!(result1.cost.hardware_tasks, vec!["cluster1"]);

        let app2 = problem.restrict_to("application2").unwrap();
        let result2 =
            optimize(&app2, FeasibilityMode::PerApplication, SearchStrategy::Auto).unwrap();
        assert_eq!(result2.cost.total(), 38);
        assert_eq!(result2.cost.hardware_tasks, vec!["cluster2"]);
    }

    #[test]
    fn serialized_feasibility_forces_more_hardware() {
        let problem = toy_problem();
        let serialized = optimize(
            &problem,
            FeasibilityMode::Serialized,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        let variant_aware = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert!(
            serialized.cost.total() > variant_aware.cost.total(),
            "serialization ({}) must cost more than variant-aware synthesis ({})",
            serialized.cost.total(),
            variant_aware.cost.total()
        );
    }

    #[test]
    fn greedy_is_feasible_but_may_miss_the_global_optimum() {
        // The paper's optimum requires the non-local move "put the *common* process PA
        // into hardware so that both clusters can stay in software". The greedy repair
        // heuristic instead moves the clusters (the locally best utilization/area
        // ratio) and ends at the superposition-like architecture. This documents the
        // gap that motivates the exhaustive search for small systems.
        let problem = toy_problem();
        let greedy = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Greedy,
        )
        .unwrap();
        let exact = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert!(greedy.feasibility.feasible());
        assert!(greedy.cost.total() >= exact.cost.total());
        assert_eq!(greedy.cost.total(), 57);
    }

    #[test]
    fn parallel_exhaustive_matches_the_serial_reference_on_table1() {
        // Acceptance check for the chunked search: same optimum, same mapping, same
        // tie-breaking as the historical serial scan on the paper's Table 1 problem.
        let problem = toy_problem();
        for mode in [FeasibilityMode::PerApplication, FeasibilityMode::Serialized] {
            let parallel = optimize_exhaustive(&problem, mode).unwrap();
            let serial = optimize_exhaustive_serial(&problem, mode).unwrap();
            assert_eq!(parallel.mapping, serial.mapping);
            assert_eq!(parallel.cost, serial.cost);
            assert_eq!(parallel.evaluated_candidates, serial.evaluated_candidates);
        }
    }

    #[test]
    fn parallel_exhaustive_matches_serial_on_a_chunked_space() {
        // 14 tasks = 16384 masks: beyond the serial-scan threshold, so the search
        // actually fans out over multiple chunks and the shared bound prunes.
        let mut problem = SynthesisProblem::new("chunked", 40);
        let mut app_a = Vec::new();
        let mut app_b = Vec::new();
        for index in 0..14u64 {
            let name = format!("t{index}");
            problem.add_task(TaskSpec::new(
                &name,
                20 + (index * 13) % 60,
                100,
                10 + (index * 7) % 30,
                5,
            ));
            if index % 2 == 0 {
                app_a.push(name);
            } else {
                app_b.push(name);
            }
        }
        problem
            .add_application(ApplicationSpec::new("a", app_a))
            .unwrap();
        problem
            .add_application(ApplicationSpec::new("b", app_b))
            .unwrap();

        let parallel = optimize_exhaustive(&problem, FeasibilityMode::PerApplication).unwrap();
        let serial = optimize_exhaustive_serial(&problem, FeasibilityMode::PerApplication).unwrap();
        assert_eq!(parallel.mapping, serial.mapping);
        assert_eq!(parallel.cost.total(), serial.cost.total());
        assert_eq!(parallel.evaluated_candidates, 1 << 14);
        assert!(
            parallel.pruned_candidates > 0,
            "the shared bound should discard some of the 16384 masks"
        );
    }

    #[test]
    fn greedy_handles_larger_systems() {
        // 24 tasks exceed the exhaustive limit; Auto must still terminate and produce a
        // feasible mapping.
        let mut problem = SynthesisProblem::new("large", 50);
        let mut app_a = Vec::new();
        let mut app_b = Vec::new();
        for index in 0..24 {
            let name = format!("t{index}");
            problem.add_task(TaskSpec::new(&name, 10 + index % 7, 100, 20 + index, 5));
            if index % 3 == 0 {
                app_a.push(name.clone());
                app_b.push(name.clone());
            } else if index % 3 == 1 {
                app_a.push(name.clone());
            } else {
                app_b.push(name.clone());
            }
        }
        problem
            .add_application(ApplicationSpec::new("a", app_a))
            .unwrap();
        problem
            .add_application(ApplicationSpec::new("b", app_b))
            .unwrap();
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Auto,
        )
        .unwrap();
        assert!(result.feasibility.feasible());
        assert!(result.evaluated_candidates < 1u64 << 24);
    }

    #[test]
    fn infeasible_without_applications() {
        let problem = SynthesisProblem::new("empty", 1);
        assert!(matches!(
            optimize(
                &problem,
                FeasibilityMode::PerApplication,
                SearchStrategy::Auto
            ),
            Err(SynthError::NoApplications)
        ));
    }

    #[test]
    fn all_hardware_is_always_a_feasible_fallback() {
        // Tasks so heavy that nothing fits in software.
        let mut problem = SynthesisProblem::new("heavy", 100);
        problem.add_task(TaskSpec::new("x", 500, 100, 7, 1));
        problem.add_task(TaskSpec::new("y", 800, 100, 9, 1));
        problem
            .add_application(ApplicationSpec::new(
                "a",
                ["x".to_string(), "y".to_string()],
            ))
            .unwrap();
        let result = optimize(
            &problem,
            FeasibilityMode::PerApplication,
            SearchStrategy::Auto,
        )
        .unwrap();
        assert_eq!(result.cost.software_tasks.len(), 0);
        assert_eq!(result.cost.total(), 16);
    }
}
