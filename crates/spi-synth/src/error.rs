//! Error type of the synthesis layer.

use std::fmt;

use spi_variants::VariantError;

/// Error raised while building or solving a synthesis problem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// A referenced task name does not exist in the problem.
    UnknownTask(String),
    /// A referenced application name does not exist in the problem.
    UnknownApplication(String),
    /// The problem contains no applications.
    NoApplications,
    /// No feasible implementation exists (even the all-hardware mapping violates a
    /// constraint, or a task has no hardware implementation).
    Infeasible(String),
    /// An error bubbled up from the variants layer while deriving the problem from a
    /// [`spi_variants::VariantSystem`].
    Variants(VariantError),
    /// Generic validation failure with a human-readable explanation.
    Validation(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::UnknownTask(name) => write!(f, "unknown task `{name}`"),
            SynthError::UnknownApplication(name) => write!(f, "unknown application `{name}`"),
            SynthError::NoApplications => write!(f, "the synthesis problem has no applications"),
            SynthError::Infeasible(msg) => write!(f, "no feasible implementation: {msg}"),
            SynthError::Variants(e) => write!(f, "variants error: {e}"),
            SynthError::Validation(msg) => write!(f, "validation failed: {msg}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Variants(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VariantError> for SynthError {
    fn from(e: VariantError) -> Self {
        SynthError::Variants(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(SynthError::UnknownTask("PA".into())
            .to_string()
            .contains("PA"));
        let err: SynthError = VariantError::Validation("x".into()).into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthError>();
    }
}
