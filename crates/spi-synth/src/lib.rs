//! # spi-synth
//!
//! The synthesis substrate used by the paper's evaluation (Section 5): hardware/software
//! partitioning of systems with function variants, with the cost model, schedulability
//! check and design-time model needed to regenerate Table 1 ("System Cost") and to
//! compare against the prior-work baselines.
//!
//! The crate is organised around [`SynthesisProblem`] (tasks, applications, processor
//! parameters). Problems are either built directly or derived from a
//! [`spi_variants::VariantSystem`] via [`bridge::from_variant_system`]. Five flows solve
//! a problem:
//!
//! | Flow | Function | Table 1 row |
//! |---|---|---|
//! | per-application synthesis | [`strategy::independent`] | "Application 1/2" |
//! | superposition of architectures | [`strategy::superposition`] | "Superposition" |
//! | variant-aware joint synthesis | [`strategy::variant_aware`] | "With variants" |
//! | serialization baseline \[6\] | [`baseline::serialization`] | (comparison) |
//! | incremental baseline \[5\] | [`baseline::incremental`] | (comparison) |
//!
//! [`report::table1`] assembles the paper-style table; [`design_time`] implements the
//! decision-counting design-time model; [`partition`] contains the exhaustive,
//! branch-and-bound and greedy optimizers; [`schedule`] the mutual-exclusion-aware
//! schedulability analysis; [`compiled`] the dense-index lowering
//! ([`CompiledProblem`]) and the incremental schedulability/cost state
//! ([`IncrementalEvaluator`]) the searches run on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bridge;
pub mod compiled;
pub mod cost;
pub mod design_time;
pub mod error;
pub mod partition;
pub mod problem;
pub mod report;
pub mod schedule;
pub mod strategy;

pub use bridge::{
    compiled_from_flat_graph, compiled_shard_sweep, from_flat_graph, from_variant_system,
    from_variant_system_shard, TaskParams,
};
pub use compiled::{CompiledProblem, IncrementalEvaluator, TaskId};
pub use cost::CostBreakdown;
pub use error::SynthError;
pub use partition::{FeasibilityMode, PartitionResult, SearchStrategy};
pub use problem::{ApplicationSpec, Implementation, Mapping, SynthesisProblem, TaskSpec};
pub use report::{table1, Table1, Table1Row};
pub use schedule::{FeasibilityReport, Schedule};
pub use strategy::SynthesisResult;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SynthError>;
