//! The design-time model.
//!
//! Section 5 of the paper argues that a variant-aware representation shortens the
//! overall design time because a process that occurs in all applications only has to be
//! considered once instead of `n` times. This module implements that counting argument:
//! each task carries a `synthesis_effort`, and a synthesis style's design time is the
//! sum of the efforts of every task it has to consider — counting duplicates whenever a
//! task is re-synthesized for another application.

use serde::{Deserialize, Serialize};

use crate::error::SynthError;
use crate::problem::SynthesisProblem;
use crate::Result;

/// Design-time accounting for one synthesis style.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignTimeBreakdown {
    /// Number of task-synthesis decisions made (tasks counted with multiplicity).
    pub decisions: u64,
    /// Total design time (sum of task efforts, with multiplicity).
    pub total: u64,
}

/// Design time of synthesizing a single application in isolation.
///
/// # Errors
///
/// Returns [`SynthError::UnknownApplication`] or [`SynthError::UnknownTask`].
pub fn per_application(
    problem: &SynthesisProblem,
    application: &str,
) -> Result<DesignTimeBreakdown> {
    let app = problem
        .application(application)
        .ok_or_else(|| SynthError::UnknownApplication(application.to_string()))?;
    let mut breakdown = DesignTimeBreakdown::default();
    for name in &app.tasks {
        let task = problem
            .task(name)
            .ok_or_else(|| SynthError::UnknownTask(name.clone()))?;
        breakdown.decisions += 1;
        breakdown.total += task.synthesis_effort;
    }
    Ok(breakdown)
}

/// Design time of synthesizing every application independently (and of the superposition
/// flow, which reuses those independent runs): the sum over all applications, so common
/// tasks are counted once **per application**.
///
/// # Errors
///
/// Propagates errors from [`per_application`].
pub fn independent(problem: &SynthesisProblem) -> Result<DesignTimeBreakdown> {
    let mut breakdown = DesignTimeBreakdown::default();
    for application in problem.applications() {
        let app = per_application(problem, &application.name)?;
        breakdown.decisions += app.decisions;
        breakdown.total += app.total;
    }
    Ok(breakdown)
}

/// Design time of the variant-aware flow: every distinct task is considered exactly
/// once, regardless of how many applications contain it.
pub fn joint(problem: &SynthesisProblem) -> DesignTimeBreakdown {
    let mut breakdown = DesignTimeBreakdown::default();
    for task in problem.tasks() {
        breakdown.decisions += 1;
        breakdown.total += task.synthesis_effort;
    }
    breakdown
}

/// Design time of an incremental flow (\[5\] in the paper): the first application is
/// synthesized completely; each later application only considers the tasks that have not
/// been synthesized before.
///
/// # Errors
///
/// Returns [`SynthError::UnknownApplication`] or [`SynthError::UnknownTask`].
pub fn incremental(problem: &SynthesisProblem, order: &[&str]) -> Result<DesignTimeBreakdown> {
    let mut seen = std::collections::BTreeSet::new();
    let mut breakdown = DesignTimeBreakdown::default();
    for application in order {
        let app = problem
            .application(application)
            .ok_or_else(|| SynthError::UnknownApplication(application.to_string()))?;
        for name in &app.tasks {
            if !seen.insert(name.clone()) {
                continue;
            }
            let task = problem
                .task(name)
                .ok_or_else(|| SynthError::UnknownTask(name.clone()))?;
            breakdown.decisions += 1;
            breakdown.total += task.synthesis_effort;
        }
    }
    Ok(breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;

    #[test]
    fn per_application_matches_table1_time_column() {
        let problem = toy_problem();
        assert_eq!(per_application(&problem, "application1").unwrap().total, 67);
        assert_eq!(per_application(&problem, "application2").unwrap().total, 73);
        assert!(matches!(
            per_application(&problem, "ghost"),
            Err(SynthError::UnknownApplication(_))
        ));
    }

    #[test]
    fn independent_counts_common_tasks_per_application() {
        let problem = toy_problem();
        let breakdown = independent(&problem).unwrap();
        assert_eq!(breakdown.total, 67 + 73);
        assert_eq!(breakdown.decisions, 6);
    }

    #[test]
    fn joint_counts_every_task_once() {
        let problem = toy_problem();
        let breakdown = joint(&problem);
        assert_eq!(breakdown.total, 118);
        assert_eq!(breakdown.decisions, 4);
    }

    #[test]
    fn joint_is_never_slower_than_independent() {
        let problem = toy_problem();
        assert!(joint(&problem).total <= independent(&problem).unwrap().total);
    }

    #[test]
    fn incremental_depends_only_on_coverage_not_order_for_time() {
        let problem = toy_problem();
        let forward = incremental(&problem, &["application1", "application2"]).unwrap();
        let backward = incremental(&problem, &["application2", "application1"]).unwrap();
        // Both orders consider each distinct task once, so the design time equals the
        // joint flow; the *result quality* (not the time) is what depends on the order.
        assert_eq!(forward.total, 118);
        assert_eq!(backward.total, 118);
        assert_eq!(forward.decisions, 4);
    }
}
