//! Table 1 style reporting.
//!
//! [`table1`] runs the four synthesis flows of the paper's Section 5 on a
//! [`SynthesisProblem`] and renders them in the same row/column layout as the paper's
//! "System Cost" table, so the experiment harness can print a directly comparable
//! artefact.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::problem::SynthesisProblem;
use crate::strategy::{independent, superposition, variant_aware};
use crate::Result;

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Row label (application name, "Superposition" or "With variants").
    pub label: String,
    /// Tasks implemented in software.
    pub software: Vec<String>,
    /// Processor cost.
    pub software_cost: u64,
    /// Tasks implemented in hardware.
    pub hardware: Vec<String>,
    /// Hardware cost.
    pub hardware_cost: u64,
    /// Total system cost.
    pub total: u64,
    /// Design time (decision-counting model).
    pub time: u64,
}

/// The reproduced Table 1.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows in the paper's order: one per application, then superposition, then the
    /// variant-aware flow.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Looks up a row by label.
    pub fn row(&self, label: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// The superposition row.
    pub fn superposition(&self) -> Option<&Table1Row> {
        self.row("Superposition")
    }

    /// The variant-aware row.
    pub fn with_variants(&self) -> Option<&Table1Row> {
        self.row("With variants")
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} | {:<24} | {:>4} | {:<24} | {:>4} | {:>5} | {:>5}",
            "", "Software", "", "Hardware", "", "Total", "Time"
        )?;
        writeln!(f, "{}", "-".repeat(16 + 24 + 4 + 24 + 4 + 5 + 5 + 20))?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<16} | {:<24} | {:>4} | {:<24} | {:>4} | {:>5} | {:>5}",
                row.label,
                row.software.join(", "),
                row.software_cost,
                row.hardware.join(", "),
                row.hardware_cost,
                row.total,
                row.time
            )?;
        }
        Ok(())
    }
}

/// Runs the four flows of the paper's evaluation and assembles the reproduced Table 1.
///
/// # Errors
///
/// Propagates errors from the individual synthesis flows.
pub fn table1(problem: &SynthesisProblem) -> Result<Table1> {
    let mut table = Table1::default();
    for result in independent(problem)? {
        let label = result
            .strategy
            .trim_start_matches("independent(")
            .trim_end_matches(')')
            .to_string();
        table.rows.push(Table1Row {
            label,
            software: result.cost.software_tasks.clone(),
            software_cost: result.cost.processor_cost,
            hardware: result.cost.hardware_tasks.clone(),
            hardware_cost: result.cost.hardware_cost,
            total: result.cost.total(),
            time: result.design_time,
        });
    }
    for result in [superposition(problem)?, variant_aware(problem)?] {
        let label = if result.strategy == "superposition" {
            "Superposition"
        } else {
            "With variants"
        };
        table.rows.push(Table1Row {
            label: label.to_string(),
            software: result.cost.software_tasks.clone(),
            software_cost: result.cost.processor_cost,
            hardware: result.cost.hardware_tasks.clone(),
            hardware_cost: result.cost.hardware_cost,
            total: result.cost.total(),
            time: result.design_time,
        });
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;

    #[test]
    fn table_has_the_paper_structure() {
        let table = table1(&toy_problem()).unwrap();
        assert_eq!(table.rows.len(), 4);
        assert_eq!(table.rows[0].label, "application1");
        assert_eq!(table.rows[1].label, "application2");
        assert!(table.superposition().is_some());
        assert!(table.with_variants().is_some());
    }

    #[test]
    fn totals_follow_the_paper_ordering() {
        let table = table1(&toy_problem()).unwrap();
        let app1 = table.rows[0].total;
        let app2 = table.rows[1].total;
        let superposition = table.superposition().unwrap();
        let variants = table.with_variants().unwrap();
        // Qualitative shape of Table 1: each single application is cheapest, the
        // superposition is the most expensive, the variant-aware flow sits in between
        // and beats the superposition on both cost and design time.
        assert!(app1 < variants.total && app2 < variants.total);
        assert!(variants.total < superposition.total);
        assert!(variants.time < superposition.time);
        // Exact calibrated values.
        assert_eq!((app1, app2), (34, 38));
        assert_eq!(superposition.total, 57);
        assert_eq!(variants.total, 41);
        assert_eq!((table.rows[0].time, table.rows[1].time), (67, 73));
        assert_eq!(superposition.time, 140);
        assert_eq!(variants.time, 118);
    }

    #[test]
    fn display_renders_all_rows() {
        let table = table1(&toy_problem()).unwrap();
        let text = table.to_string();
        assert!(text.contains("Superposition"));
        assert!(text.contains("With variants"));
        assert!(text.contains("41"));
        assert!(text.contains("118"));
    }
}
