//! The three synthesis flows compared in Table 1 of the paper.
//!
//! * [`independent`] — each application (variant) is synthesized on its own, yielding
//!   one architecture per application (Table 1, rows "Application 1" and
//!   "Application 2").
//! * [`superposition`] — the independent architectures are superposed into one flexible
//!   target architecture: software is reused, hardware adds up (row "Superposition").
//! * [`variant_aware`] — the variant-aware representation enables one joint optimization
//!   over all applications, exploiting the mutual exclusion of variants
//!   (row "With variants").

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::cost::{evaluate, CostBreakdown};
use crate::design_time;
use crate::partition::{optimize, FeasibilityMode, SearchStrategy};
use crate::problem::{Mapping, SynthesisProblem};
use crate::schedule::{check, FeasibilityReport};
use crate::Result;

/// Outcome of one synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesisResult {
    /// Human-readable name of the flow that produced the result.
    pub strategy: String,
    /// The chosen mapping over the tasks in scope.
    pub mapping: Mapping,
    /// Cost of the resulting architecture.
    pub cost: CostBreakdown,
    /// Design time according to the decision-counting model.
    pub design_time: u64,
    /// Schedulability of the result.
    pub feasibility: FeasibilityReport,
}

impl fmt::Display for SynthesisResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (design time {})",
            self.strategy, self.cost, self.design_time
        )
    }
}

/// The measured crossover above which [`SearchStrategy::BranchAndBound`]
/// beats the exhaustive enumeration that `Auto` would pick: below ~10 tasks,
/// compiling the problem and the per-node bookkeeping dominate the 2^n mask
/// sweep (see the `partition` section of `BENCH_variant_space.json`, where
/// branch-and-bound wins clearly at 10+ tasks); at and above it, bound
/// pruning wins and keeps winning ever more steeply. Because branch-and-bound
/// is *exact* (bit-identical optimum, tie-breaks included), routing through
/// it also extends exact synthesis past `Auto`'s 18-task exhaustive ceiling
/// instead of falling back to the greedy approximation.
pub const BNB_CROSSOVER_TASKS: usize = 10;

/// The strategy the per-application flows use for a subproblem of
/// `task_count` tasks: branch-and-bound at or above the crossover, `Auto`
/// (exhaustive at these sizes) below it.
fn flow_strategy(task_count: usize) -> SearchStrategy {
    if task_count >= BNB_CROSSOVER_TASKS {
        SearchStrategy::BranchAndBound
    } else {
        SearchStrategy::Auto
    }
}

/// Synthesizes every application independently.
///
/// Returns one result per application, in application order. This is the eager
/// collection of [`independent_iter`]. Each restricted subproblem is searched
/// with the measured flow strategy: exact everywhere, branch-and-bound from
/// [`BNB_CROSSOVER_TASKS`] tasks upward.
///
/// # Errors
///
/// Propagates optimizer and design-time errors.
pub fn independent(problem: &SynthesisProblem) -> Result<Vec<SynthesisResult>> {
    independent_iter(problem)?.collect()
}

/// Lazily synthesizes every application, yielding one result at a time.
///
/// On a problem bridged from a large variant space (one application per
/// combination) this streams results without holding all of them — the shape
/// consumed by sharded exploration, where a worker drains only its slice.
///
/// # Errors
///
/// Problem validation errors are returned immediately; per-application optimizer
/// and design-time errors are yielded in place of that application's result.
pub fn independent_iter(
    problem: &SynthesisProblem,
) -> Result<impl Iterator<Item = Result<SynthesisResult>> + '_> {
    problem.validate()?;
    Ok(problem.applications().iter().map(move |application| {
        let restricted = problem.restrict_to(&application.name)?;
        let partition = optimize(
            &restricted,
            FeasibilityMode::PerApplication,
            flow_strategy(restricted.task_count()),
        )?;
        let design_time = design_time::per_application(problem, &application.name)?;
        Ok(SynthesisResult {
            strategy: format!("independent({})", application.name),
            mapping: partition.mapping,
            cost: partition.cost,
            design_time: design_time.total,
            feasibility: partition.feasibility,
        })
    }))
}

/// Superposes the independently synthesized architectures into one flexible target
/// architecture.
///
/// Software parts common to several applications are reused directly (the processor is
/// paid for once); hardware parts differ per application and therefore add up. On a
/// mapping conflict (a task in software for one application and hardware for another)
/// the hardware implementation wins.
///
/// # Errors
///
/// Propagates errors from [`independent`] and the cost evaluation.
pub fn superposition(problem: &SynthesisProblem) -> Result<SynthesisResult> {
    let per_application = independent(problem)?;
    let mut mapping = Mapping::new();
    for result in &per_application {
        mapping.merge_prefer_hardware(&result.mapping);
    }
    let cost = evaluate(problem, &mapping, None)?;
    let feasibility = check(problem, &mapping)?;
    let design_time = design_time::independent(problem)?;
    Ok(SynthesisResult {
        strategy: "superposition".to_string(),
        mapping,
        cost,
        design_time: design_time.total,
        feasibility,
    })
}

/// Joint, variant-aware synthesis over the complete representation, with
/// [`SearchStrategy::Auto`] search.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn variant_aware(problem: &SynthesisProblem) -> Result<SynthesisResult> {
    variant_aware_with(problem, SearchStrategy::Auto)
}

/// Joint, variant-aware synthesis with an explicit search strategy.
///
/// [`SearchStrategy::BranchAndBound`] returns the bit-identical optimum of the
/// exhaustive search while visiting only the subtrees its bound cannot cut — the
/// right choice when the task count makes full enumeration painful.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn variant_aware_with(
    problem: &SynthesisProblem,
    strategy: SearchStrategy,
) -> Result<SynthesisResult> {
    let partition = optimize(problem, FeasibilityMode::PerApplication, strategy)?;
    let design_time = design_time::joint(problem);
    Ok(SynthesisResult {
        strategy: "variant-aware".to_string(),
        mapping: partition.mapping,
        cost: partition.cost,
        design_time: design_time.total,
        feasibility: partition.feasibility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;

    #[test]
    fn independent_reproduces_the_first_two_rows() {
        let problem = toy_problem();
        let results = independent(&problem).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].cost.total(), 34);
        assert_eq!(results[0].design_time, 67);
        assert_eq!(results[1].cost.total(), 38);
        assert_eq!(results[1].design_time, 73);
        assert_eq!(results[0].cost.software_tasks, vec!["PA", "PB"]);
        assert_eq!(results[1].cost.software_tasks, vec!["PA", "PB"]);
    }

    #[test]
    fn superposition_reuses_software_and_sums_hardware() {
        let problem = toy_problem();
        let result = superposition(&problem).unwrap();
        assert_eq!(result.cost.processor_cost, 15);
        assert_eq!(result.cost.hardware_cost, 19 + 23);
        assert_eq!(result.cost.total(), 57);
        assert_eq!(result.design_time, 140);
        assert!(result.feasibility.feasible());
        assert_eq!(result.cost.software_tasks, vec!["PA", "PB"]);
        assert_eq!(result.cost.hardware_tasks, vec!["cluster1", "cluster2"]);
    }

    #[test]
    fn variant_aware_beats_superposition_on_cost_and_time() {
        let problem = toy_problem();
        let joint = variant_aware(&problem).unwrap();
        let superposed = superposition(&problem).unwrap();
        assert_eq!(joint.cost.total(), 41);
        assert_eq!(joint.design_time, 118);
        assert!(joint.cost.total() < superposed.cost.total());
        assert!(joint.design_time < superposed.design_time);
        // The optimization moved the *common* process to hardware so that the mutually
        // exclusive clusters can share the processor — the paper's headline insight.
        assert_eq!(joint.cost.hardware_tasks, vec!["PA"]);
        assert!(joint.feasibility.feasible());
    }

    #[test]
    fn variant_aware_with_branch_and_bound_matches_the_exhaustive_flow() {
        let problem = toy_problem();
        let exhaustive = variant_aware_with(&problem, SearchStrategy::Exhaustive).unwrap();
        let bnb = variant_aware_with(&problem, SearchStrategy::BranchAndBound).unwrap();
        assert_eq!(bnb.mapping, exhaustive.mapping);
        assert_eq!(bnb.cost, exhaustive.cost);
        assert_eq!(bnb.design_time, exhaustive.design_time);
        assert_eq!(bnb.feasibility, exhaustive.feasibility);
    }

    #[test]
    fn crossover_routing_is_bit_identical_to_the_oracles_at_the_boundary() {
        // Restricted per-application problems have `common_tasks + interfaces`
        // tasks; 9, 10 and 11 straddle BNB_CROSSOVER_TASKS, so this covers
        // the Auto side, the first branch-and-bound size and one beyond.
        use crate::partition::optimize_serial_reference;
        use crate::problem::{ApplicationSpec, TaskSpec};
        for common_tasks in [5usize, 6, 7] {
            // A deterministic miniature of the workloads generator: common
            // tasks shared by every application, one variant task per
            // (interface, cluster), one application per combination.
            let mut problem =
                crate::problem::SynthesisProblem::new(format!("boundary{common_tasks}"), 14);
            let mut common = Vec::new();
            for index in 0..common_tasks {
                let name = format!("common{index}");
                problem.add_task(TaskSpec::new(
                    &name,
                    5 + (index as u64 * 7) % 14,
                    100,
                    15 + (index as u64 * 11) % 29,
                    4 + (index as u64 * 3) % 8,
                ));
                common.push(name);
            }
            for interface in 0..4usize {
                for cluster in 0..2usize {
                    let salt = (interface * 2 + cluster) as u64;
                    problem.add_task(TaskSpec::new(
                        format!("if{interface}/v{cluster}"),
                        30 + (salt * 13) % 40,
                        100,
                        15 + (salt * 5) % 20,
                        20 + (salt * 9) % 30,
                    ));
                }
            }
            for combination in 0..16usize {
                let mut tasks = common.clone();
                for interface in 0..4usize {
                    let cluster = (combination >> interface) & 1;
                    tasks.push(format!("if{interface}/v{cluster}"));
                }
                problem
                    .add_application(ApplicationSpec::new(
                        format!("application{combination}"),
                        tasks,
                    ))
                    .unwrap();
            }
            let results = independent(&problem).unwrap();
            assert_eq!(results.len(), 16);
            let mut merged = Mapping::new();
            for (application, result) in problem.applications().iter().zip(&results) {
                let restricted = problem.restrict_to(&application.name).unwrap();
                assert_eq!(restricted.task_count(), common_tasks + 4);
                let exhaustive = optimize(
                    &restricted,
                    FeasibilityMode::PerApplication,
                    SearchStrategy::Exhaustive,
                )
                .unwrap();
                let serial =
                    optimize_serial_reference(&restricted, FeasibilityMode::PerApplication)
                        .unwrap();
                assert_eq!(result.mapping, exhaustive.mapping, "{}", application.name);
                assert_eq!(result.cost, exhaustive.cost, "{}", application.name);
                assert_eq!(exhaustive.mapping, serial.mapping, "{}", application.name);
                assert_eq!(exhaustive.cost, serial.cost, "{}", application.name);
                merged.merge_prefer_hardware(&result.mapping);
            }
            // Superposition rides on the same routed flow: its merged mapping
            // must be exactly the prefer-hardware merge of the oracles.
            let superposed = superposition(&problem).unwrap();
            assert_eq!(superposed.mapping, merged);
        }
    }

    #[test]
    fn every_strategy_result_is_feasible() {
        let problem = toy_problem();
        for result in independent(&problem).unwrap() {
            assert!(result.feasibility.feasible());
        }
        assert!(superposition(&problem).unwrap().feasibility.feasible());
        assert!(variant_aware(&problem).unwrap().feasibility.feasible());
    }
}
