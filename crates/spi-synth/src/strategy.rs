//! The three synthesis flows compared in Table 1 of the paper.
//!
//! * [`independent`] — each application (variant) is synthesized on its own, yielding
//!   one architecture per application (Table 1, rows "Application 1" and
//!   "Application 2").
//! * [`superposition`] — the independent architectures are superposed into one flexible
//!   target architecture: software is reused, hardware adds up (row "Superposition").
//! * [`variant_aware`] — the variant-aware representation enables one joint optimization
//!   over all applications, exploiting the mutual exclusion of variants
//!   (row "With variants").

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::cost::{evaluate, CostBreakdown};
use crate::design_time;
use crate::partition::{optimize, FeasibilityMode, SearchStrategy};
use crate::problem::{Mapping, SynthesisProblem};
use crate::schedule::{check, FeasibilityReport};
use crate::Result;

/// Outcome of one synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesisResult {
    /// Human-readable name of the flow that produced the result.
    pub strategy: String,
    /// The chosen mapping over the tasks in scope.
    pub mapping: Mapping,
    /// Cost of the resulting architecture.
    pub cost: CostBreakdown,
    /// Design time according to the decision-counting model.
    pub design_time: u64,
    /// Schedulability of the result.
    pub feasibility: FeasibilityReport,
}

impl fmt::Display for SynthesisResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (design time {})",
            self.strategy, self.cost, self.design_time
        )
    }
}

/// Synthesizes every application independently.
///
/// Returns one result per application, in application order. This is the eager
/// collection of [`independent_iter`].
///
/// # Errors
///
/// Propagates optimizer and design-time errors.
pub fn independent(problem: &SynthesisProblem) -> Result<Vec<SynthesisResult>> {
    independent_iter(problem)?.collect()
}

/// Lazily synthesizes every application, yielding one result at a time.
///
/// On a problem bridged from a large variant space (one application per
/// combination) this streams results without holding all of them — the shape
/// consumed by sharded exploration, where a worker drains only its slice.
///
/// # Errors
///
/// Problem validation errors are returned immediately; per-application optimizer
/// and design-time errors are yielded in place of that application's result.
pub fn independent_iter(
    problem: &SynthesisProblem,
) -> Result<impl Iterator<Item = Result<SynthesisResult>> + '_> {
    problem.validate()?;
    Ok(problem.applications().iter().map(move |application| {
        let restricted = problem.restrict_to(&application.name)?;
        let partition = optimize(
            &restricted,
            FeasibilityMode::PerApplication,
            SearchStrategy::Auto,
        )?;
        let design_time = design_time::per_application(problem, &application.name)?;
        Ok(SynthesisResult {
            strategy: format!("independent({})", application.name),
            mapping: partition.mapping,
            cost: partition.cost,
            design_time: design_time.total,
            feasibility: partition.feasibility,
        })
    }))
}

/// Superposes the independently synthesized architectures into one flexible target
/// architecture.
///
/// Software parts common to several applications are reused directly (the processor is
/// paid for once); hardware parts differ per application and therefore add up. On a
/// mapping conflict (a task in software for one application and hardware for another)
/// the hardware implementation wins.
///
/// # Errors
///
/// Propagates errors from [`independent`] and the cost evaluation.
pub fn superposition(problem: &SynthesisProblem) -> Result<SynthesisResult> {
    let per_application = independent(problem)?;
    let mut mapping = Mapping::new();
    for result in &per_application {
        mapping.merge_prefer_hardware(&result.mapping);
    }
    let cost = evaluate(problem, &mapping, None)?;
    let feasibility = check(problem, &mapping)?;
    let design_time = design_time::independent(problem)?;
    Ok(SynthesisResult {
        strategy: "superposition".to_string(),
        mapping,
        cost,
        design_time: design_time.total,
        feasibility,
    })
}

/// Joint, variant-aware synthesis over the complete representation, with
/// [`SearchStrategy::Auto`] search.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn variant_aware(problem: &SynthesisProblem) -> Result<SynthesisResult> {
    variant_aware_with(problem, SearchStrategy::Auto)
}

/// Joint, variant-aware synthesis with an explicit search strategy.
///
/// [`SearchStrategy::BranchAndBound`] returns the bit-identical optimum of the
/// exhaustive search while visiting only the subtrees its bound cannot cut — the
/// right choice when the task count makes full enumeration painful.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn variant_aware_with(
    problem: &SynthesisProblem,
    strategy: SearchStrategy,
) -> Result<SynthesisResult> {
    let partition = optimize(problem, FeasibilityMode::PerApplication, strategy)?;
    let design_time = design_time::joint(problem);
    Ok(SynthesisResult {
        strategy: "variant-aware".to_string(),
        mapping: partition.mapping,
        cost: partition.cost,
        design_time: design_time.total,
        feasibility: partition.feasibility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;

    #[test]
    fn independent_reproduces_the_first_two_rows() {
        let problem = toy_problem();
        let results = independent(&problem).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].cost.total(), 34);
        assert_eq!(results[0].design_time, 67);
        assert_eq!(results[1].cost.total(), 38);
        assert_eq!(results[1].design_time, 73);
        assert_eq!(results[0].cost.software_tasks, vec!["PA", "PB"]);
        assert_eq!(results[1].cost.software_tasks, vec!["PA", "PB"]);
    }

    #[test]
    fn superposition_reuses_software_and_sums_hardware() {
        let problem = toy_problem();
        let result = superposition(&problem).unwrap();
        assert_eq!(result.cost.processor_cost, 15);
        assert_eq!(result.cost.hardware_cost, 19 + 23);
        assert_eq!(result.cost.total(), 57);
        assert_eq!(result.design_time, 140);
        assert!(result.feasibility.feasible());
        assert_eq!(result.cost.software_tasks, vec!["PA", "PB"]);
        assert_eq!(result.cost.hardware_tasks, vec!["cluster1", "cluster2"]);
    }

    #[test]
    fn variant_aware_beats_superposition_on_cost_and_time() {
        let problem = toy_problem();
        let joint = variant_aware(&problem).unwrap();
        let superposed = superposition(&problem).unwrap();
        assert_eq!(joint.cost.total(), 41);
        assert_eq!(joint.design_time, 118);
        assert!(joint.cost.total() < superposed.cost.total());
        assert!(joint.design_time < superposed.design_time);
        // The optimization moved the *common* process to hardware so that the mutually
        // exclusive clusters can share the processor — the paper's headline insight.
        assert_eq!(joint.cost.hardware_tasks, vec!["PA"]);
        assert!(joint.feasibility.feasible());
    }

    #[test]
    fn variant_aware_with_branch_and_bound_matches_the_exhaustive_flow() {
        let problem = toy_problem();
        let exhaustive = variant_aware_with(&problem, SearchStrategy::Exhaustive).unwrap();
        let bnb = variant_aware_with(&problem, SearchStrategy::BranchAndBound).unwrap();
        assert_eq!(bnb.mapping, exhaustive.mapping);
        assert_eq!(bnb.cost, exhaustive.cost);
        assert_eq!(bnb.design_time, exhaustive.design_time);
        assert_eq!(bnb.feasibility, exhaustive.feasibility);
    }

    #[test]
    fn every_strategy_result_is_feasible() {
        let problem = toy_problem();
        for result in independent(&problem).unwrap() {
            assert!(result.feasibility.feasible());
        }
        assert!(superposition(&problem).unwrap().feasibility.feasible());
        assert!(variant_aware(&problem).unwrap().feasibility.feasible());
    }
}
