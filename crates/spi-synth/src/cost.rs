//! The cost model.
//!
//! The paper's Table 1 uses two cost components: the cost of the embedded processor
//! (incurred once as soon as any task runs in software — mutually exclusive variants
//! share it) and the cost of the dedicated hardware units (one ASIC per task mapped to
//! hardware; distinct tasks never share an ASIC).
//!
//! [`evaluate`] is the from-scratch reference implementation. The searches keep the
//! same quantities current incrementally via
//! [`crate::compiled::IncrementalEvaluator`], whose breakdowns are differentially
//! tested to be bit-identical to [`evaluate`]'s.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

use crate::error::SynthError;
use crate::problem::{Implementation, Mapping, SynthesisProblem};
use crate::Result;

/// Cost of one implementation decision, broken down by component.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Tasks implemented in software, in name order.
    pub software_tasks: Vec<String>,
    /// Tasks implemented in hardware, in name order.
    pub hardware_tasks: Vec<String>,
    /// Processor cost (zero if nothing runs in software).
    pub processor_cost: u64,
    /// Total cost of the dedicated hardware units.
    pub hardware_cost: u64,
}

impl CostBreakdown {
    /// Total system cost (processor + hardware).
    pub fn total(&self) -> u64 {
        self.processor_cost + self.hardware_cost
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SW {{{}}} = {}, HW {{{}}} = {}, total = {}",
            self.software_tasks.join(", "),
            self.processor_cost,
            self.hardware_tasks.join(", "),
            self.hardware_cost,
            self.total()
        )
    }
}

/// Evaluates the cost of a mapping over the tasks named in `scope` (or every task of
/// the problem when `scope` is `None`).
///
/// # Errors
///
/// Returns [`SynthError::UnknownTask`] if a scoped task does not exist and
/// [`SynthError::Validation`] if a scoped task has no mapping decision.
pub fn evaluate(
    problem: &SynthesisProblem,
    mapping: &Mapping,
    scope: Option<&BTreeSet<String>>,
) -> Result<CostBreakdown> {
    let mut breakdown = CostBreakdown::default();
    let names: Vec<String> = match scope {
        Some(scope) => scope.iter().cloned().collect(),
        None => problem.tasks().map(|t| t.name.clone()).collect(),
    };
    for name in names {
        let task = problem
            .task(&name)
            .ok_or_else(|| SynthError::UnknownTask(name.clone()))?;
        match mapping.implementation(&name) {
            Some(Implementation::Software) => breakdown.software_tasks.push(task.name.clone()),
            Some(Implementation::Hardware) => {
                breakdown.hardware_tasks.push(task.name.clone());
                breakdown.hardware_cost += task.hw_area;
            }
            None => {
                return Err(SynthError::Validation(format!(
                    "task `{name}` has no implementation decision"
                )))
            }
        }
    }
    if !breakdown.software_tasks.is_empty() {
        breakdown.processor_cost = problem.processor_cost;
    }
    Ok(breakdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;
    use crate::problem::{Implementation, Mapping};

    fn mapping_all_sw(problem: &SynthesisProblem) -> Mapping {
        let mut mapping = Mapping::new();
        for task in problem.tasks() {
            mapping.assign(task.name.clone(), Implementation::Software);
        }
        mapping
    }

    #[test]
    fn all_software_costs_one_processor() {
        let problem = toy_problem();
        let cost = evaluate(&problem, &mapping_all_sw(&problem), None).unwrap();
        assert_eq!(cost.processor_cost, 15);
        assert_eq!(cost.hardware_cost, 0);
        assert_eq!(cost.total(), 15);
        assert_eq!(cost.software_tasks.len(), 4);
    }

    #[test]
    fn hardware_tasks_add_their_area() {
        let problem = toy_problem();
        let mapping = mapping_all_sw(&problem)
            .with("cluster1", Implementation::Hardware)
            .with("cluster2", Implementation::Hardware);
        let cost = evaluate(&problem, &mapping, None).unwrap();
        assert_eq!(cost.hardware_cost, 19 + 23);
        assert_eq!(cost.total(), 15 + 42);
    }

    #[test]
    fn all_hardware_needs_no_processor() {
        let problem = toy_problem();
        let mut mapping = Mapping::new();
        for task in problem.tasks() {
            mapping.assign(task.name.clone(), Implementation::Hardware);
        }
        let cost = evaluate(&problem, &mapping, None).unwrap();
        assert_eq!(cost.processor_cost, 0);
        assert_eq!(cost.total(), 26 + 30 + 19 + 23);
    }

    #[test]
    fn scope_restricts_the_evaluation() {
        let problem = toy_problem();
        let mapping = mapping_all_sw(&problem).with("cluster1", Implementation::Hardware);
        let scope: BTreeSet<String> = ["PA", "PB", "cluster1"].map(String::from).into();
        let cost = evaluate(&problem, &mapping, Some(&scope)).unwrap();
        assert_eq!(cost.total(), 15 + 19);
        assert_eq!(cost.software_tasks, vec!["PA", "PB"]);
    }

    #[test]
    fn missing_decision_is_an_error() {
        let problem = toy_problem();
        let mapping = Mapping::new().with("PA", Implementation::Software);
        assert!(matches!(
            evaluate(&problem, &mapping, None),
            Err(SynthError::Validation(_))
        ));
    }

    #[test]
    fn unknown_scoped_task_is_an_error() {
        let problem = toy_problem();
        let mapping = mapping_all_sw(&problem);
        let scope: BTreeSet<String> = ["ghost".to_string()].into();
        assert!(matches!(
            evaluate(&problem, &mapping, Some(&scope)),
            Err(SynthError::UnknownTask(_))
        ));
    }
}
