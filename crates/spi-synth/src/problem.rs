//! The hardware/software synthesis problem.
//!
//! The synthesis scenario of Section 5 of the paper is a classic HW/SW partitioning
//! problem: a set of **task units** (the common processes of a system and its function
//! variants/clusters) must each be mapped to software (sharing an embedded processor) or
//! to a dedicated hardware unit (ASIC), such that the timing behaviour of every
//! **application** (variant combination) stays correct, while cost and design time are
//! minimised.
//!
//! [`SynthesisProblem`] captures the decision space; the strategies in
//! [`crate::strategy`] and the baselines in [`crate::baseline`] solve it in the four
//! styles compared by Table 1 of the paper.
//!
//! The string-keyed types here are the *construction and inspection* surface. The
//! searches in [`crate::partition`] never run on them directly: they lower a problem
//! once into the dense-index [`crate::compiled::CompiledProblem`] and materialize
//! [`Mapping`]s only for the final result.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::SynthError;
use crate::Result;

/// Where a task unit is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Implementation {
    /// On the shared embedded processor.
    Software,
    /// On a dedicated hardware unit (ASIC).
    Hardware,
}

impl fmt::Display for Implementation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Implementation::Software => write!(f, "SW"),
            Implementation::Hardware => write!(f, "HW"),
        }
    }
}

/// One synthesizable unit: a common process or one function variant (cluster).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique task name (e.g. `"PA"` or `"interface1/cluster1"`).
    pub name: String,
    /// Execution time per activation when implemented in software.
    pub sw_time: u64,
    /// Activation period (used to compute processor utilization).
    pub period: u64,
    /// Cost of the dedicated hardware unit implementing this task.
    pub hw_area: u64,
    /// Relative effort of synthesizing this task once (drives the design-time model).
    pub synthesis_effort: u64,
}

impl TaskSpec {
    /// Creates a task with the given name and parameters.
    pub fn new(
        name: impl Into<String>,
        sw_time: u64,
        period: u64,
        hw_area: u64,
        synthesis_effort: u64,
    ) -> Self {
        TaskSpec {
            name: name.into(),
            sw_time,
            period: period.max(1),
            hw_area,
            synthesis_effort,
        }
    }

    /// Processor utilization of the task in permille (`1000 * sw_time / period`).
    pub fn utilization_permille(&self) -> u64 {
        self.sw_time.saturating_mul(1000) / self.period
    }
}

/// One application: a set of task units that execute together (one variant combination).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplicationSpec {
    /// Application name (e.g. `"application1"`).
    pub name: String,
    /// Names of the tasks the application consists of.
    pub tasks: Vec<String>,
}

impl ApplicationSpec {
    /// Creates an application from task names.
    pub fn new(name: impl Into<String>, tasks: impl IntoIterator<Item = String>) -> Self {
        ApplicationSpec {
            name: name.into(),
            tasks: tasks.into_iter().collect(),
        }
    }
}

/// A complete HW/SW partitioning problem over a set of applications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesisProblem {
    name: String,
    tasks: BTreeMap<String, TaskSpec>,
    applications: Vec<ApplicationSpec>,
    /// Cost of instantiating the shared processor.
    pub processor_cost: u64,
    /// Schedulable utilization of the processor in permille (1000 = 100 %).
    pub processor_capacity_permille: u64,
}

impl SynthesisProblem {
    /// Creates an empty problem with the given processor parameters.
    pub fn new(name: impl Into<String>, processor_cost: u64) -> Self {
        SynthesisProblem {
            name: name.into(),
            tasks: BTreeMap::new(),
            applications: Vec::new(),
            processor_cost,
            processor_capacity_permille: 1000,
        }
    }

    /// Problem name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds (or replaces) a task.
    pub fn add_task(&mut self, task: TaskSpec) {
        self.tasks.insert(task.name.clone(), task);
    }

    /// Adds a task and returns `self` for chaining.
    pub fn with_task(mut self, task: TaskSpec) -> Self {
        self.add_task(task);
        self
    }

    /// Adds an application.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::UnknownTask`] if the application references a task that has
    /// not been added yet.
    pub fn add_application(&mut self, application: ApplicationSpec) -> Result<()> {
        for task in &application.tasks {
            if !self.tasks.contains_key(task) {
                return Err(SynthError::UnknownTask(task.clone()));
            }
        }
        self.applications.push(application);
        Ok(())
    }

    /// Sets the processor capacity in permille and returns `self` for chaining.
    pub fn with_capacity_permille(mut self, capacity: u64) -> Self {
        self.processor_capacity_permille = capacity;
        self
    }

    /// All tasks in name order.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskSpec> {
        self.tasks.values()
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Looks up a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskSpec> {
        self.tasks.get(name)
    }

    /// All applications in insertion order.
    pub fn applications(&self) -> &[ApplicationSpec] {
        &self.applications
    }

    /// Looks up an application by name.
    pub fn application(&self, name: &str) -> Option<&ApplicationSpec> {
        self.applications.iter().find(|a| a.name == name)
    }

    /// Task names that occur in **every** application (the variant-independent, common
    /// part of the system).
    pub fn common_tasks(&self) -> Vec<&str> {
        if self.applications.is_empty() {
            return Vec::new();
        }
        let mut common: BTreeSet<&str> = self.applications[0]
            .tasks
            .iter()
            .map(String::as_str)
            .collect();
        for application in &self.applications[1..] {
            let present: BTreeSet<&str> = application.tasks.iter().map(String::as_str).collect();
            common = common.intersection(&present).copied().collect();
        }
        common.into_iter().collect()
    }

    /// Task names that occur in at least one but not every application (the
    /// variant-dependent parts).
    pub fn variant_tasks(&self) -> Vec<&str> {
        let common: BTreeSet<&str> = self.common_tasks().into_iter().collect();
        let mut out: Vec<&str> = self
            .applications
            .iter()
            .flat_map(|a| a.tasks.iter().map(String::as_str))
            .filter(|t| !common.contains(t))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Restricts the problem to a single application (used by per-application
    /// synthesis).
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::UnknownApplication`] if the application does not exist.
    pub fn restrict_to(&self, application: &str) -> Result<SynthesisProblem> {
        let app = self
            .application(application)
            .ok_or_else(|| SynthError::UnknownApplication(application.to_string()))?
            .clone();
        let tasks = app
            .tasks
            .iter()
            .filter_map(|t| self.tasks.get(t).cloned())
            .map(|t| (t.name.clone(), t))
            .collect();
        Ok(SynthesisProblem {
            name: format!("{}::{}", self.name, application),
            tasks,
            applications: vec![app],
            processor_cost: self.processor_cost,
            processor_capacity_permille: self.processor_capacity_permille,
        })
    }

    /// Basic sanity checks: at least one application, every application non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::NoApplications`] or [`SynthError::Validation`].
    pub fn validate(&self) -> Result<()> {
        if self.applications.is_empty() {
            return Err(SynthError::NoApplications);
        }
        for application in &self.applications {
            if application.tasks.is_empty() {
                return Err(SynthError::Validation(format!(
                    "application `{}` has no tasks",
                    application.name
                )));
            }
        }
        Ok(())
    }
}

/// A complete mapping decision: implementation per task.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    decisions: BTreeMap<String, Implementation>,
}

impl Mapping {
    /// Creates an empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns an implementation to a task.
    pub fn assign(&mut self, task: impl Into<String>, implementation: Implementation) {
        self.decisions.insert(task.into(), implementation);
    }

    /// Assigns an implementation and returns `self` for chaining.
    pub fn with(mut self, task: impl Into<String>, implementation: Implementation) -> Self {
        self.assign(task, implementation);
        self
    }

    /// Implementation chosen for a task, if decided.
    pub fn implementation(&self, task: &str) -> Option<Implementation> {
        self.decisions.get(task).copied()
    }

    /// All decided task names mapped to software, in name order.
    pub fn software_tasks(&self) -> Vec<&str> {
        self.decisions
            .iter()
            .filter(|(_, i)| **i == Implementation::Software)
            .map(|(t, _)| t.as_str())
            .collect()
    }

    /// All decided task names mapped to hardware, in name order.
    pub fn hardware_tasks(&self) -> Vec<&str> {
        self.decisions
            .iter()
            .filter(|(_, i)| **i == Implementation::Hardware)
            .map(|(t, _)| t.as_str())
            .collect()
    }

    /// Iterates over all decisions.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Implementation)> {
        self.decisions.iter().map(|(t, i)| (t.as_str(), *i))
    }

    /// Number of decided tasks.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Returns `true` if no decision has been made.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Merges another mapping into this one. On conflict hardware wins (a task that any
    /// sub-design put into hardware stays in hardware when superposing architectures).
    pub fn merge_prefer_hardware(&mut self, other: &Mapping) {
        for (task, implementation) in &other.decisions {
            match self.decisions.get(task) {
                Some(Implementation::Hardware) => {}
                Some(Implementation::Software) | None => {
                    let chosen = if *implementation == Implementation::Hardware
                        || self.decisions.get(task) == Some(&Implementation::Hardware)
                    {
                        Implementation::Hardware
                    } else {
                        *implementation
                    };
                    self.decisions.insert(task.clone(), chosen);
                }
            }
        }
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SW: {{{}}} HW: {{{}}}",
            self.software_tasks().join(", "),
            self.hardware_tasks().join(", ")
        )
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The Table 1 calibration: processor cost 15, ASIC areas PA=26 / PB=30 /
    /// cluster1=19 / cluster2=23, utilizations 25 % / 15 % / 70 % / 80 %, synthesis
    /// efforts 10 / 12 / 45 / 51. With these parameters per-application synthesis
    /// yields totals 34 and 38, superposition 57 and variant-aware synthesis 41 —
    /// exactly the cost structure of the paper's Table 1.
    pub(crate) fn toy_problem() -> SynthesisProblem {
        let mut problem = SynthesisProblem::new("toy", 15)
            .with_task(TaskSpec::new("PA", 25, 100, 26, 10))
            .with_task(TaskSpec::new("PB", 15, 100, 30, 12))
            .with_task(TaskSpec::new("cluster1", 70, 100, 19, 45))
            .with_task(TaskSpec::new("cluster2", 80, 100, 23, 51));
        problem
            .add_application(ApplicationSpec::new(
                "application1",
                ["PA", "PB", "cluster1"].map(String::from),
            ))
            .unwrap();
        problem
            .add_application(ApplicationSpec::new(
                "application2",
                ["PA", "PB", "cluster2"].map(String::from),
            ))
            .unwrap();
        problem
    }

    #[test]
    fn utilization_is_time_over_period() {
        let task = TaskSpec::new("t", 30, 100, 5, 1);
        assert_eq!(task.utilization_permille(), 300);
        let zero_period = TaskSpec::new("z", 10, 0, 5, 1);
        assert_eq!(zero_period.period, 1, "period is clamped to at least one");
    }

    #[test]
    fn common_and_variant_tasks_are_identified() {
        let problem = toy_problem();
        assert_eq!(problem.common_tasks(), vec!["PA", "PB"]);
        assert_eq!(problem.variant_tasks(), vec!["cluster1", "cluster2"]);
    }

    #[test]
    fn application_must_reference_known_tasks() {
        let mut problem = SynthesisProblem::new("p", 10);
        let err = problem
            .add_application(ApplicationSpec::new("a", ["ghost".to_string()]))
            .unwrap_err();
        assert!(matches!(err, SynthError::UnknownTask(_)));
    }

    #[test]
    fn restrict_to_keeps_only_that_applications_tasks() {
        let problem = toy_problem();
        let app1 = problem.restrict_to("application1").unwrap();
        assert_eq!(app1.task_count(), 3);
        assert!(app1.task("cluster2").is_none());
        assert_eq!(app1.applications().len(), 1);
        assert!(matches!(
            problem.restrict_to("ghost"),
            Err(SynthError::UnknownApplication(_))
        ));
    }

    #[test]
    fn validate_catches_empty_problems() {
        let problem = SynthesisProblem::new("empty", 1);
        assert!(matches!(
            problem.validate(),
            Err(SynthError::NoApplications)
        ));
        assert!(toy_problem().validate().is_ok());
    }

    #[test]
    fn mapping_accessors_and_merge() {
        let mut a = Mapping::new()
            .with("PA", Implementation::Software)
            .with("cluster1", Implementation::Hardware);
        let b = Mapping::new()
            .with("PA", Implementation::Hardware)
            .with("cluster2", Implementation::Hardware);
        a.merge_prefer_hardware(&b);
        assert_eq!(a.implementation("PA"), Some(Implementation::Hardware));
        assert_eq!(a.hardware_tasks(), vec!["PA", "cluster1", "cluster2"]);
        assert!(a.software_tasks().is_empty());
        assert_eq!(a.len(), 3);
        assert!(a.to_string().contains("HW"));
    }
}
