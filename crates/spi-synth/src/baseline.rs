//! Baseline synthesis approaches from prior work, reimplemented for comparison.
//!
//! The paper positions its representation against two earlier ways of handling multiple
//! applications/variants:
//!
//! * **Serialization** (Kim, Karri, Potkonjak — DAC'97, reference \[6\]): all variants are
//!   enumerated and serialized into one large task, so the synthesis cannot exploit the
//!   mutual exclusion of variants — every variant is assumed to load the processor at
//!   the same time. Implemented by [`serialization`].
//! * **Incremental synthesis** (Kavalade, Subrahmanyam — ICCAD'97, reference \[5\]): the
//!   applications are synthesized one after another; decisions taken for earlier
//!   applications are frozen and reused. The result quality depends on the order.
//!   Implemented by [`incremental`].

use crate::cost::evaluate;
use crate::design_time;
use crate::error::SynthError;
use crate::partition::{optimize, FeasibilityMode, SearchStrategy};
use crate::problem::{Implementation, Mapping, SynthesisProblem};
use crate::schedule::check;
use crate::strategy::SynthesisResult;
use crate::Result;

/// Serialization baseline: one joint optimization that must treat all variants as
/// concurrent (no mutual exclusion between variants).
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn serialization(problem: &SynthesisProblem) -> Result<SynthesisResult> {
    let partition = optimize(problem, FeasibilityMode::Serialized, SearchStrategy::Auto)?;
    // The serialized task is synthesized once, so the decision count matches the joint
    // flow — the penalty shows up in cost, not in design time.
    let design_time = design_time::joint(problem);
    Ok(SynthesisResult {
        strategy: "serialization [6]".to_string(),
        mapping: partition.mapping,
        cost: partition.cost,
        design_time: design_time.total,
        feasibility: partition.feasibility,
    })
}

/// Incremental baseline: synthesize the applications in `order`, freezing the decisions
/// of earlier applications.
///
/// Pass the applications in the order the designer would tackle them; the result quality
/// (cost) depends on that order, which is exactly the drawback reported by the authors
/// of the original approach.
///
/// # Errors
///
/// Returns [`SynthError::UnknownApplication`] for unknown names, [`SynthError::Infeasible`]
/// if a later application cannot be made feasible without revisiting frozen decisions,
/// and propagates evaluation errors.
pub fn incremental(problem: &SynthesisProblem, order: &[&str]) -> Result<SynthesisResult> {
    problem.validate()?;
    if order.is_empty() {
        return Err(SynthError::Validation(
            "incremental synthesis needs at least one application in the order".to_string(),
        ));
    }
    let mut fixed = Mapping::new();
    for application in order {
        let restricted = problem.restrict_to(application)?;
        let undecided: Vec<String> = restricted
            .tasks()
            .filter(|t| fixed.implementation(&t.name).is_none())
            .map(|t| t.name.clone())
            .collect();

        // Exhaustively decide the not-yet-frozen tasks of this application.
        let mut best: Option<(u64, Mapping)> = None;
        let combinations = 1u64 << undecided.len();
        for mask in 0..combinations {
            let mut candidate = fixed.clone();
            for (index, name) in undecided.iter().enumerate() {
                let implementation = if mask & (1 << index) != 0 {
                    Implementation::Hardware
                } else {
                    Implementation::Software
                };
                candidate.assign(name.clone(), implementation);
            }
            let report = check(&restricted, &candidate)?;
            if !report.feasible() {
                continue;
            }
            let scope: std::collections::BTreeSet<String> =
                restricted.tasks().map(|t| t.name.clone()).collect();
            let cost = evaluate(problem, &candidate, Some(&scope))?.total();
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, candidate));
            }
        }
        let Some((_, winner)) = best else {
            return Err(SynthError::Infeasible(format!(
                "application `{application}` cannot be scheduled with the frozen decisions"
            )));
        };
        fixed = winner;
    }

    // Applications not named in the order keep the frozen decisions only; any remaining
    // undecided task defaults to hardware so that the architecture stays feasible.
    for task in problem.tasks() {
        if fixed.implementation(&task.name).is_none() {
            fixed.assign(task.name.clone(), Implementation::Hardware);
        }
    }

    let cost = evaluate(problem, &fixed, None)?;
    let feasibility = check(problem, &fixed)?;
    let design_time = design_time::incremental(problem, order)?;
    Ok(SynthesisResult {
        strategy: format!("incremental [5] ({})", order.join(" -> ")),
        mapping: fixed,
        cost,
        design_time: design_time.total,
        feasibility,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::tests::toy_problem;
    use crate::strategy::variant_aware;

    #[test]
    fn serialization_cannot_exploit_mutual_exclusion() {
        let problem = toy_problem();
        let serialized = serialization(&problem).unwrap();
        let joint = variant_aware(&problem).unwrap();
        // Both clusters end up in hardware because the serialized view believes they
        // compete for the processor simultaneously.
        assert_eq!(serialized.cost.total(), 57);
        assert!(serialized
            .cost
            .hardware_tasks
            .contains(&"cluster1".to_string()));
        assert!(serialized
            .cost
            .hardware_tasks
            .contains(&"cluster2".to_string()));
        assert!(serialized.cost.total() > joint.cost.total());
    }

    #[test]
    fn incremental_freezes_early_decisions() {
        let problem = toy_problem();
        let result = incremental(&problem, &["application1", "application2"]).unwrap();
        // Application 1 alone prefers cluster1 in hardware; application 2 then has to
        // add cluster2 in hardware as well because PA/PB stay frozen in software.
        assert_eq!(result.cost.total(), 57);
        assert!(result.feasibility.feasible());
        assert_eq!(result.design_time, 118);
        assert!(result.cost.total() > variant_aware(&problem).unwrap().cost.total());
    }

    #[test]
    fn incremental_order_is_recorded_and_validated() {
        let problem = toy_problem();
        let result = incremental(&problem, &["application2", "application1"]).unwrap();
        assert!(result.strategy.contains("application2 -> application1"));
        assert!(matches!(
            incremental(&problem, &[]),
            Err(SynthError::Validation(_))
        ));
        assert!(matches!(
            incremental(&problem, &["ghost"]),
            Err(SynthError::UnknownApplication(_))
        ));
    }

    #[test]
    fn partial_order_defaults_remaining_tasks_to_hardware() {
        let problem = toy_problem();
        let result = incremental(&problem, &["application1"]).unwrap();
        // cluster2 was never considered; it is conservatively placed in hardware.
        assert_eq!(
            result.mapping.implementation("cluster2"),
            Some(Implementation::Hardware)
        );
        assert!(result.feasibility.feasible());
    }
}
