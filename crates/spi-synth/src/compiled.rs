//! Dense-index compilation of a synthesis problem and incremental evaluation.
//!
//! The string-keyed [`SynthesisProblem`] is convenient to build and inspect, but its
//! `BTreeMap<String, _>` lookups are poison for a search that examines millions of
//! mappings. [`CompiledProblem`] lowers a problem once into dense arrays indexed by
//! [`TaskId`] — utilization and hardware-area vectors, per-application member lists,
//! a bitmask membership per application and a reverse `task → applications` adjacency —
//! so the partitioning searches in [`crate::partition`] never touch a `String` in
//! their inner loops.
//!
//! [`IncrementalEvaluator`] maintains the per-application load sums and the cost
//! components of one complete mapping and updates them in *O(applications containing
//! the task)* when a single task flips between software and hardware. Its
//! [`apply`](IncrementalEvaluator::apply)/[`undo`](IncrementalEvaluator::undo) pair is
//! what lets a branch-and-bound search walk the decision tree without ever re-summing
//! an application from scratch.
//!
//! Both layers are pure accelerations: their reports are bit-identical to
//! [`crate::schedule::check`]/[`crate::schedule::check_serialized`] and
//! [`crate::cost::evaluate`] on the materialized [`Mapping`] — a property the
//! differential tests in `tests/properties.rs` pin on seeded random walks.

use std::collections::HashMap;
use std::fmt;

use crate::cost::CostBreakdown;
use crate::error::SynthError;
use crate::partition::FeasibilityMode;
use crate::problem::{Implementation, Mapping, SynthesisProblem};
use crate::schedule::{ApplicationLoad, FeasibilityReport};
use crate::Result;

/// Dense index of a task inside a [`CompiledProblem`].
///
/// Ids are assigned in task-name order (the iteration order of
/// [`SynthesisProblem::tasks`]), so id `i` corresponds to bit `i` of a mapping mask in
/// the exhaustive and branch-and-bound searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A [`SynthesisProblem`] lowered to dense indices.
///
/// Tasks are numbered `0..task_count()` in name order; applications keep their
/// insertion order. All data needed by the searches — utilizations, hardware areas,
/// application membership (as index lists *and*, for up to 64 tasks, as bitmasks) and
/// the reverse `task → applications` adjacency — lives in flat `Vec`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProblem {
    names: Vec<String>,
    utilization: Vec<u64>,
    hw_area: Vec<u64>,
    app_names: Vec<String>,
    /// Member tasks of each application, in the application's task order. Duplicate
    /// entries are preserved: `schedule::check` counts a task listed twice twice.
    app_tasks: Vec<Vec<TaskId>>,
    /// For each task: the applications it occurs in, one entry per occurrence.
    apps_of_task: Vec<Vec<u32>>,
    /// Bitmask membership per application (bit `i` = task `i` is a member). Only
    /// meaningful when `mask_ready` is set.
    membership_mask: Vec<u64>,
    /// True when the bitmask fast path is valid: fewer than 64 tasks and no
    /// application lists the same task twice.
    mask_ready: bool,
    total_utilization: u64,
    processor_cost: u64,
    capacity_permille: u64,
}

impl CompiledProblem {
    /// Lowers a problem into dense indices.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::UnknownTask`] if an application references a task the
    /// problem does not contain.
    pub fn compile(problem: &SynthesisProblem) -> Result<CompiledProblem> {
        let mut names = Vec::with_capacity(problem.task_count());
        let mut utilization = Vec::with_capacity(problem.task_count());
        let mut hw_area = Vec::with_capacity(problem.task_count());
        let mut index: HashMap<&str, u32> = HashMap::with_capacity(problem.task_count());
        for task in problem.tasks() {
            index.insert(task.name.as_str(), names.len() as u32);
            names.push(task.name.clone());
            utilization.push(task.utilization_permille());
            hw_area.push(task.hw_area);
        }

        let n = names.len();
        let mut app_names = Vec::new();
        let mut app_tasks: Vec<Vec<TaskId>> = Vec::new();
        let mut apps_of_task: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut membership_mask = Vec::new();
        // `full_mask()` computes `(1 << n) - 1`, so the mask fast path needs strictly
        // fewer than 64 tasks (an `n == 64` full mask would overflow the shift).
        let mut mask_ready = n < 64;
        for (app_index, application) in problem.applications().iter().enumerate() {
            let mut members = Vec::with_capacity(application.tasks.len());
            let mut mask = 0u64;
            for name in &application.tasks {
                let id = *index
                    .get(name.as_str())
                    .ok_or_else(|| SynthError::UnknownTask(name.clone()))?;
                members.push(TaskId(id));
                apps_of_task[id as usize].push(app_index as u32);
                if n < 64 {
                    let bit = 1u64 << id;
                    if mask & bit != 0 {
                        // A duplicate member contributes its utilization twice; the
                        // bitmask cannot express that, so the mask path is disabled.
                        mask_ready = false;
                    }
                    mask |= bit;
                }
            }
            app_names.push(application.name.clone());
            app_tasks.push(members);
            membership_mask.push(mask);
        }

        Ok(CompiledProblem {
            total_utilization: utilization.iter().sum(),
            names,
            utilization,
            hw_area,
            app_names,
            app_tasks,
            apps_of_task,
            membership_mask,
            mask_ready,
            processor_cost: problem.processor_cost,
            capacity_permille: problem.processor_capacity_permille,
        })
    }

    /// Builds a compiled problem for a **single application spanning every
    /// task**, directly from task specs — no string-keyed
    /// [`SynthesisProblem`] in between.
    ///
    /// This is the shape every flattened (single-variant) graph produces, and
    /// it sits on the exploration service's per-variant hot path (see
    /// [`crate::bridge::compiled_from_flat_graph`]). Task ids are assigned in
    /// **name order**, exactly as [`compile`](Self::compile) would assign them
    /// after routing through a `SynthesisProblem`, so searches over either
    /// construction return bit-identical results; the application's member
    /// list keeps the given insertion order, as an `ApplicationSpec` would.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Validation`] if `tasks` is empty (an application
    /// must span at least one task) or if two tasks share a name.
    pub fn single_application(
        application: impl Into<String>,
        processor_cost: u64,
        capacity_permille: u64,
        tasks: Vec<crate::problem::TaskSpec>,
    ) -> Result<CompiledProblem> {
        let application = application.into();
        if tasks.is_empty() {
            return Err(SynthError::Validation(format!(
                "application `{application}` has no tasks"
            )));
        }
        // Id assignment is name order: sort a permutation, not the specs, so
        // the application member list can keep insertion order below.
        let mut order: Vec<u32> = (0..tasks.len() as u32).collect();
        order.sort_by(|&a, &b| tasks[a as usize].name.cmp(&tasks[b as usize].name));

        let n = tasks.len();
        let mut names = Vec::with_capacity(n);
        let mut utilization = Vec::with_capacity(n);
        let mut hw_area = Vec::with_capacity(n);
        // rank[insertion index] = dense TaskId.
        let mut rank = vec![TaskId(0); n];
        for (id, &at) in order.iter().enumerate() {
            let task = &tasks[at as usize];
            if names.last().is_some_and(|previous| *previous == task.name) {
                return Err(SynthError::Validation(format!(
                    "duplicate task name `{}`",
                    task.name
                )));
            }
            names.push(task.name.clone());
            utilization.push(task.utilization_permille());
            hw_area.push(task.hw_area);
            rank[at as usize] = TaskId(id as u32);
        }

        let members: Vec<TaskId> = rank.clone();
        let mut apps_of_task = vec![Vec::new(); n];
        let mut mask = 0u64;
        for &task in &members {
            apps_of_task[task.index()].push(0u32);
            if n < 64 {
                mask |= 1u64 << task.0;
            }
        }

        Ok(CompiledProblem {
            total_utilization: utilization.iter().sum(),
            names,
            utilization,
            hw_area,
            app_names: vec![application],
            app_tasks: vec![members],
            apps_of_task,
            membership_mask: vec![mask],
            mask_ready: n < 64,
            processor_cost,
            capacity_permille,
        })
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.names.len()
    }

    /// Number of applications.
    pub fn application_count(&self) -> usize {
        self.app_names.len()
    }

    /// Name of one application.
    pub fn application_name(&self, application: usize) -> &str {
        &self.app_names[application]
    }

    /// Task names in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Name of one task.
    pub fn name_of(&self, task: TaskId) -> &str {
        &self.names[task.index()]
    }

    /// Looks up the id of a task by name.
    pub fn task_id(&self, name: &str) -> Option<TaskId> {
        // Names are in sorted (BTreeMap) order, so a binary search suffices.
        self.names
            .binary_search_by(|candidate| candidate.as_str().cmp(name))
            .ok()
            .map(|index| TaskId(index as u32))
    }

    /// Processor utilizations in permille, indexed by task id.
    pub fn utilizations(&self) -> &[u64] {
        &self.utilization
    }

    /// Hardware (ASIC) areas, indexed by task id.
    pub fn hardware_areas(&self) -> &[u64] {
        &self.hw_area
    }

    /// Member tasks of one application, in the application's task order.
    pub fn application_tasks(&self, application: usize) -> &[TaskId] {
        &self.app_tasks[application]
    }

    /// Applications containing a task, one entry per occurrence.
    pub fn applications_of_task(&self, task: TaskId) -> &[u32] {
        &self.apps_of_task[task.index()]
    }

    /// Cost of the shared processor.
    pub fn processor_cost(&self) -> u64 {
        self.processor_cost
    }

    /// Schedulable processor capacity in permille.
    pub fn capacity_permille(&self) -> u64 {
        self.capacity_permille
    }

    /// Sum of all task utilizations (the all-software serialized load).
    pub fn total_utilization_permille(&self) -> u64 {
        self.total_utilization
    }

    fn full_mask(&self) -> u64 {
        // A hard assert: at 64+ tasks the shift would overflow (panic in debug,
        // silently produce an empty mask in release) and every mask-based query
        // would return garbage. The cost is one predictable branch per call.
        assert!(
            self.names.len() < 64,
            "mask queries need fewer than 64 tasks"
        );
        (1u64 << self.names.len()) - 1
    }

    /// Shared mapping builder: `is_hardware` answers "is task `i` in hardware?" for
    /// whichever representation the caller holds (mask bit or evaluator state).
    fn build_mapping(&self, is_hardware: impl Fn(usize) -> bool) -> Mapping {
        let mut mapping = Mapping::new();
        for (index, name) in self.names.iter().enumerate() {
            let implementation = if is_hardware(index) {
                Implementation::Hardware
            } else {
                Implementation::Software
            };
            mapping.assign(name.clone(), implementation);
        }
        mapping
    }

    /// Shared breakdown builder, bit-identical to [`crate::cost::evaluate`] for any
    /// complete assignment described by `is_hardware`.
    fn build_cost_breakdown(&self, is_hardware: impl Fn(usize) -> bool) -> CostBreakdown {
        let mut breakdown = CostBreakdown::default();
        for (index, name) in self.names.iter().enumerate() {
            if is_hardware(index) {
                breakdown.hardware_tasks.push(name.clone());
                breakdown.hardware_cost += self.hw_area[index];
            } else {
                breakdown.software_tasks.push(name.clone());
            }
        }
        if !breakdown.software_tasks.is_empty() {
            breakdown.processor_cost = self.processor_cost;
        }
        breakdown
    }

    /// Shared report builder, bit-identical to [`crate::schedule::check`] /
    /// [`crate::schedule::check_serialized`]: `load_of_application` supplies the
    /// per-application software loads, `serialized_load` the all-concurrent sum.
    fn build_feasibility_report(
        &self,
        mode: FeasibilityMode,
        load_of_application: impl Fn(usize) -> u64,
        serialized_load: u64,
    ) -> FeasibilityReport {
        let applications = match mode {
            FeasibilityMode::PerApplication => (0..self.app_names.len())
                .map(|app| {
                    let load = load_of_application(app);
                    ApplicationLoad {
                        application: self.app_names[app].clone(),
                        load_permille: load,
                        feasible: load <= self.capacity_permille,
                    }
                })
                .collect(),
            FeasibilityMode::Serialized => vec![ApplicationLoad {
                application: "serialized".to_string(),
                load_permille: serialized_load,
                feasible: serialized_load <= self.capacity_permille,
            }],
        };
        FeasibilityReport {
            applications,
            capacity_permille: self.capacity_permille,
        }
    }

    /// Materializes the mapping encoded by `mask` (bit `i` set = task `i` in
    /// hardware).
    ///
    /// # Panics
    ///
    /// Panics if the problem has 64 tasks or more.
    pub fn mapping_of_mask(&self, mask: u64) -> Mapping {
        assert!(
            self.names.len() < 64,
            "mask mappings need fewer than 64 tasks"
        );
        self.build_mapping(|index| mask & (1u64 << index) != 0)
    }

    /// Encodes a complete [`Mapping`] as a mask.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Validation`] if a task has no decision.
    pub fn mask_of_mapping(&self, mapping: &Mapping) -> Result<u64> {
        assert!(
            self.names.len() < 64,
            "mask mappings need fewer than 64 tasks"
        );
        let mut mask = 0u64;
        for (index, name) in self.names.iter().enumerate() {
            match mapping.implementation(name) {
                Some(Implementation::Hardware) => mask |= 1u64 << index,
                Some(Implementation::Software) => {}
                None => {
                    return Err(SynthError::Validation(format!(
                        "task `{name}` has no implementation decision"
                    )))
                }
            }
        }
        Ok(mask)
    }

    /// Software load of one application under `mask`, in permille.
    ///
    /// # Panics
    ///
    /// Like every `*_of_mask` query, panics for problems with 64 tasks or more —
    /// a `u64` mask cannot address them.
    pub fn application_load_of_mask(&self, application: usize, mask: u64) -> u64 {
        assert!(
            self.names.len() < 64,
            "mask queries need fewer than 64 tasks"
        );
        if self.mask_ready {
            let mut software = self.membership_mask[application] & !mask;
            let mut load = 0u64;
            while software != 0 {
                load += self.utilization[software.trailing_zeros() as usize];
                software &= software - 1;
            }
            load
        } else {
            self.app_tasks[application]
                .iter()
                .filter(|task| mask & (1u64 << task.index()) == 0)
                .map(|task| self.utilization[task.index()])
                .sum()
        }
    }

    /// Serialized (all variants concurrent) software load under `mask`, in permille.
    pub fn serialized_load_of_mask(&self, mask: u64) -> u64 {
        let mut hardware = mask & self.full_mask();
        let mut load = self.total_utilization;
        while hardware != 0 {
            load -= self.utilization[hardware.trailing_zeros() as usize];
            hardware &= hardware - 1;
        }
        load
    }

    /// Whether the mapping encoded by `mask` is schedulable under `mode`.
    pub fn feasible_mask(&self, mask: u64, mode: FeasibilityMode) -> bool {
        match mode {
            FeasibilityMode::PerApplication => (0..self.app_tasks.len())
                .all(|app| self.application_load_of_mask(app, mask) <= self.capacity_permille),
            FeasibilityMode::Serialized => {
                self.serialized_load_of_mask(mask) <= self.capacity_permille
            }
        }
    }

    /// Total hardware area of the tasks `mask` puts into hardware.
    pub fn hardware_area_of_mask(&self, mask: u64) -> u64 {
        let mut bits = mask & self.full_mask();
        let mut area = 0u64;
        while bits != 0 {
            area += self.hw_area[bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        area
    }

    /// Total cost (hardware areas + processor if any task stays in software).
    pub fn total_cost_of_mask(&self, mask: u64) -> u64 {
        let area = self.hardware_area_of_mask(mask);
        if mask & self.full_mask() == self.full_mask() {
            area
        } else {
            area + self.processor_cost
        }
    }

    /// Cost breakdown of the mapping encoded by `mask`, bit-identical to
    /// [`crate::cost::evaluate`] on the materialized mapping.
    pub fn cost_breakdown_of_mask(&self, mask: u64) -> CostBreakdown {
        self.build_cost_breakdown(|index| mask & (1u64 << index) != 0)
    }

    /// Feasibility report of the mapping encoded by `mask`, bit-identical to
    /// [`crate::schedule::check`] / [`crate::schedule::check_serialized`].
    pub fn feasibility_report_of_mask(
        &self,
        mask: u64,
        mode: FeasibilityMode,
    ) -> FeasibilityReport {
        let serialized = match mode {
            FeasibilityMode::Serialized => self.serialized_load_of_mask(mask),
            FeasibilityMode::PerApplication => 0,
        };
        self.build_feasibility_report(
            mode,
            |app| self.application_load_of_mask(app, mask),
            serialized,
        )
    }
}

/// Incrementally maintained schedulability and cost state of one complete mapping.
///
/// The evaluator always represents a *total* assignment (every task is software or
/// hardware); a branch-and-bound search models "undecided" by parking undecided tasks
/// in hardware, where they contribute no processor load. Flipping one task updates
/// the per-application loads in O(applications containing the task) and every other
/// aggregate in O(1).
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'p> {
    problem: &'p CompiledProblem,
    implementations: Vec<Implementation>,
    app_loads: Vec<u64>,
    overloaded_applications: usize,
    serialized_load: u64,
    hardware_area: u64,
    software_count: usize,
    trail: Vec<(TaskId, Implementation)>,
}

impl<'p> IncrementalEvaluator<'p> {
    /// Starts from the all-software mapping.
    pub fn new(problem: &'p CompiledProblem) -> Self {
        let app_loads: Vec<u64> = problem
            .app_tasks
            .iter()
            .map(|members| {
                members
                    .iter()
                    .map(|task| problem.utilization[task.index()])
                    .sum()
            })
            .collect();
        let overloaded = app_loads
            .iter()
            .filter(|&&load| load > problem.capacity_permille)
            .count();
        IncrementalEvaluator {
            implementations: vec![Implementation::Software; problem.task_count()],
            app_loads,
            overloaded_applications: overloaded,
            serialized_load: problem.total_utilization,
            hardware_area: 0,
            software_count: problem.task_count(),
            trail: Vec::new(),
            problem,
        }
    }

    /// Starts from the all-hardware mapping (zero load everywhere; the state a
    /// branch-and-bound search begins from, with every task still "undecided").
    pub fn all_hardware(problem: &'p CompiledProblem) -> Self {
        IncrementalEvaluator {
            implementations: vec![Implementation::Hardware; problem.task_count()],
            app_loads: vec![0; problem.application_count()],
            overloaded_applications: 0,
            serialized_load: 0,
            hardware_area: problem.hw_area.iter().sum(),
            software_count: 0,
            trail: Vec::new(),
            problem,
        }
    }

    /// The compiled problem this evaluator runs over.
    pub fn problem(&self) -> &'p CompiledProblem {
        self.problem
    }

    /// Current implementation of a task.
    pub fn implementation(&self, task: TaskId) -> Implementation {
        self.implementations[task.index()]
    }

    /// Assigns `implementation` to `task`, recording the previous choice for
    /// [`undo`](Self::undo). Assigning the current implementation is a recorded no-op,
    /// so apply/undo always stay balanced.
    pub fn apply(&mut self, task: TaskId, implementation: Implementation) {
        let previous = self.implementations[task.index()];
        self.trail.push((task, previous));
        if previous != implementation {
            self.flip(task, implementation);
        }
    }

    /// Reverts the most recent [`apply`](Self::apply). Returns `false` if there is
    /// nothing left to undo.
    pub fn undo(&mut self) -> bool {
        let Some((task, previous)) = self.trail.pop() else {
            return false;
        };
        if self.implementations[task.index()] != previous {
            self.flip(task, previous);
        }
        true
    }

    /// Number of not-yet-undone [`apply`](Self::apply) calls.
    pub fn depth(&self) -> usize {
        self.trail.len()
    }

    /// Forgets the undo trail, making the current state the new baseline.
    pub fn commit(&mut self) {
        self.trail.clear();
    }

    fn flip(&mut self, task: TaskId, implementation: Implementation) {
        let index = task.index();
        let utilization = self.problem.utilization[index];
        let capacity = self.problem.capacity_permille;
        match implementation {
            Implementation::Hardware => {
                for &app in &self.problem.apps_of_task[index] {
                    let old = self.app_loads[app as usize];
                    let new = old - utilization;
                    if old > capacity && new <= capacity {
                        self.overloaded_applications -= 1;
                    }
                    self.app_loads[app as usize] = new;
                }
                self.serialized_load -= utilization;
                self.hardware_area += self.problem.hw_area[index];
                self.software_count -= 1;
            }
            Implementation::Software => {
                for &app in &self.problem.apps_of_task[index] {
                    let old = self.app_loads[app as usize];
                    let new = old + utilization;
                    if old <= capacity && new > capacity {
                        self.overloaded_applications += 1;
                    }
                    self.app_loads[app as usize] = new;
                }
                self.serialized_load += utilization;
                self.hardware_area -= self.problem.hw_area[index];
                self.software_count += 1;
            }
        }
        self.implementations[index] = implementation;
    }

    /// Software load of one application, in permille.
    pub fn load_permille(&self, application: usize) -> u64 {
        self.app_loads[application]
    }

    /// Serialized software load (all tasks assumed concurrent), in permille.
    pub fn serialized_load_permille(&self) -> u64 {
        self.serialized_load
    }

    /// Number of applications whose load currently exceeds the capacity.
    pub fn overloaded_applications(&self) -> usize {
        self.overloaded_applications
    }

    /// Whether the current mapping is schedulable under `mode`. O(1).
    pub fn feasible(&self, mode: FeasibilityMode) -> bool {
        match mode {
            FeasibilityMode::PerApplication => self.overloaded_applications == 0,
            FeasibilityMode::Serialized => self.serialized_load <= self.problem.capacity_permille,
        }
    }

    /// Number of tasks currently in software.
    pub fn software_count(&self) -> usize {
        self.software_count
    }

    /// Number of tasks currently in hardware.
    pub fn hardware_count(&self) -> usize {
        self.problem.task_count() - self.software_count
    }

    /// Total area of the tasks currently in hardware.
    pub fn hardware_area(&self) -> u64 {
        self.hardware_area
    }

    /// Total cost of the current mapping (hardware areas + processor if any task is
    /// in software). O(1).
    pub fn total_cost(&self) -> u64 {
        if self.software_count > 0 {
            self.hardware_area + self.problem.processor_cost
        } else {
            self.hardware_area
        }
    }

    /// Materializes the current mapping.
    pub fn mapping(&self) -> Mapping {
        self.problem
            .build_mapping(|index| self.implementations[index] == Implementation::Hardware)
    }

    /// Cost breakdown of the current mapping, bit-identical to
    /// [`crate::cost::evaluate`].
    pub fn cost_breakdown(&self) -> CostBreakdown {
        self.problem
            .build_cost_breakdown(|index| self.implementations[index] == Implementation::Hardware)
    }

    /// Feasibility report of the current mapping, bit-identical to
    /// [`crate::schedule::check`] / [`crate::schedule::check_serialized`].
    pub fn feasibility_report(&self, mode: FeasibilityMode) -> FeasibilityReport {
        self.problem
            .build_feasibility_report(mode, |app| self.app_loads[app], self.serialized_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use crate::problem::tests::toy_problem;
    use crate::schedule::{check, check_serialized};

    #[test]
    fn compile_lowers_tasks_in_name_order() {
        let compiled = CompiledProblem::compile(&toy_problem()).unwrap();
        assert_eq!(compiled.task_count(), 4);
        assert_eq!(compiled.application_count(), 2);
        assert_eq!(
            compiled.names(),
            ["PA", "PB", "cluster1", "cluster2"]
                .map(String::from)
                .as_slice()
        );
        assert_eq!(compiled.task_id("cluster1"), Some(TaskId(2)));
        assert_eq!(compiled.task_id("ghost"), None);
        assert_eq!(compiled.name_of(TaskId(0)), "PA");
        assert_eq!(compiled.utilizations(), &[250, 150, 700, 800]);
        assert_eq!(compiled.hardware_areas(), &[26, 30, 19, 23]);
        assert_eq!(compiled.total_utilization_permille(), 1900);
        // application1 = {PA, PB, cluster1} = bits 0, 1, 2.
        assert_eq!(
            compiled.application_tasks(0),
            &[TaskId(0), TaskId(1), TaskId(2)]
        );
        assert_eq!(compiled.applications_of_task(TaskId(0)), &[0, 1]);
        assert_eq!(compiled.applications_of_task(TaskId(2)), &[0]);
    }

    #[test]
    fn mask_round_trip_and_mask_queries_match_the_oracle() {
        let problem = toy_problem();
        let compiled = CompiledProblem::compile(&problem).unwrap();
        for mask in 0u64..16 {
            let mapping = compiled.mapping_of_mask(mask);
            assert_eq!(compiled.mask_of_mapping(&mapping).unwrap(), mask);
            assert_eq!(
                compiled.cost_breakdown_of_mask(mask),
                evaluate(&problem, &mapping, None).unwrap()
            );
            for mode in [FeasibilityMode::PerApplication, FeasibilityMode::Serialized] {
                let oracle = match mode {
                    FeasibilityMode::PerApplication => check(&problem, &mapping).unwrap(),
                    FeasibilityMode::Serialized => check_serialized(&problem, &mapping).unwrap(),
                };
                assert_eq!(compiled.feasibility_report_of_mask(mask, mode), oracle);
                assert_eq!(compiled.feasible_mask(mask, mode), oracle.feasible());
            }
            assert_eq!(
                compiled.total_cost_of_mask(mask),
                compiled.cost_breakdown_of_mask(mask).total()
            );
        }
    }

    #[test]
    fn incomplete_mapping_has_no_mask() {
        let compiled = CompiledProblem::compile(&toy_problem()).unwrap();
        let partial = Mapping::new().with("PA", Implementation::Hardware);
        assert!(matches!(
            compiled.mask_of_mapping(&partial),
            Err(SynthError::Validation(_))
        ));
    }

    #[test]
    fn evaluator_apply_undo_round_trips() {
        let compiled = CompiledProblem::compile(&toy_problem()).unwrap();
        let mut evaluator = IncrementalEvaluator::new(&compiled);
        assert_eq!(evaluator.software_count(), 4);
        assert_eq!(evaluator.total_cost(), 15);
        assert!(!evaluator.feasible(FeasibilityMode::PerApplication));

        evaluator.apply(TaskId(0), Implementation::Hardware);
        assert_eq!(evaluator.hardware_area(), 26);
        assert_eq!(evaluator.total_cost(), 41);
        assert!(evaluator.feasible(FeasibilityMode::PerApplication));
        assert!(!evaluator.feasible(FeasibilityMode::Serialized));
        assert_eq!(evaluator.load_permille(0), 150 + 700);
        assert_eq!(evaluator.serialized_load_permille(), 1650);

        // A no-op apply is recorded and undone symmetrically.
        evaluator.apply(TaskId(0), Implementation::Hardware);
        assert_eq!(evaluator.depth(), 2);
        assert!(evaluator.undo());
        assert_eq!(evaluator.total_cost(), 41);
        assert!(evaluator.undo());
        assert_eq!(evaluator.total_cost(), 15);
        assert_eq!(evaluator.software_count(), 4);
        assert!(!evaluator.undo());
    }

    #[test]
    fn all_hardware_start_has_zero_load() {
        let compiled = CompiledProblem::compile(&toy_problem()).unwrap();
        let mut evaluator = IncrementalEvaluator::all_hardware(&compiled);
        assert_eq!(evaluator.software_count(), 0);
        assert_eq!(evaluator.hardware_area(), 26 + 30 + 19 + 23);
        assert_eq!(evaluator.total_cost(), 98);
        assert!(evaluator.feasible(FeasibilityMode::PerApplication));
        assert!(evaluator.feasible(FeasibilityMode::Serialized));
        evaluator.apply(TaskId(1), Implementation::Software);
        assert_eq!(evaluator.total_cost(), 26 + 19 + 23 + 15);
        assert_eq!(evaluator.load_permille(0), 150);
        evaluator.commit();
        assert_eq!(evaluator.depth(), 0);
        assert!(!evaluator.undo());
    }

    #[test]
    fn duplicate_members_disable_the_mask_path_but_stay_correct() {
        use crate::problem::{ApplicationSpec, TaskSpec};
        let mut problem = SynthesisProblem::new("dup", 10);
        problem.add_task(TaskSpec::new("a", 30, 100, 5, 1));
        problem.add_task(TaskSpec::new("b", 20, 100, 7, 1));
        problem
            .add_application(ApplicationSpec::new(
                "twice",
                ["a", "a", "b"].map(String::from),
            ))
            .unwrap();
        let compiled = CompiledProblem::compile(&problem).unwrap();
        assert!(!compiled.mask_ready);
        // `a` listed twice contributes its utilization twice, exactly as check() does.
        let mapping = compiled.mapping_of_mask(0);
        let oracle = check(&problem, &mapping).unwrap();
        assert_eq!(oracle.applications[0].load_permille, 300 + 300 + 200);
        assert_eq!(compiled.application_load_of_mask(0, 0), 800);
        let evaluator = IncrementalEvaluator::new(&compiled);
        assert_eq!(evaluator.load_permille(0), 800);
    }
}
