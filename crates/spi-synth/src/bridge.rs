//! Deriving a synthesis problem from a variant-aware SPI model.
//!
//! The paper's point is that the *representation* enables overall optimization; this
//! module is the link between the representation ([`spi_variants::VariantSystem`]) and
//! the decision problem ([`SynthesisProblem`]): every non-virtual process of the common
//! part becomes a task, every cluster of every interface becomes a task, and every
//! variant combination becomes an application.

use spi_model::SpiGraph;
use spi_variants::VariantSystem;

use crate::compiled::CompiledProblem;
use crate::error::SynthError;
use crate::problem::{ApplicationSpec, SynthesisProblem, TaskSpec};
use crate::Result;

/// Cost/effort annotation of one task unit, supplied by the caller (estimation is out of
/// scope of the paper; the workloads crate ships the Table 1 calibration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskParams {
    /// Software execution time per activation.
    pub sw_time: u64,
    /// Activation period.
    pub period: u64,
    /// Hardware (ASIC) cost.
    pub hw_area: u64,
    /// Synthesis effort for the design-time model.
    pub synthesis_effort: u64,
}

/// Derives a [`SynthesisProblem`] from a variant system.
///
/// `params` is consulted once per task unit: with the plain process name for common
/// processes and with `"{interface}/{cluster}"` for variants. Virtual (environment)
/// processes are skipped — they are not implemented and must not be synthesized.
///
/// # Errors
///
/// Returns [`SynthError::Validation`] if `params` returns `None` for a task unit, and
/// propagates variant-space errors.
pub fn from_variant_system(
    system: &VariantSystem,
    processor_cost: u64,
    params: impl FnMut(&str) -> Option<TaskParams>,
) -> Result<SynthesisProblem> {
    let (mut problem, common_tasks) = derive_tasks(system, processor_cost, params)?;
    // Lazy enumeration: each combination is decoded, turned into an application and
    // dropped — the cross product is never materialized as a whole.
    for (index, choice) in system.variant_space().choices_iter().enumerate() {
        add_application(&mut problem, &common_tasks, index, &choice)?;
    }
    problem.validate()?;
    Ok(problem)
}

/// Derives a [`SynthesisProblem`] for one strided shard of the variant space:
/// combination `index` is included iff `index % shard_count == shard`.
///
/// Sharding rides on the `O(axes)` `nth` of the lazy space iterator, so a shard of a
/// `2^20`-combination space only ever decodes its own combinations. Application names
/// keep their global combination index (`application{index+1}`), so results from
/// different shards can be correlated.
///
/// # Errors
///
/// Returns [`SynthError::Validation`] for `shard >= shard_count` or `shard_count == 0`,
/// otherwise as [`from_variant_system`].
pub fn from_variant_system_shard(
    system: &VariantSystem,
    processor_cost: u64,
    params: impl FnMut(&str) -> Option<TaskParams>,
    shard: usize,
    shard_count: usize,
) -> Result<SynthesisProblem> {
    if shard_count == 0 || shard >= shard_count {
        return Err(SynthError::Validation(format!(
            "invalid shard {shard}/{shard_count}"
        )));
    }
    let (mut problem, common_tasks) = derive_tasks(system, processor_cost, params)?;
    for (offset, choice) in system
        .variant_space()
        .choices_iter()
        .skip(shard)
        .step_by(shard_count)
        .enumerate()
    {
        add_application(
            &mut problem,
            &common_tasks,
            shard + offset * shard_count,
            &choice,
        )?;
    }
    problem.validate()?;
    Ok(problem)
}

/// Derives a single-application [`SynthesisProblem`] from one **flattened**
/// (single-variant) SPI graph: every non-virtual process becomes a task, and one
/// application spans them all.
///
/// This is the per-variant evaluation step the exploration service pays per point of
/// the variant space — [`from_variant_system`] poses the *joint* problem over every
/// combination at once, while this poses the *independent* problem of a single
/// combination, the unit a [`spi_variants::Flattener`] emits. `params` is consulted
/// with the flattened process names (common names verbatim, spliced variants as
/// `"{interface}/{cluster}/{process}"`).
///
/// # Errors
///
/// Returns [`SynthError::Validation`] if `params` returns `None` for a process or the
/// graph has no non-virtual process (an application must span at least one task).
pub fn from_flat_graph(
    graph: &SpiGraph,
    processor_cost: u64,
    mut params: impl FnMut(&str) -> Option<TaskParams>,
) -> Result<SynthesisProblem> {
    let mut problem = SynthesisProblem::new(graph.name(), processor_cost);
    let mut tasks: Vec<String> = Vec::new();
    for process in graph.processes() {
        if process.is_virtual() {
            continue;
        }
        let name = process.name().to_string();
        let p = params(&name).ok_or_else(|| {
            SynthError::Validation(format!("no synthesis parameters for task `{name}`"))
        })?;
        problem.add_task(TaskSpec::new(
            &name,
            p.sw_time,
            p.period,
            p.hw_area,
            p.synthesis_effort,
        ));
        tasks.push(name);
    }
    problem.add_application(ApplicationSpec::new("flattened", tasks))?;
    problem.validate()?;
    Ok(problem)
}

/// Derives the **compiled** form of [`from_flat_graph`] directly from the graph's
/// node slab: every non-virtual process becomes a task of one all-spanning
/// application, lowered straight into a [`CompiledProblem`] without materializing
/// the string-keyed `SynthesisProblem` in between.
///
/// This is the exploration service's per-variant hot path — one call per point of
/// the variant space — so skipping the intermediate `BTreeMap` construction and the
/// re-compilation matters. The result is bit-identical to
/// `CompiledProblem::compile(&from_flat_graph(..)?)` (task ids in name order, the
/// application's member list in graph iteration order), a property pinned by a
/// differential test.
///
/// # Errors
///
/// As [`from_flat_graph`]: [`SynthError::Validation`] if `params` returns `None`
/// for a process or the graph has no non-virtual process.
pub fn compiled_from_flat_graph(
    graph: &SpiGraph,
    processor_cost: u64,
    mut params: impl FnMut(&str) -> Option<TaskParams>,
) -> Result<CompiledProblem> {
    let mut tasks: Vec<TaskSpec> = Vec::with_capacity(graph.process_count());
    for process in graph.processes() {
        if process.is_virtual() {
            continue;
        }
        let name = process.name();
        let p = params(name).ok_or_else(|| {
            SynthError::Validation(format!("no synthesis parameters for task `{name}`"))
        })?;
        tasks.push(TaskSpec::new(
            name,
            p.sw_time,
            p.period,
            p.hw_area,
            p.synthesis_effort,
        ));
    }
    CompiledProblem::single_application(
        "flattened",
        processor_cost,
        DEFAULT_CAPACITY_PERMILLE,
        tasks,
    )
}

/// The schedulable-capacity default of [`SynthesisProblem::new`], which the direct
/// compiled path must match for bit-identical results.
const DEFAULT_CAPACITY_PERMILLE: u64 = 1000;

/// Sweeps one strided shard of a flattener's variant space through the compiled
/// per-variant path, **incrementally**: the shard's combinations are visited in
/// Gray-code order through a [`spi_variants::DeltaFlattener`], so each flat graph is
/// a patch of the previous one instead of a from-scratch rebuild, and each is lowered
/// with [`compiled_from_flat_graph`] and handed to `visit` together with its
/// **canonical** combination index (the same index [`from_variant_system`] numbers
/// applications by, so results correlate across paths and shards).
///
/// Visit order differs from [`from_variant_system_shard`] — Gray order is a
/// permutation of the space — but the set of indices visited by shard `s` is exactly
/// the image of the Gray ranks `r ≡ s (mod shard_count)`, so the union over all
/// shards still covers every combination exactly once. Returns the number of
/// combinations visited.
///
/// # Errors
///
/// Returns [`SynthError::Validation`] for `shard >= shard_count` or
/// `shard_count == 0`, propagates flatten errors as [`SynthError::Variants`], and
/// short-circuits on the first error from `visit`.
pub fn compiled_shard_sweep(
    flattener: &spi_variants::Flattener,
    processor_cost: u64,
    mut params: impl FnMut(&str) -> Option<TaskParams>,
    shard: usize,
    shard_count: usize,
    mut visit: impl FnMut(usize, &CompiledProblem) -> Result<()>,
) -> Result<usize> {
    if shard_count == 0 || shard >= shard_count {
        return Err(SynthError::Validation(format!(
            "invalid shard {shard}/{shard_count}"
        )));
    }
    let combinations = flattener.space().count();
    let mut delta = spi_variants::DeltaFlattener::new(flattener);
    let mut visited = 0usize;
    let mut rank = shard;
    while rank < combinations {
        let (index, graph) = delta.flatten_gray_rank(rank)?;
        let compiled = compiled_from_flat_graph(graph, processor_cost, &mut params)?;
        visit(index, &compiled)?;
        visited += 1;
        rank += shard_count;
    }
    Ok(visited)
}

/// Shared task-derivation step: every non-virtual common process and every cluster
/// becomes a task. Returns the problem (without applications) and the common task
/// names in process order.
fn derive_tasks(
    system: &VariantSystem,
    processor_cost: u64,
    mut params: impl FnMut(&str) -> Option<TaskParams>,
) -> Result<(SynthesisProblem, Vec<String>)> {
    let mut problem = SynthesisProblem::new(system.name(), processor_cost);

    let mut common_tasks: Vec<String> = Vec::new();
    for process in system.common().processes() {
        if process.is_virtual() {
            continue;
        }
        let name = process.name().to_string();
        let p = params(&name).ok_or_else(|| {
            SynthError::Validation(format!("no synthesis parameters for task `{name}`"))
        })?;
        problem.add_task(TaskSpec::new(
            &name,
            p.sw_time,
            p.period,
            p.hw_area,
            p.synthesis_effort,
        ));
        common_tasks.push(name);
    }

    for attachment in system.attachments() {
        let interface = attachment.interface();
        for cluster in interface.clusters() {
            let name = format!("{}/{}", interface.name(), cluster.name());
            let p = params(&name).ok_or_else(|| {
                SynthError::Validation(format!("no synthesis parameters for task `{name}`"))
            })?;
            problem.add_task(TaskSpec::new(
                &name,
                p.sw_time,
                p.period,
                p.hw_area,
                p.synthesis_effort,
            ));
        }
    }
    Ok((problem, common_tasks))
}

/// Adds the application for variant-space combination `index` (0-based) to `problem`.
fn add_application(
    problem: &mut SynthesisProblem,
    common_tasks: &[String],
    index: usize,
    choice: &spi_variants::VariantChoice,
) -> Result<()> {
    let mut tasks = common_tasks.to_vec();
    for (interface, cluster) in choice.iter() {
        tasks.push(format!("{interface}/{cluster}"));
    }
    problem.add_application(ApplicationSpec::new(
        format!("application{}", index + 1),
        tasks,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::{ChannelKind, GraphBuilder, Interval};
    use spi_variants::{Cluster, Interface, VariantType};

    fn small_system() -> VariantSystem {
        let mut b = GraphBuilder::new("bridge");
        let pa = b.process("PA").latency(Interval::point(2)).build().unwrap();
        b.process("PEnv")
            .latency(Interval::point(1))
            .environment()
            .build()
            .unwrap();
        let cin = b.channel("CIn", ChannelKind::Queue).unwrap();
        let cout = b.channel("COut", ChannelKind::Queue).unwrap();
        b.connect_output(pa, cin, Interval::point(1)).unwrap();
        let _ = cout;
        let common = b.finish().unwrap();

        let cluster = |name: &str| {
            let mut cb = GraphBuilder::new(name);
            cb.process("P").latency(Interval::point(3)).build().unwrap();
            let mut cluster = Cluster::new(name, cb.finish().unwrap());
            cluster
                .add_input_port("i", "P", Interval::point(1))
                .unwrap();
            cluster
                .add_output_port("o", "P", Interval::point(1))
                .unwrap();
            cluster
        };
        let mut interface = Interface::new("if1");
        interface.add_input_port("i");
        interface.add_output_port("o");
        interface.add_cluster(cluster("v1")).unwrap();
        interface.add_cluster(cluster("v2")).unwrap();

        let mut system = VariantSystem::new(common);
        let att = system
            .attach_interface(interface, VariantType::RunTime)
            .unwrap();
        system.bind_input(att, "i", "CIn").unwrap();
        system.bind_output(att, "o", "COut").unwrap();
        system
    }

    fn default_params(_: &str) -> Option<TaskParams> {
        Some(TaskParams {
            sw_time: 10,
            period: 100,
            hw_area: 20,
            synthesis_effort: 5,
        })
    }

    #[test]
    fn tasks_and_applications_are_derived() {
        let system = small_system();
        let problem = from_variant_system(&system, 15, default_params).unwrap();
        // PA (common, non-virtual) + two clusters; the environment process is skipped.
        assert_eq!(problem.task_count(), 3);
        assert!(problem.task("PA").is_some());
        assert!(problem.task("if1/v1").is_some());
        assert!(problem.task("PEnv").is_none());
        assert_eq!(problem.applications().len(), 2);
        assert_eq!(problem.common_tasks(), vec!["PA"]);
        assert_eq!(problem.variant_tasks(), vec!["if1/v1", "if1/v2"]);
    }

    #[test]
    fn missing_parameters_are_rejected() {
        let system = small_system();
        let err = from_variant_system(&system, 15, |name| {
            (name == "PA").then_some(TaskParams {
                sw_time: 1,
                period: 10,
                hw_area: 1,
                synthesis_effort: 1,
            })
        })
        .unwrap_err();
        assert!(matches!(err, SynthError::Validation(_)));
    }

    #[test]
    fn derived_problem_is_synthesizable() {
        let system = small_system();
        let problem = from_variant_system(&system, 15, default_params).unwrap();
        let result = crate::strategy::variant_aware(&problem).unwrap();
        assert!(result.feasibility.feasible());
    }

    #[test]
    fn flat_graphs_become_single_application_problems() {
        let system = small_system();
        let choice = system.variant_space().choices_iter().next().unwrap();
        let graph = system.flatten(&choice).unwrap();
        let problem = from_flat_graph(&graph, 15, default_params).unwrap();
        // PA + the spliced cluster process; the environment process is skipped.
        assert_eq!(problem.task_count(), 2);
        assert!(problem.task("PA").is_some());
        assert!(problem.task("if1/v1/P").is_some());
        assert!(problem.task("PEnv").is_none());
        assert_eq!(problem.applications().len(), 1);
        assert_eq!(problem.applications()[0].tasks.len(), 2);
        let result = crate::partition::optimize(
            &problem,
            crate::partition::FeasibilityMode::PerApplication,
            crate::partition::SearchStrategy::Exhaustive,
        )
        .unwrap();
        assert!(result.feasibility.feasible());
    }

    #[test]
    fn compiled_from_flat_graph_matches_the_two_step_path() {
        let system = small_system();
        for choice in system.variant_space().choices_iter() {
            let graph = system.flatten(&choice).unwrap();
            let two_step =
                CompiledProblem::compile(&from_flat_graph(&graph, 15, default_params).unwrap())
                    .unwrap();
            let direct = compiled_from_flat_graph(&graph, 15, default_params).unwrap();
            assert_eq!(direct, two_step, "direct compile must be bit-identical");
            // And the searches over both return the identical optimum.
            let mode = crate::partition::FeasibilityMode::PerApplication;
            let strategy = crate::partition::SearchStrategy::Exhaustive;
            assert_eq!(
                crate::partition::optimize_compiled(&direct, mode, strategy).unwrap(),
                crate::partition::optimize_compiled(&two_step, mode, strategy).unwrap(),
            );
        }
    }

    #[test]
    fn compiled_from_flat_graph_rejects_missing_params_and_empty_graphs() {
        let system = small_system();
        let choice = system.variant_space().choices_iter().next().unwrap();
        let graph = system.flatten(&choice).unwrap();
        assert!(matches!(
            compiled_from_flat_graph(&graph, 15, |_| None),
            Err(SynthError::Validation(_))
        ));
        let empty = spi_model::SpiGraph::new("empty");
        assert!(matches!(
            compiled_from_flat_graph(&empty, 15, default_params),
            Err(SynthError::Validation(_))
        ));
    }

    #[test]
    fn flat_graph_with_missing_params_or_no_tasks_is_rejected() {
        let system = small_system();
        let choice = system.variant_space().choices_iter().next().unwrap();
        let graph = system.flatten(&choice).unwrap();
        assert!(matches!(
            from_flat_graph(&graph, 15, |_| None),
            Err(SynthError::Validation(_))
        ));
        let empty = spi_model::SpiGraph::new("empty");
        assert!(matches!(
            from_flat_graph(&empty, 15, default_params),
            Err(SynthError::Validation(_))
        ));
    }

    #[test]
    fn shards_partition_the_applications() {
        let system = small_system();
        let full = from_variant_system(&system, 15, default_params).unwrap();
        let shard_count = 2;
        let mut shard_applications: Vec<String> = Vec::new();
        for shard in 0..shard_count {
            let partial =
                from_variant_system_shard(&system, 15, default_params, shard, shard_count).unwrap();
            assert_eq!(partial.task_count(), full.task_count());
            shard_applications.extend(partial.applications().iter().map(|a| a.name.clone()));
        }
        let mut full_applications: Vec<String> =
            full.applications().iter().map(|a| a.name.clone()).collect();
        shard_applications.sort();
        full_applications.sort();
        assert_eq!(shard_applications, full_applications);
    }

    #[test]
    fn compiled_shard_sweep_matches_the_per_index_path() {
        let system = small_system();
        let flattener = spi_variants::Flattener::new(&system).unwrap();
        let count = flattener.space().count();
        for shard_count in [1usize, 2] {
            let mut seen = Vec::new();
            for shard in 0..shard_count {
                let visited = compiled_shard_sweep(
                    &flattener,
                    15,
                    default_params,
                    shard,
                    shard_count,
                    |index, compiled| {
                        // Each swept problem must be bit-identical to flattening
                        // this index from scratch and lowering it directly.
                        let (_, graph) = flattener.flatten_at(index).unwrap();
                        let expected =
                            compiled_from_flat_graph(&graph, 15, default_params).unwrap();
                        assert_eq!(compiled, &expected, "index {index}");
                        seen.push(index);
                        Ok(())
                    },
                )
                .unwrap();
                assert!(visited > 0);
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..count).collect::<Vec<_>>());
        }
    }

    #[test]
    fn compiled_shard_sweep_rejects_bad_shards_and_propagates_visit_errors() {
        let system = small_system();
        let flattener = spi_variants::Flattener::new(&system).unwrap();
        assert!(matches!(
            compiled_shard_sweep(&flattener, 15, default_params, 2, 2, |_, _| Ok(())),
            Err(SynthError::Validation(_))
        ));
        assert!(matches!(
            compiled_shard_sweep(&flattener, 15, default_params, 0, 0, |_, _| Ok(())),
            Err(SynthError::Validation(_))
        ));
        let err = compiled_shard_sweep(&flattener, 15, default_params, 0, 1, |_, _| {
            Err(SynthError::Validation("stop".into()))
        })
        .unwrap_err();
        assert!(matches!(err, SynthError::Validation(m) if m == "stop"));
    }

    #[test]
    fn invalid_shard_bounds_are_rejected() {
        let system = small_system();
        assert!(matches!(
            from_variant_system_shard(&system, 15, default_params, 2, 2),
            Err(SynthError::Validation(_))
        ));
        assert!(matches!(
            from_variant_system_shard(&system, 15, default_params, 0, 0),
            Err(SynthError::Validation(_))
        ));
    }
}
