//! # spi-bench
//!
//! Benchmark harness and experiment driver for the reproduction. Each Criterion bench
//! regenerates one table or figure of the paper (see `DESIGN.md` for the
//! per-experiment index); the `experiments` binary prints the reproduced artefacts in a
//! paper-comparable textual form and is what `EXPERIMENTS.md` is derived from.
//!
//! The library part contains small helpers shared by the benches and the binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use spi_synth::report::{table1, Table1};
use spi_synth::SynthesisProblem;
use spi_workloads::WorkloadError;

/// Builds the Table 1 problem and reproduces the table (convenience used by both the
/// benches and the experiments binary).
///
/// # Errors
///
/// Propagates workload and synthesis errors.
pub fn reproduce_table1() -> Result<Table1, WorkloadError> {
    Ok(table1(&spi_workloads::table1_problem()?)?)
}

/// The design-time scaling experiment: returns `(variants per set, independent, joint)`
/// rows for the given sweep.
///
/// # Errors
///
/// Propagates workload and synthesis errors.
pub fn design_time_scaling(sweep: &[usize]) -> Result<Vec<(usize, u64, u64)>, WorkloadError> {
    let mut rows = Vec::new();
    for &clusters in sweep {
        let problem = spi_workloads::synthetic_problem(&spi_workloads::SyntheticParams {
            clusters_per_interface: clusters,
            ..Default::default()
        })?;
        rows.push((
            clusters,
            spi_synth::design_time::independent(&problem)?.total,
            spi_synth::design_time::joint(&problem).total,
        ));
    }
    Ok(rows)
}

/// Runs the three synthesis flows plus the two baselines on a problem and returns
/// `(label, total cost, design time)` rows.
///
/// # Errors
///
/// Propagates synthesis errors.
pub fn compare_flows(problem: &SynthesisProblem) -> Result<Vec<(String, u64, u64)>, WorkloadError> {
    let mut rows = Vec::new();
    for result in spi_synth::strategy::independent(problem)? {
        rows.push((result.strategy, result.cost.total(), result.design_time));
    }
    let order: Vec<&str> = problem
        .applications()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    for result in [
        spi_synth::strategy::superposition(problem)?,
        spi_synth::strategy::variant_aware(problem)?,
        spi_synth::baseline::serialization(problem)?,
        spi_synth::baseline::incremental(problem, &order)?,
    ] {
        rows.push((result.strategy, result.cost.total(), result.design_time));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduction_has_four_rows() {
        let table = reproduce_table1().unwrap();
        assert_eq!(table.rows.len(), 4);
    }

    #[test]
    fn design_time_scaling_is_monotone_in_the_gap() {
        let rows = design_time_scaling(&[2, 4, 8]).unwrap();
        assert_eq!(rows.len(), 3);
        let gaps: Vec<u64> = rows.iter().map(|(_, ind, joint)| ind - joint).collect();
        assert!(gaps[0] < gaps[1] && gaps[1] < gaps[2]);
    }

    #[test]
    fn compare_flows_covers_all_strategies() {
        let rows = compare_flows(&spi_workloads::table1_problem().unwrap()).unwrap();
        // 2 independent + superposition + variant-aware + 2 baselines.
        assert_eq!(rows.len(), 6);
    }
}
