//! Records the variant-space performance baseline into `BENCH_variant_space.json`.
//!
//! For cross products of 2^4 … 2^20 combinations (k interfaces × 2 clusters), this
//! measures:
//!
//! * **enumeration** — the eager `VariantSpace::choices()` (only while the full
//!   `Vec` fits comfortably in memory, ≤ 2^16) vs the lazy
//!   `VariantSpace::choices_iter()`;
//! * **flattening** — the legacy clone-per-variant `VariantSystem::flatten` vs the
//!   skeleton-reusing `Flattener::flatten_into`, over a fixed 64-combination
//!   strided shard of the space;
//! * **partition search** — the chunked exhaustive enumeration vs the
//!   branch-and-bound search on synthetic problems of 10/14/18 tasks, with the
//!   candidate accounting (`evaluated`, `pruned`) of both, so the search trajectory
//!   is tracked PR over PR. The two optima are asserted identical before anything is
//!   recorded.
//! * **delta flattening** — a full Gray-order walk of the 2^12 space, rebuilding
//!   every variant from the skeleton (`flatten_into`) vs patching the previous
//!   flat graph (`DeltaFlattener`); the patched graphs are asserted bit-identical
//!   to `flatten_at` on every rank before timing. CI gates the patch path staying
//!   ≥5× faster per variant.
//! * **exploration service** — end-to-end throughput of `spi-explore` (submit →
//!   drain → aggregate) at 1/4/8 workers over a 4096-variant space, against the
//!   single-thread flatten+evaluate sweep it replaces; the service optimum is
//!   asserted equal to the serial sweep's before anything is recorded.
//! * **durable store** — cold submit (fresh store directory, full evaluation
//!   sweep, write-ahead logged) vs warm-cache submit (service restarted on the
//!   same directory, identical job served from the content-addressed result
//!   cache with zero worker evaluations), plus the restart-recovery time
//!   (WAL open + replay + registry rebuild). The warm optimum is asserted
//!   bit-equal to the cold one before anything is recorded; CI gates warm
//!   being ≥10× faster than cold.
//! * **observability overhead** — the same 4-worker service run with an
//!   observability plane enabled vs compiled to its disabled stub,
//!   interleaved pairwise so machine drift hits both sides equally: one
//!   pair toggles the metrics plane (`overhead_pct`), one toggles the span
//!   recorder (`span_overhead_pct`); each reported number is the median
//!   paired ratio. CI gates both at ≤5%.
//!
//! Run with `cargo run --release -p spi-bench --bin variant_space_baseline`; CI runs
//! it as a regression gate and fails when keys go missing, when branch-and-bound
//! stops beating the exhaustive enumeration at the largest size, or when the
//! 8-worker service drops below the single-thread baseline.

use std::sync::Arc;
use std::time::Instant;

use spi_explore::{Evaluator, ExplorationService, JobSpec, PartitionEvaluator, ServiceConfig};
use spi_model::SpiGraph;
use spi_synth::partition::{optimize, FeasibilityMode, SearchStrategy};
use spi_variants::{DeltaFlattener, Flattener};
use spi_workloads::{scaling_system, synthetic_problem, SyntheticParams};

/// Median wall-clock nanoseconds of `runs` executions of `f`.
fn median_ns<F: FnMut() -> u64>(runs: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            let checksum = f();
            let elapsed = start.elapsed().as_nanos();
            std::hint::black_box(checksum);
            elapsed
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Row {
    interfaces: usize,
    combinations: usize,
    eager_enumerate_ns: Option<u128>,
    lazy_enumerate_ns: u128,
    flatten_sample: usize,
    clone_per_variant_ns_per_flatten: u128,
    flattener_ns_per_flatten: u128,
}

fn measure(interfaces: usize) -> Row {
    const FLATTEN_SAMPLE: usize = 64;
    const RUNS: usize = 5;

    let system = scaling_system(interfaces, 2).expect("scaling system builds");
    let space = system.variant_space();
    let combinations = space.count();

    // Eager enumeration materializes the cross product: measured only while that is
    // a reasonable allocation (2^16 choices ≈ a few MiB; 2^20 would be ~100× that).
    let eager_enumerate_ns =
        (combinations <= 1 << 16).then(|| median_ns(RUNS, || space.choices().len() as u64));
    let lazy_enumerate_ns = median_ns(RUNS, || {
        space.choices_iter().map(|c| c.len() as u64).sum::<u64>()
    });

    let stride = (combinations / FLATTEN_SAMPLE).max(1);
    let clone_ns = median_ns(RUNS, || {
        space
            .choices_iter()
            .step_by(stride)
            .take(FLATTEN_SAMPLE)
            .map(|choice| system.flatten(&choice).unwrap().process_count() as u64)
            .sum::<u64>()
    });
    let flattener = Flattener::new(&system).expect("flattener builds");
    let flattener_ns = median_ns(RUNS, || {
        let mut scratch = SpiGraph::new("");
        space
            .choices_iter()
            .step_by(stride)
            .take(FLATTEN_SAMPLE)
            .map(|choice| {
                flattener.flatten_into(&choice, &mut scratch).unwrap();
                scratch.process_count() as u64
            })
            .sum::<u64>()
    });

    Row {
        interfaces,
        combinations,
        eager_enumerate_ns,
        lazy_enumerate_ns,
        flatten_sample: FLATTEN_SAMPLE,
        clone_per_variant_ns_per_flatten: clone_ns / FLATTEN_SAMPLE as u128,
        flattener_ns_per_flatten: flattener_ns / FLATTEN_SAMPLE as u128,
    }
}

struct PartitionRow {
    tasks: usize,
    applications: usize,
    masks: u64,
    exhaustive_ns: u128,
    exhaustive_evaluated: u64,
    exhaustive_pruned: u64,
    branch_and_bound_ns: u128,
    branch_and_bound_evaluated: u64,
    branch_and_bound_pruned: u64,
    optimum_total: u64,
}

/// Times the exhaustive and branch-and-bound searches on a synthetic problem of
/// `4 + 2 * interfaces` tasks, asserting that both return the identical optimum.
fn measure_partition(interfaces: usize) -> PartitionRow {
    const RUNS: usize = 3;
    let problem = synthetic_problem(&SyntheticParams {
        common_tasks: 4,
        interfaces,
        clusters_per_interface: 2,
        cluster_depth: 1,
        seed: 42,
    })
    .expect("synthetic problem builds");
    let mode = FeasibilityMode::PerApplication;

    let exhaustive = optimize(&problem, mode, SearchStrategy::Exhaustive).expect("feasible");
    let bnb = optimize(&problem, mode, SearchStrategy::BranchAndBound).expect("feasible");
    assert_eq!(
        exhaustive.mapping, bnb.mapping,
        "branch-and-bound must return the bit-identical optimum"
    );
    assert_eq!(exhaustive.cost, bnb.cost);

    let exhaustive_ns = median_ns(RUNS, || {
        optimize(&problem, mode, SearchStrategy::Exhaustive)
            .unwrap()
            .cost
            .total()
    });
    let branch_and_bound_ns = median_ns(RUNS, || {
        optimize(&problem, mode, SearchStrategy::BranchAndBound)
            .unwrap()
            .cost
            .total()
    });

    PartitionRow {
        tasks: problem.task_count(),
        applications: problem.applications().len(),
        masks: 1u64 << problem.task_count(),
        exhaustive_ns,
        exhaustive_evaluated: exhaustive.evaluated_candidates,
        exhaustive_pruned: exhaustive.pruned_candidates,
        branch_and_bound_ns,
        branch_and_bound_evaluated: bnb.evaluated_candidates,
        branch_and_bound_pruned: bnb.pruned_candidates,
        optimum_total: exhaustive.cost.total(),
    }
}

struct ExplorationRow {
    workers: usize,
    service_ns: u128,
    throughput_per_s: f64,
}

struct ExplorationSection {
    interfaces: usize,
    variants: usize,
    /// Hardware threads of the recording machine: the CI gate only demands
    /// that 8 workers beat the serial sweep where parallelism exists to
    /// exploit (on a 1-CPU box the pool can at best tie, minus overhead).
    available_parallelism: usize,
    serial_flatten_eval_ns: u128,
    rows: Vec<ExplorationRow>,
}

/// Times the exploration service against the single-thread flatten+evaluate
/// sweep it replaces: same space, same `PartitionEvaluator`, so the gap is the
/// service machinery plus (at >1 worker) the parallel speedup. CI gates on
/// the 8-worker service staying at least as fast as the serial sweep.
fn measure_exploration(interfaces: usize) -> ExplorationSection {
    let system = scaling_system(interfaces, 2).expect("scaling system builds");
    let evaluator = PartitionEvaluator::default();
    let variants = system.variant_space().count();

    // Serial baseline: `flatten_all`-style enumeration (shared Flattener, the
    // fast path) plus the same per-variant evaluation, one thread, no service.
    let flattener = Flattener::new(&system).expect("flattener builds");
    let serial_started = Instant::now();
    let mut serial_best = u64::MAX;
    let mut scratch = SpiGraph::new("");
    for choice in flattener.space().choices_iter() {
        flattener
            .flatten_into(&choice, &mut scratch)
            .expect("flatten succeeds");
        let evaluation = evaluator
            .evaluate(0, &choice, &scratch, serial_best)
            .expect("evaluation succeeds");
        if evaluation.feasible {
            serial_best = serial_best.min(evaluation.cost);
        }
    }
    let serial_flatten_eval_ns = serial_started.elapsed().as_nanos();

    let mut rows = Vec::new();
    for workers in [1usize, 4, 8] {
        let service = ExplorationService::start(ServiceConfig::with_workers(workers));
        let started = Instant::now();
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: format!("baseline-{workers}w"),
                    shard_count: workers * 4,
                    top_k: 8,
                    ..JobSpec::default()
                },
                Arc::new(evaluator.clone()),
            )
            .expect("job submits");
        let status = service.wait(job).expect("job completes");
        let service_ns = started.elapsed().as_nanos();
        assert_eq!(
            status.report.accounted(),
            variants as u64,
            "service must account every variant"
        );
        assert_eq!(
            status.best().expect("a feasible optimum exists").cost,
            serial_best,
            "service optimum must match the serial sweep"
        );
        rows.push(ExplorationRow {
            workers,
            service_ns,
            throughput_per_s: variants as f64 / (service_ns as f64 / 1e9),
        });
    }

    ExplorationSection {
        interfaces,
        variants,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_flatten_eval_ns,
        rows,
    }
}

struct GraphSection {
    processes: usize,
    channels: usize,
    btreemap_clone_ns: u128,
    slab_clone_ns: u128,
    clone_from_ns: u128,
    merge_disjoint_ns: u128,
    flatten_at_ns: u128,
}

/// The seed generation's storage layout, faithfully reconstructed for the
/// clone-cost baseline: `BTreeMap` node/edge tables, heap-`String` node and
/// mode names, `BTreeMap` per-mode rate tables — everything this PR flattened
/// into slabs, `Sym`s and sorted `Vec`s. Holding the *same model content* in
/// both layouts isolates the storage change itself.
#[allow(dead_code)] // Fields exist to be *cloned* (the cost under measurement), not read.
mod seed_layout {
    use std::collections::{BTreeMap, HashMap};

    use spi_model::{
        BuildSymHasher, ChannelId, ChannelKind, Interval, ModeId, Predicate, ProcessId,
        ProductionSpec, SpiGraph, Sym,
    };

    #[derive(Clone)]
    pub struct SeedMode {
        pub name: String,
        pub latency: Interval,
        pub consumption: BTreeMap<ChannelId, Interval>,
        pub production: BTreeMap<ChannelId, ProductionSpec>,
    }

    /// The seed's activation rule: a heap-`String` name (now a `Sym`).
    #[derive(Clone)]
    pub struct SeedRule {
        pub name: String,
        pub predicate: Predicate,
        pub mode: ModeId,
    }

    #[derive(Clone)]
    pub struct SeedProcess {
        pub name: String,
        pub modes: Vec<SeedMode>,
        pub activation: Vec<SeedRule>,
        pub is_virtual: bool,
    }

    #[derive(Clone)]
    pub struct SeedChannel {
        pub name: String,
        pub kind: ChannelKind,
        pub capacity: Option<usize>,
    }

    #[derive(Clone)]
    pub struct SeedGraph {
        pub processes: BTreeMap<ProcessId, SeedProcess>,
        pub channels: BTreeMap<ChannelId, SeedChannel>,
        pub writers: BTreeMap<ChannelId, ProcessId>,
        pub readers: BTreeMap<ChannelId, ProcessId>,
        pub process_names: HashMap<Sym, ProcessId, BuildSymHasher>,
        pub channel_names: HashMap<Sym, ChannelId, BuildSymHasher>,
    }

    pub fn of(graph: &SpiGraph) -> SeedGraph {
        SeedGraph {
            processes: graph
                .processes()
                .map(|p| {
                    (
                        p.id(),
                        SeedProcess {
                            name: p.name().to_string(),
                            modes: p
                                .modes()
                                .iter()
                                .map(|m| SeedMode {
                                    name: m.name().to_string(),
                                    latency: m.latency(),
                                    consumption: m.consumptions().collect(),
                                    production: m
                                        .productions()
                                        .map(|(c, s)| (c, s.clone()))
                                        .collect(),
                                })
                                .collect(),
                            activation: p
                                .activation()
                                .rules()
                                .iter()
                                .map(|rule| SeedRule {
                                    name: rule.name.as_str().to_string(),
                                    predicate: rule.predicate.clone(),
                                    mode: rule.mode,
                                })
                                .collect(),
                            is_virtual: p.is_virtual(),
                        },
                    )
                })
                .collect(),
            channels: graph
                .channels()
                .map(|c| {
                    (
                        c.id(),
                        SeedChannel {
                            name: c.name().to_string(),
                            kind: c.kind(),
                            capacity: c.capacity(),
                        },
                    )
                })
                .collect(),
            writers: graph
                .channel_ids()
                .into_iter()
                .filter_map(|c| graph.writer_of(c).map(|p| (c, p)))
                .collect(),
            readers: graph
                .channel_ids()
                .into_iter()
                .filter_map(|c| graph.reader_of(c).map(|p| (c, p)))
                .collect(),
            process_names: graph
                .processes()
                .map(|p| (Sym::intern(p.name()), p.id()))
                .collect(),
            channel_names: graph
                .channels()
                .map(|c| (Sym::intern(c.name()), c.id()))
                .collect(),
        }
    }
}

/// Times the graph-storage primitives the Flattener pays per enumerated
/// variant — skeleton `clone`/`clone_from` and the `merge_disjoint` splice —
/// plus the composite `flatten_at` service entry point, and compares the slab
/// `clone` against the same model content held in the seed's storage layout
/// (see [`seed_layout`]). CI gates the slab clone staying ≥1.5× faster than
/// that baseline.
fn measure_graph(interfaces: usize) -> GraphSection {
    const RUNS: usize = 9;
    const SAMPLES: usize = 512;

    let system = scaling_system(interfaces, 2).expect("scaling system builds");
    let flattener = Flattener::new(&system).expect("flattener builds");
    let (_, graph) = flattener.flatten_at(0).expect("variant 0 flattens");

    // The two clone costs are measured **paired**: each round times the seed
    // layout and the slab back to back and records that round's ratio. CI
    // gates on the ratio, and pairing makes it robust against frequency
    // scaling / CPU-steal drift on shared runners — whatever slows one side
    // of a round slows the other, where two independently-taken medians
    // could land in differently-loaded moments.
    let seed = seed_layout::of(&graph);
    let mut rounds: Vec<(u128, u128)> = (0..RUNS)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..SAMPLES {
                std::hint::black_box(seed.clone());
            }
            let seed_ns = started.elapsed().as_nanos() / SAMPLES as u128;
            let started = Instant::now();
            for _ in 0..SAMPLES {
                std::hint::black_box(graph.clone());
            }
            let slab_ns = started.elapsed().as_nanos() / SAMPLES as u128;
            (seed_ns, slab_ns)
        })
        .collect();
    rounds.sort_by(|a, b| {
        let ratio_a = a.0 as f64 / a.1.max(1) as f64;
        let ratio_b = b.0 as f64 / b.1.max(1) as f64;
        ratio_a.total_cmp(&ratio_b)
    });
    let (btreemap_clone_ns, slab_clone_ns) = rounds[rounds.len() / 2];

    let skeleton = flattener.skeleton();
    let mut scratch = SpiGraph::new("");
    let clone_from_ns = median_ns(RUNS, || {
        let mut checksum = 0u64;
        for _ in 0..SAMPLES {
            scratch.clone_from(skeleton);
            checksum += scratch.process_count() as u64;
        }
        checksum
    }) / SAMPLES as u128;

    // A name-disjoint guest (the role a pre-renamed cluster plays), spliced
    // into a fresh skeleton copy per iteration; only the splice is timed.
    let mut guest = SpiGraph::new("guest");
    guest
        .merge(&graph, "bench-guest/")
        .expect("prefixed names cannot collide");
    let mut merge_samples: Vec<u128> = (0..RUNS)
        .map(|_| {
            let mut total = 0u128;
            for _ in 0..SAMPLES {
                scratch.clone_from(skeleton);
                let started = Instant::now();
                let map = scratch.merge_disjoint(&guest);
                total += started.elapsed().as_nanos();
                std::hint::black_box(map.processes.len());
            }
            total / SAMPLES as u128
        })
        .collect();
    merge_samples.sort_unstable();
    let merge_disjoint_ns = merge_samples[merge_samples.len() / 2];

    let combinations = flattener.space().count();
    let stride = (combinations / 64).max(1);
    let flatten_at_ns = median_ns(RUNS, || {
        (0..combinations)
            .step_by(stride)
            .take(64)
            .map(|index| {
                let (_, flat) = flattener.flatten_at(index).expect("in-range index");
                flat.process_count() as u64
            })
            .sum::<u64>()
    }) / 64;

    GraphSection {
        processes: graph.process_count(),
        channels: graph.channel_count(),
        btreemap_clone_ns,
        slab_clone_ns,
        clone_from_ns,
        merge_disjoint_ns,
        flatten_at_ns,
    }
}

struct DeltaSection {
    interfaces: usize,
    combinations: usize,
    full_ns_per_flatten: u128,
    delta_ns_per_flatten: u128,
    delta_speedup: f64,
}

/// Times a **full Gray-order walk** of the variant space two ways: rebuilding
/// every variant from the skeleton with `flatten_into` (the pre-delta hot
/// path) vs patching the previous graph with `DeltaFlattener` (truncate to
/// the changed axis's watermark, re-splice the suffix). Same visit order,
/// same graphs — before anything is timed, every rank's patched graph is
/// asserted equal to a from-scratch `flatten_at`. CI gates `delta_speedup`.
fn measure_delta(interfaces: usize) -> DeltaSection {
    const RUNS: usize = 5;

    let system = scaling_system(interfaces, 2).expect("scaling system builds");
    let flattener = Flattener::new(&system).expect("flattener builds");
    let space = flattener.space();
    let combinations = space.count();

    // Untimed verification pass: bit-identity on every rank of the walk.
    {
        let mut delta = DeltaFlattener::new(&flattener);
        for rank in 0..combinations {
            let (index, patched) = delta.flatten_gray_rank(rank).expect("rank in range");
            let (_, full) = flattener.flatten_at(index).expect("index in range");
            assert_eq!(
                patched, &full,
                "delta flatten must be bit-identical at rank {rank}"
            );
        }
    }

    let full_ns = median_ns(RUNS, || {
        let mut scratch = SpiGraph::new("");
        let mut checksum = 0u64;
        for (index, _changed, choice) in space.choices_delta_iter() {
            flattener
                .flatten_into(&choice, &mut scratch)
                .expect("flatten succeeds");
            checksum += scratch.process_count() as u64 + index as u64;
        }
        checksum
    }) / combinations as u128;

    let delta_ns = median_ns(RUNS, || {
        let mut delta = DeltaFlattener::new(&flattener);
        let mut checksum = 0u64;
        for rank in 0..combinations {
            let (index, graph) = delta.flatten_gray_rank(rank).expect("rank in range");
            checksum += graph.process_count() as u64 + index as u64;
        }
        checksum
    }) / combinations as u128;

    DeltaSection {
        interfaces,
        combinations,
        full_ns_per_flatten: full_ns,
        delta_ns_per_flatten: delta_ns,
        delta_speedup: full_ns as f64 / delta_ns.max(1) as f64,
    }
}

struct StoreSection {
    variants: usize,
    cold_submit_ns: u128,
    warm_submit_ns: u128,
    recovery_ns: u128,
    cache_entries: usize,
    restored_jobs: usize,
}

/// Times the durable-store paths: a cold submit (fresh directory, full sweep,
/// WAL on), a restart (recovery time), and a warm submit (identical job →
/// cache hit, no worker evaluations). Panics if the warm result is not the
/// bit-identical optimum of the cold run or if any evaluation ran warm.
fn measure_store(interfaces: usize) -> StoreSection {
    use spi_model::json::JsonValue;

    let dir = std::env::temp_dir().join(format!(
        "spi-bench-store-{}-{interfaces}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let system = scaling_system(interfaces, 2).expect("scaling system builds");
    let variants = system.variant_space().count();
    let recipe = || {
        JsonValue::parse(&format!(
            r#"{{"system":{{"scaling":{{"interfaces":{interfaces},"clusters":2}}}}}}"#
        ))
        .expect("recipe parses")
    };
    let spec = || JobSpec {
        name: "store-baseline".to_string(),
        shard_count: 16,
        top_k: 8,
        ..JobSpec::default()
    };
    let durable_config = || ServiceConfig {
        store_dir: Some(dir.clone()),
        ..ServiceConfig::with_workers(4)
    };

    // Cold: fresh directory, every variant evaluated, all of it WAL-logged.
    let cold_best;
    let cold_submit_ns;
    {
        let service = ExplorationService::try_start(durable_config()).expect("store opens");
        let started = Instant::now();
        let job = service
            .submit_with_recipe(
                &system,
                spec(),
                Arc::new(PartitionEvaluator::default()),
                Some(recipe()),
            )
            .expect("cold job submits");
        let status = service.wait(job).expect("cold job completes");
        cold_submit_ns = started.elapsed().as_nanos();
        assert!(!status.cache_hit, "a fresh directory cannot hit the cache");
        assert_eq!(status.report.accounted(), variants as u64);
        cold_best = status.best().expect("feasible optimum").clone();
    }

    // Restart: recovery replays the WAL and restores the result cache.
    let recovery_started = Instant::now();
    let service = ExplorationService::try_start(durable_config()).expect("store reopens");
    let recovery_ns = recovery_started.elapsed().as_nanos();
    let restored_jobs = service.restored().jobs;
    let cache_entries = service.restored().cache_entries;

    // Warm: the identical submission is served from the cache.
    let started = Instant::now();
    let job = service
        .submit_with_recipe(
            &system,
            spec(),
            Arc::new(PartitionEvaluator::default()),
            Some(recipe()),
        )
        .expect("warm job submits");
    let status = service.wait(job).expect("warm job completes");
    let warm_submit_ns = started.elapsed().as_nanos();
    assert!(
        status.cache_hit,
        "identical resubmission must hit the cache"
    );
    assert_eq!(
        status.report.evaluated, 0,
        "a cache hit must not touch the worker pool"
    );
    let warm_best = status.best().expect("cached optimum served");
    assert_eq!(
        (warm_best.index, warm_best.cost, &warm_best.detail),
        (cold_best.index, cold_best.cost, &cold_best.detail),
        "cached optimum must be bit-identical to the cold run"
    );
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);

    StoreSection {
        variants,
        cold_submit_ns,
        warm_submit_ns,
        recovery_ns,
        cache_entries,
        restored_jobs,
    }
}

struct ObsSection {
    interfaces: usize,
    variants: usize,
    rounds: usize,
    instrumented_ns: u128,
    stubbed_ns: u128,
    overhead_pct: f64,
    span_instrumented_ns: u128,
    span_stubbed_ns: u128,
    span_overhead_pct: f64,
}

/// Times identical 4-worker service runs with an observability plane
/// enabled vs its disabled stub (every record site behind a single `false`
/// branch): the metrics pair toggles `metrics_enabled` with spans off on
/// both sides, the span pair toggles `spans_enabled` with metrics on, so
/// each overhead is attributed to exactly one plane. Rounds are paired and
/// interleaved so frequency scaling and cache state drift hit both sides
/// equally; each overhead is the ratio of the two **medians** (robust
/// against per-round noise), clamped at zero.
fn measure_obs(interfaces: usize) -> ObsSection {
    let system = scaling_system(interfaces, 2).expect("scaling system builds");
    let variants = system.variant_space().count();
    let evaluator = PartitionEvaluator::default();
    const ROUNDS: usize = 7;

    let run = |metrics_enabled: bool, spans_enabled: bool| -> u128 {
        let service = ExplorationService::start(ServiceConfig {
            workers: 4,
            metrics_enabled,
            spans_enabled,
            watchdog_interval: None,
            ..ServiceConfig::default()
        });
        let started = Instant::now();
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: "obs-overhead".to_string(),
                    shard_count: 16,
                    top_k: 8,
                    use_cache: false,
                    ..JobSpec::default()
                },
                Arc::new(evaluator.clone()),
            )
            .expect("job submits");
        let status = service.wait(job).expect("job completes");
        assert_eq!(
            status.report.accounted(),
            variants as u64,
            "both sides must do identical work"
        );
        started.elapsed().as_nanos()
    };

    let paired = |on: &dyn Fn() -> u128, off: &dyn Fn() -> u128| -> (u128, u128, f64) {
        // One unrecorded warm-up pair populates caches and spawns threads.
        on();
        off();
        let mut instrumented = Vec::new();
        let mut stubbed = Vec::new();
        for _ in 0..ROUNDS {
            instrumented.push(on());
            stubbed.push(off());
        }
        instrumented.sort_unstable();
        stubbed.sort_unstable();
        let median_on = instrumented[ROUNDS / 2];
        let median_off = stubbed[ROUNDS / 2];
        let pct = (median_on as f64 / median_off.max(1) as f64 - 1.0).max(0.0) * 100.0;
        (median_on, median_off, pct)
    };

    let (instrumented_ns, stubbed_ns, overhead_pct) =
        paired(&|| run(true, false), &|| run(false, false));
    let (span_instrumented_ns, span_stubbed_ns, span_overhead_pct) =
        paired(&|| run(true, true), &|| run(true, false));
    ObsSection {
        interfaces,
        variants,
        rounds: ROUNDS,
        instrumented_ns,
        stubbed_ns,
        overhead_pct,
        span_instrumented_ns,
        span_stubbed_ns,
        span_overhead_pct,
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_variant_space.json".to_string());

    let mut rows = Vec::new();
    for interfaces in [4usize, 8, 12, 16, 20] {
        eprintln!("measuring {interfaces} interfaces (2^{interfaces} combinations)...");
        rows.push(measure(interfaces));
    }

    let mut partition_rows = Vec::new();
    for interfaces in [3usize, 5, 7] {
        let tasks = 4 + 2 * interfaces;
        eprintln!("measuring partition search at {tasks} tasks (2^{tasks} masks)...");
        partition_rows.push(measure_partition(interfaces));
    }

    eprintln!("measuring graph storage: slab vs BTreeMap clone, merge_disjoint, flatten_at...");
    let graph = measure_graph(12);

    eprintln!("measuring delta flattening: full Gray walk, rebuild vs patch...");
    let delta = measure_delta(12);

    eprintln!("measuring exploration service throughput at 1/4/8 workers...");
    let exploration = measure_exploration(12);

    eprintln!("measuring durable store: cold vs warm-cache submit, recovery...");
    let store = measure_store(8);

    eprintln!("measuring observability overhead: metrics plane, then span recorder, on vs off...");
    let obs = measure_obs(12);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"variant_space\",\n");
    json.push_str("  \"scenario\": \"scaling_system(k, 2): k interfaces x 2 clusters\",\n");
    json.push_str(&format!(
        "  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    json.push_str("  \"units\": \"nanoseconds (median of 5 runs)\",\n");
    json.push_str("  \"results\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let speedup = row.clone_per_variant_ns_per_flatten as f64
            / (row.flattener_ns_per_flatten.max(1)) as f64;
        json.push_str("    {\n");
        json.push_str(&format!("      \"interfaces\": {},\n", row.interfaces));
        json.push_str(&format!("      \"combinations\": {},\n", row.combinations));
        match row.eager_enumerate_ns {
            Some(ns) => json.push_str(&format!("      \"eager_enumerate_ns\": {ns},\n")),
            None => json.push_str("      \"eager_enumerate_ns\": null,\n"),
        }
        json.push_str(&format!(
            "      \"lazy_enumerate_ns\": {},\n",
            row.lazy_enumerate_ns
        ));
        json.push_str(&format!(
            "      \"flatten_sample\": {},\n",
            row.flatten_sample
        ));
        json.push_str(&format!(
            "      \"clone_per_variant_ns_per_flatten\": {},\n",
            row.clone_per_variant_ns_per_flatten
        ));
        json.push_str(&format!(
            "      \"flattener_ns_per_flatten\": {},\n",
            row.flattener_ns_per_flatten
        ));
        json.push_str(&format!("      \"flatten_speedup\": {speedup:.2}\n"));
        json.push_str(if index + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"partition\": [\n");
    for (index, row) in partition_rows.iter().enumerate() {
        let speedup = row.exhaustive_ns as f64 / (row.branch_and_bound_ns.max(1)) as f64;
        json.push_str("    {\n");
        json.push_str(&format!("      \"tasks\": {},\n", row.tasks));
        json.push_str(&format!("      \"applications\": {},\n", row.applications));
        json.push_str(&format!("      \"masks\": {},\n", row.masks));
        json.push_str(&format!(
            "      \"exhaustive_ns\": {},\n",
            row.exhaustive_ns
        ));
        json.push_str(&format!(
            "      \"exhaustive_evaluated\": {},\n",
            row.exhaustive_evaluated
        ));
        json.push_str(&format!(
            "      \"exhaustive_pruned\": {},\n",
            row.exhaustive_pruned
        ));
        json.push_str(&format!(
            "      \"branch_and_bound_ns\": {},\n",
            row.branch_and_bound_ns
        ));
        json.push_str(&format!(
            "      \"branch_and_bound_evaluated\": {},\n",
            row.branch_and_bound_evaluated
        ));
        json.push_str(&format!(
            "      \"branch_and_bound_pruned\": {},\n",
            row.branch_and_bound_pruned
        ));
        json.push_str(&format!("      \"search_speedup\": {speedup:.2},\n"));
        json.push_str(&format!("      \"optimum_total\": {}\n", row.optimum_total));
        json.push_str(if index + 1 == partition_rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"graph\": {\n");
    json.push_str(
        "    \"scenario\": \"scaling_system(12, 2) flattened graph: slab storage vs the seed BTreeMap layout\",\n",
    );
    json.push_str(&format!("    \"processes\": {},\n", graph.processes));
    json.push_str(&format!("    \"channels\": {},\n", graph.channels));
    json.push_str(&format!(
        "    \"btreemap_clone_ns\": {},\n",
        graph.btreemap_clone_ns
    ));
    json.push_str(&format!(
        "    \"slab_clone_ns\": {},\n",
        graph.slab_clone_ns
    ));
    json.push_str(&format!(
        "    \"clone_speedup\": {:.2},\n",
        graph.btreemap_clone_ns as f64 / graph.slab_clone_ns.max(1) as f64
    ));
    json.push_str(&format!(
        "    \"clone_from_ns\": {},\n",
        graph.clone_from_ns
    ));
    json.push_str(&format!(
        "    \"merge_disjoint_ns\": {},\n",
        graph.merge_disjoint_ns
    ));
    json.push_str(&format!("    \"flatten_at_ns\": {}\n", graph.flatten_at_ns));
    json.push_str("  },\n");
    json.push_str("  \"delta\": {\n");
    json.push_str(&format!(
        "    \"scenario\": \"scaling_system({}, 2) full Gray-order walk: flatten_into rebuild vs DeltaFlattener patch\",\n",
        delta.interfaces
    ));
    json.push_str(&format!("    \"interfaces\": {},\n", delta.interfaces));
    json.push_str(&format!("    \"combinations\": {},\n", delta.combinations));
    json.push_str(&format!(
        "    \"full_ns_per_flatten\": {},\n",
        delta.full_ns_per_flatten
    ));
    json.push_str(&format!(
        "    \"delta_ns_per_flatten\": {},\n",
        delta.delta_ns_per_flatten
    ));
    json.push_str(&format!(
        "    \"delta_speedup\": {:.2}\n",
        delta.delta_speedup
    ));
    json.push_str("  },\n");
    json.push_str("  \"exploration\": {\n");
    json.push_str(&format!(
        "    \"scenario\": \"scaling_system({}, 2) through PartitionEvaluator (hashed params, auto strategy)\",\n",
        exploration.interfaces
    ));
    json.push_str(&format!("    \"variants\": {},\n", exploration.variants));
    json.push_str(&format!(
        "    \"available_parallelism\": {},\n",
        exploration.available_parallelism
    ));
    json.push_str(&format!(
        "    \"serial_flatten_eval_ns\": {},\n",
        exploration.serial_flatten_eval_ns
    ));
    json.push_str("    \"workers\": [\n");
    for (index, row) in exploration.rows.iter().enumerate() {
        let speedup = exploration.serial_flatten_eval_ns as f64 / (row.service_ns.max(1)) as f64;
        json.push_str("      {\n");
        json.push_str(&format!("        \"workers\": {},\n", row.workers));
        json.push_str(&format!("        \"service_ns\": {},\n", row.service_ns));
        json.push_str(&format!(
            "        \"throughput_per_s\": {:.0},\n",
            row.throughput_per_s
        ));
        json.push_str(&format!("        \"speedup_vs_serial\": {speedup:.2}\n"));
        json.push_str(if index + 1 == exploration.rows.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"store\": {\n");
    json.push_str(
        "    \"scenario\": \"scaling_system(8, 2) durable submit: cold sweep vs warm cache hit\",\n",
    );
    json.push_str(&format!("    \"variants\": {},\n", store.variants));
    json.push_str(&format!(
        "    \"cold_submit_ns\": {},\n",
        store.cold_submit_ns
    ));
    json.push_str(&format!(
        "    \"warm_submit_ns\": {},\n",
        store.warm_submit_ns
    ));
    json.push_str(&format!(
        "    \"warm_speedup\": {:.2},\n",
        store.cold_submit_ns as f64 / store.warm_submit_ns.max(1) as f64
    ));
    json.push_str(&format!("    \"recovery_ns\": {},\n", store.recovery_ns));
    json.push_str(&format!(
        "    \"cache_entries\": {},\n",
        store.cache_entries
    ));
    json.push_str(&format!("    \"restored_jobs\": {}\n", store.restored_jobs));
    json.push_str("  },\n");
    json.push_str("  \"obs\": {\n");
    json.push_str(&format!(
        "    \"scenario\": \"scaling_system({}, 2), 4 workers: metrics plane then span recorder enabled vs disabled, median of {} paired rounds each\",\n",
        obs.interfaces, obs.rounds
    ));
    json.push_str(&format!("    \"variants\": {},\n", obs.variants));
    json.push_str(&format!(
        "    \"instrumented_ns\": {},\n",
        obs.instrumented_ns
    ));
    json.push_str(&format!("    \"stubbed_ns\": {},\n", obs.stubbed_ns));
    json.push_str(&format!("    \"overhead_pct\": {:.2},\n", obs.overhead_pct));
    json.push_str(&format!(
        "    \"span_instrumented_ns\": {},\n",
        obs.span_instrumented_ns
    ));
    json.push_str(&format!(
        "    \"span_stubbed_ns\": {},\n",
        obs.span_stubbed_ns
    ));
    json.push_str(&format!(
        "    \"span_overhead_pct\": {:.2}\n",
        obs.span_overhead_pct
    ));
    json.push_str("  }\n}\n");

    std::fs::write(&output, &json).expect("baseline file is writable");
    println!("{json}");
    eprintln!("wrote {output}");
}
