//! Experiment driver: regenerates every table and figure of the paper in textual form.
//!
//! Usage: `cargo run -p spi-bench --bin experiments [-- <experiment>]`
//! where `<experiment>` is one of `table1`, `figure1`, `figure2`, `figure3`, `figure4`,
//! `design_time`, `baselines`, `reconfiguration`, or `all` (default).

use spi_bench::{compare_flows, design_time_scaling, reproduce_table1};
use spi_sim::{SimConfig, Simulator};
use spi_variants::ExtractionPolicy;
use spi_workloads::{
    figure1, figure2_system, figure3_system, run_video_scenario, tv_problem, VideoParams,
    VideoScenario,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";

    if all || which == "table1" {
        table1_experiment()?;
    }
    if all || which == "figure1" {
        figure1_experiment()?;
    }
    if all || which == "figure2" {
        figure2_experiment()?;
    }
    if all || which == "figure3" {
        figure3_experiment()?;
    }
    if all || which == "figure4" {
        figure4_experiment()?;
    }
    if all || which == "design_time" {
        design_time_experiment()?;
    }
    if all || which == "baselines" {
        baselines_experiment()?;
    }
    if all || which == "reconfiguration" {
        reconfiguration_experiment()?;
    }
    Ok(())
}

fn heading(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn table1_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E1 / Table 1 — System Cost (paper: 34 / 38 / 57 / 41, time 67 / 73 / 140 / 118)");
    let table = reproduce_table1()?;
    println!("{table}");
    Ok(())
}

fn figure1_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E2 / Figure 1 — SPI example graph");
    let graph = figure1()?;
    println!("{graph}");
    let p2 = graph.process_by_name("p2").expect("p2 exists");
    println!(
        "p2 parameter hulls: latency {}, consumption(c1) {}, production(c2) {}",
        p2.latency_hull()?,
        p2.consumption_hull(graph.channel_by_name("c1").unwrap().id()),
        p2.production_hull(graph.channel_by_name("c2").unwrap().id()),
    );
    println!("activation function of p2:\n{}", p2.activation());
    let report = Simulator::new(graph, SimConfig::with_horizon(100).max_executions(5)).run()?;
    println!(
        "simulation: {} executions, makespan {}",
        report.stats.total_executions(),
        report.stats.makespan
    );
    Ok(())
}

fn figure2_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E3 / Figure 2 — system with two function variants");
    let system = figure2_system()?;
    println!("{system}\n");
    for (choice, graph) in system.flatten_all()? {
        println!(
            "{choice}: {} processes, {} channels (validates: {})",
            graph.process_count(),
            graph.channel_count(),
            graph.validate().is_ok()
        );
    }
    Ok(())
}

fn figure3_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E4 / Figure 3 — run-time variant selection");
    for selected in ["V1", "V2"] {
        let system = figure3_system(selected)?;
        let attachment = system.attachment_by_name("interface1").unwrap();
        let abstracted = system.abstract_interface(attachment, ExtractionPolicy::Coarse)?;
        let report = Simulator::new(
            abstracted.graph.clone(),
            SimConfig::with_horizon(300).max_executions(10),
        )
        .with_configurations(abstracted.configurations.clone())
        .run()?;
        println!(
            "user selects {selected}: abstracted process executed {} times, configuration latency {}",
            report.stats.executions_of(abstracted.process),
            report.stats.reconfiguration_latency
        );
        println!("{}", abstracted.configuration_set());
    }
    Ok(())
}

fn figure4_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E5 / Figure 4 — reconfigurable video system");
    let params = VideoParams::default();
    for (label, scenario) in [
        (
            "steady state (no requests)",
            VideoScenario {
                requests: vec![],
                ..Default::default()
            },
        ),
        ("two reconfiguration requests", VideoScenario::default()),
    ] {
        let outcome = run_video_scenario(&params, &scenario)?;
        println!(
            "{label}: frames in {}, fresh {}, repeated {}, dropped at input {}, \
             reconfigurations {}, reconfiguration latency {}",
            outcome.frames_in,
            outcome.fresh_frames,
            outcome.repeated_frames,
            outcome.dropped_at_input,
            outcome.reconfigurations,
            outcome.reconfiguration_latency
        );
    }
    Ok(())
}

fn design_time_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E6 / Section 5 — design-time reduction vs. number of variants");
    println!(
        "{:>16} {:>14} {:>10} {:>10}",
        "variants/set", "independent", "joint", "saving %"
    );
    for (clusters, independent, joint) in design_time_scaling(&[2, 3, 4, 6, 8, 12])? {
        println!(
            "{:>16} {:>14} {:>10} {:>9.1}",
            clusters,
            independent,
            joint,
            100.0 * (independent - joint) as f64 / independent as f64
        );
    }
    Ok(())
}

fn baselines_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E7 — variant-aware synthesis vs. prior-work baselines");
    for (label, problem) in [
        ("Table 1 system", spi_workloads::table1_problem()?),
        ("multi-standard TV", tv_problem()?),
    ] {
        println!("\n{label}:");
        println!("{:<40} {:>8} {:>12}", "flow", "cost", "design time");
        for (strategy, cost, time) in compare_flows(&problem)? {
            println!("{strategy:<40} {cost:>8} {time:>12}");
        }
    }
    Ok(())
}

fn reconfiguration_experiment() -> Result<(), Box<dyn std::error::Error>> {
    heading("E8 — reconfiguration latency sweep on the video system");
    println!(
        "{:>18} {:>8} {:>10} {:>18}",
        "t_conf (both)", "fresh", "repeated", "dropped at input"
    );
    for t_conf in [10u64, 30, 60, 120] {
        let params = VideoParams {
            p1_reconfiguration: (t_conf, t_conf),
            p2_reconfiguration: (t_conf, t_conf),
            ..Default::default()
        };
        let scenario = VideoScenario {
            resume_delay: t_conf * 2 + 20,
            ..Default::default()
        };
        let outcome = run_video_scenario(&params, &scenario)?;
        println!(
            "{:>18} {:>8} {:>10} {:>18}",
            t_conf, outcome.fresh_frames, outcome.repeated_frames, outcome.dropped_at_input
        );
    }
    Ok(())
}
