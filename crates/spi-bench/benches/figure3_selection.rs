//! E4 / Figure 3: benchmark run-time variant selection — abstraction of the interface
//! into a configured process (both extraction policies) and simulation of the selection.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spi_sim::{SimConfig, Simulator};
use spi_variants::ExtractionPolicy;
use spi_workloads::figure3_system;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3_selection");
    group.sample_size(30);

    let system = figure3_system("V1").unwrap();
    let attachment = system.attachment_by_name("interface1").unwrap();

    group.bench_function("abstract_coarse", |b| {
        b.iter(|| {
            black_box(&system)
                .abstract_interface(attachment, ExtractionPolicy::Coarse)
                .unwrap()
        })
    });
    group.bench_function("abstract_per_entry_mode", |b| {
        b.iter(|| {
            black_box(&system)
                .abstract_interface(attachment, ExtractionPolicy::PerEntryMode)
                .unwrap()
        })
    });

    let abstracted = system
        .abstract_interface(attachment, ExtractionPolicy::Coarse)
        .unwrap();
    group.bench_function("simulate_selection", |b| {
        b.iter(|| {
            Simulator::new(
                abstracted.graph.clone(),
                SimConfig::with_horizon(300)
                    .max_executions(10)
                    .without_trace(),
            )
            .with_configurations(abstracted.configurations.clone())
            .run()
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
