//! E2 / Figure 1: benchmark model construction, interval analysis and simulation of the
//! introductory SPI example.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spi_model::{GraphAnalysis, RateConsistency};
use spi_sim::{SimConfig, Simulator};
use spi_workloads::figure1;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_model");
    group.sample_size(30);

    group.bench_function("build", |b| b.iter(|| figure1().unwrap()));

    let graph = figure1().unwrap();
    group.bench_function("structural_analysis", |b| {
        b.iter(|| GraphAnalysis::new(black_box(&graph)))
    });
    group.bench_function("rate_consistency", |b| {
        b.iter(|| RateConsistency::analyze(black_box(&graph)))
    });
    group.bench_function("simulate_5_firings", |b| {
        b.iter(|| {
            Simulator::new(
                graph.clone(),
                SimConfig::with_horizon(100)
                    .max_executions(5)
                    .without_trace(),
            )
            .run()
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
