//! E7: compare the variant-aware flow against the prior-work baselines (serialization
//! [6] and incremental synthesis [5]) on the Table 1 system and the multi-standard TV
//! scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spi_synth::{baseline, strategy, SynthesisProblem};
use spi_workloads::{table1_problem, tv_problem};

fn run_all(problem: &SynthesisProblem) -> (u64, u64, u64) {
    let joint = strategy::variant_aware(problem).unwrap().cost.total();
    let serialized = baseline::serialization(problem).unwrap().cost.total();
    let order: Vec<&str> = problem
        .applications()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    let incremental = baseline::incremental(problem, &order).unwrap().cost.total();
    (joint, serialized, incremental)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(15);

    for (label, problem) in [
        ("table1", table1_problem().unwrap()),
        ("tv", tv_problem().unwrap()),
    ] {
        group.bench_with_input(BenchmarkId::new("all_flows", label), &problem, |b, p| {
            b.iter(|| run_all(black_box(p)))
        });
        let (joint, serialized, incremental) = run_all(&problem);
        assert!(joint <= serialized);
        assert!(joint <= incremental);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
