//! Partition-search trajectory: the chunked exhaustive enumeration vs the
//! branch-and-bound search (both running over the dense-index `CompiledProblem`
//! layer) and the greedy heuristic, on synthetic problems of growing task count.
//!
//! The two exact strategies are asserted to return the identical optimum before any
//! measurement — the bench doubles as a coarse differential check in CI's bench
//! build.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spi_synth::partition::{optimize, FeasibilityMode, SearchStrategy};
use spi_workloads::{synthetic_problem, SyntheticParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_search");
    group.sample_size(10);

    // 4 + 2 * interfaces tasks: 10 and 14 keep the exhaustive side fast enough to
    // sample; the 18-task point lives in `variant_space_baseline` where it is
    // measured once per run instead of per criterion sample.
    for interfaces in [3usize, 5] {
        let problem = synthetic_problem(&SyntheticParams {
            common_tasks: 4,
            interfaces,
            clusters_per_interface: 2,
            cluster_depth: 1,
            seed: 42,
        })
        .unwrap();
        let tasks = problem.task_count();
        let mode = FeasibilityMode::PerApplication;

        let exhaustive = optimize(&problem, mode, SearchStrategy::Exhaustive).unwrap();
        let bnb = optimize(&problem, mode, SearchStrategy::BranchAndBound).unwrap();
        assert_eq!(exhaustive.mapping, bnb.mapping);
        assert_eq!(exhaustive.cost, bnb.cost);
        assert!(
            bnb.evaluated_candidates < exhaustive.evaluated_candidates,
            "branch-and-bound must visit fewer nodes than the enumeration"
        );

        group.bench_with_input(
            BenchmarkId::new("exhaustive", tasks),
            &problem,
            |b, problem| {
                b.iter(|| {
                    optimize(black_box(problem), mode, SearchStrategy::Exhaustive)
                        .unwrap()
                        .cost
                        .total()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", tasks),
            &problem,
            |b, problem| {
                b.iter(|| {
                    optimize(black_box(problem), mode, SearchStrategy::BranchAndBound)
                        .unwrap()
                        .cost
                        .total()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy", tasks), &problem, |b, problem| {
            b.iter(|| {
                optimize(black_box(problem), mode, SearchStrategy::Greedy)
                    .unwrap()
                    .cost
                    .total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
