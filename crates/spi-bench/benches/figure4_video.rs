//! E5 / Figure 4: benchmark the reconfigurable video system — steady-state streaming and
//! the dynamic reconfiguration scenario.

use criterion::{criterion_group, criterion_main, Criterion};

use spi_workloads::{run_video_scenario, video_system, VideoParams, VideoScenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_video");
    group.sample_size(15);

    group.bench_function("build_model", |b| {
        b.iter(|| video_system(&VideoParams::default()).unwrap())
    });

    let steady = VideoScenario {
        requests: vec![],
        ..Default::default()
    };
    group.bench_function("simulate_steady_state_60_frames", |b| {
        b.iter(|| run_video_scenario(&VideoParams::default(), &steady).unwrap())
    });

    let dynamic = VideoScenario::default();
    group.bench_function("simulate_two_reconfigurations", |b| {
        b.iter(|| run_video_scenario(&VideoParams::default(), &dynamic).unwrap())
    });
    group.finish();

    // Sanity: the dynamic run really reconfigures all four (stage, request) pairs.
    let outcome = run_video_scenario(&VideoParams::default(), &dynamic).unwrap();
    assert_eq!(outcome.reconfigurations, 4);
}

criterion_group!(benches, bench);
criterion_main!(benches);
