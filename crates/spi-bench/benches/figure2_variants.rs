//! E3 / Figure 2: benchmark the variant representation itself — building the two-variant
//! system, flattening it into its applications, and deriving the synthesis problem.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spi_synth::from_variant_system;
use spi_workloads::{figure2_system, table1_params};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_variants");
    group.sample_size(30);

    group.bench_function("build_system", |b| b.iter(|| figure2_system().unwrap()));

    let system = figure2_system().unwrap();
    group.bench_function("validate", |b| b.iter(|| black_box(&system).validate().unwrap()));
    group.bench_function("flatten_all", |b| {
        b.iter(|| black_box(&system).flatten_all().unwrap())
    });
    group.bench_function("bridge_to_synthesis_problem", |b| {
        b.iter(|| from_variant_system(black_box(&system), 15, table1_params).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
