//! E3 / Figure 2: benchmark the variant representation itself — building the two-variant
//! system, flattening it into its applications (legacy clone-per-variant path vs the
//! reusable [`Flattener`]), and deriving the synthesis problem.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spi_model::SpiGraph;
use spi_synth::from_variant_system;
use spi_variants::Flattener;
use spi_workloads::{figure2_system, table1_params};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_variants");
    group.sample_size(30);

    group.bench_function("build_system", |b| b.iter(|| figure2_system().unwrap()));

    let system = figure2_system().unwrap();
    group.bench_function("validate", |b| {
        b.iter(|| black_box(&system).validate().unwrap())
    });

    // The legacy path: clone the common graph, re-resolve names and re-validate per
    // variant. Kept measurable as the baseline the Flattener is compared against.
    group.bench_function("flatten_clone_per_variant", |b| {
        b.iter(|| {
            let system = black_box(&system);
            system
                .variant_space()
                .choices_iter()
                .map(|choice| system.flatten(&choice).unwrap())
                .collect::<Vec<_>>()
        })
    });
    // The current `flatten_all`: one Flattener, lazy enumeration.
    group.bench_function("flatten_all", |b| {
        b.iter(|| black_box(&system).flatten_all().unwrap())
    });
    // The allocation-reusing hot loop: one Flattener, one scratch graph.
    let flattener = Flattener::new(&system).unwrap();
    group.bench_function("flattener_flatten_into", |b| {
        let mut scratch = SpiGraph::new("");
        b.iter(|| {
            for choice in flattener.space().choices_iter() {
                flattener
                    .flatten_into(black_box(&choice), &mut scratch)
                    .unwrap();
            }
        })
    });

    group.bench_function("bridge_to_synthesis_problem", |b| {
        b.iter(|| from_variant_system(black_box(&system), 15, table1_params).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
