//! E8: reconfiguration semantics — sweep the reconfiguration latency of the video
//! chain's stages and measure the simulation cost plus the effect on output quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spi_workloads::{run_video_scenario, VideoParams, VideoScenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfiguration_latency");
    group.sample_size(15);

    for t_conf in [10u64, 60, 120] {
        let params = VideoParams {
            p1_reconfiguration: (t_conf, t_conf),
            p2_reconfiguration: (t_conf, t_conf),
            ..Default::default()
        };
        let scenario = VideoScenario {
            resume_delay: t_conf * 2 + 20,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("video_with_t_conf", t_conf),
            &(params, scenario),
            |b, (params, scenario)| b.iter(|| run_video_scenario(params, scenario).unwrap()),
        );
    }
    group.finish();

    // Sanity: longer reconfiguration windows degrade more frames.
    let outcome = |t_conf: u64| {
        run_video_scenario(
            &VideoParams {
                p1_reconfiguration: (t_conf, t_conf),
                p2_reconfiguration: (t_conf, t_conf),
                ..Default::default()
            },
            &VideoScenario {
                resume_delay: t_conf * 2 + 20,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let fast = outcome(10);
    let slow = outcome(120);
    assert!(
        slow.repeated_frames + slow.dropped_at_input
            >= fast.repeated_frames + fast.dropped_at_input
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
