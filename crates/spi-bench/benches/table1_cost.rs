//! E1 / Table 1: benchmark the four synthesis flows on the calibrated two-variant
//! design scenario and verify the reproduced cost figures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use spi_synth::{baseline, strategy};
use spi_workloads::table1_problem;

fn bench(c: &mut Criterion) {
    let problem = table1_problem().expect("table 1 problem builds");
    let mut group = c.benchmark_group("table1_cost");
    group.sample_size(20);

    group.bench_function("independent", |b| {
        b.iter(|| strategy::independent(black_box(&problem)).unwrap())
    });
    group.bench_function("superposition", |b| {
        b.iter(|| strategy::superposition(black_box(&problem)).unwrap())
    });
    group.bench_function("variant_aware", |b| {
        b.iter(|| strategy::variant_aware(black_box(&problem)).unwrap())
    });
    group.bench_function("serialization_baseline", |b| {
        b.iter(|| baseline::serialization(black_box(&problem)).unwrap())
    });
    group.bench_function("full_table", |b| {
        b.iter(|| spi_synth::report::table1(black_box(&problem)).unwrap())
    });
    group.finish();

    // Sanity: the reproduced table keeps the paper's cost ordering.
    let table = spi_synth::report::table1(&problem).unwrap();
    assert_eq!(table.with_variants().unwrap().total, 41);
    assert_eq!(table.superposition().unwrap().total, 57);
}

criterion_group!(benches, bench);
criterion_main!(benches);
