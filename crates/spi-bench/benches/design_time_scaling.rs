//! E6: the design-time claim of Section 5 — benchmark the design-time accounting and the
//! joint optimization as the number of variants per set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spi_synth::{design_time, strategy};
use spi_workloads::{synthetic_problem, SyntheticParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_time_scaling");
    group.sample_size(15);

    for clusters in [2usize, 4, 8] {
        let problem = synthetic_problem(&SyntheticParams {
            clusters_per_interface: clusters,
            ..Default::default()
        })
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("design_time_models", clusters),
            &problem,
            |b, problem| {
                b.iter(|| {
                    (
                        design_time::independent(black_box(problem)).unwrap(),
                        design_time::joint(black_box(problem)),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("variant_aware_optimization", clusters),
            &problem,
            |b, problem| b.iter(|| strategy::variant_aware(black_box(problem)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
