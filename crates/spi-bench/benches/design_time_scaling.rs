//! E6: design-time scaling — the design-time accounting and joint optimization as the
//! number of variants per set grows, plus the variant-space machinery itself: eager vs
//! lazy enumeration and clone-per-variant vs [`Flattener`] flattening on the
//! many-interface scaling scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use spi_model::SpiGraph;
use spi_synth::{design_time, strategy};
use spi_variants::Flattener;
use spi_workloads::{scaling_system, synthetic_problem, SyntheticParams};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_time_scaling");
    group.sample_size(15);

    for clusters in [2usize, 4, 8] {
        let problem = synthetic_problem(&SyntheticParams {
            clusters_per_interface: clusters,
            ..Default::default()
        })
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("design_time_models", clusters),
            &problem,
            |b, problem| {
                b.iter(|| {
                    (
                        design_time::independent(black_box(problem)).unwrap(),
                        design_time::joint(black_box(problem)),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("variant_aware_optimization", clusters),
            &problem,
            |b, problem| b.iter(|| strategy::variant_aware(black_box(problem)).unwrap()),
        );
    }
    group.finish();

    // Variant-space enumeration: eager materialization vs the lazy iterator on
    // 2^k-combination spaces (interfaces = k, two clusters each). The eager path is
    // only measured while the full Vec is reasonable to hold.
    let mut group = c.benchmark_group("variant_space_enumeration");
    group.sample_size(10);
    for exponent in [4usize, 8, 12, 16] {
        let system = scaling_system(exponent, 2).unwrap();
        let space = system.variant_space();
        group.bench_with_input(
            BenchmarkId::new("eager_choices", 1usize << exponent),
            &space,
            |b, space| b.iter(|| black_box(space).choices().len()),
        );
        group.bench_with_input(
            BenchmarkId::new("lazy_choices_iter", 1usize << exponent),
            &space,
            |b, space| {
                b.iter(|| {
                    black_box(space)
                        .choices_iter()
                        .map(|c| c.len())
                        .sum::<usize>()
                })
            },
        );
    }
    // Beyond eager reach: lazy enumeration of a 2^20 space (count + strided sample).
    let system = scaling_system(20, 2).unwrap();
    let space = system.variant_space();
    group.bench_with_input(
        BenchmarkId::new("lazy_strided_sample_1024_of", 1usize << 20),
        &space,
        |b, space| {
            b.iter(|| {
                black_box(space)
                    .choices_iter()
                    .step_by(1 << 10)
                    .map(|c| c.len())
                    .sum::<usize>()
            })
        },
    );
    group.finish();

    // Flattening throughput on the scaling scenario: the legacy clone-per-variant
    // path vs the skeleton-reusing Flattener, over a fixed 64-variant strided shard.
    let mut group = c.benchmark_group("variant_space_flatten");
    group.sample_size(10);
    for interfaces in [4usize, 8, 12] {
        let system = scaling_system(interfaces, 2).unwrap();
        let space = system.variant_space();
        let stride = (space.count() / 64).max(1);
        group.bench_with_input(
            BenchmarkId::new("clone_per_variant_64", interfaces),
            &system,
            |b, system| {
                b.iter(|| {
                    system
                        .variant_space()
                        .choices_iter()
                        .step_by(stride)
                        .take(64)
                        .map(|choice| system.flatten(&choice).unwrap().process_count())
                        .sum::<usize>()
                })
            },
        );
        let flattener = Flattener::new(&system).unwrap();
        group.bench_with_input(
            BenchmarkId::new("flattener_64", interfaces),
            &flattener,
            |b, flattener| {
                let mut scratch = SpiGraph::new("");
                b.iter(|| {
                    let mut total = 0usize;
                    for choice in flattener.space().choices_iter().step_by(stride).take(64) {
                        flattener.flatten_into(&choice, &mut scratch).unwrap();
                        total += scratch.process_count();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
