//! Shared deterministic test utilities for the spi-repro workspace.
//!
//! Every property suite in the workspace drives its cases off the same
//! 64-bit LCG (the build environment has no crates.io access, so there is no
//! `proptest`; a seeded generator keeps failures reproducible with zero
//! dependencies). Historically each suite carried its own copy of the
//! generator; this crate is the single shared definition, used as a
//! dev-dependency everywhere and re-exported by `spi-chaos` so the chaos
//! harness and the unit suites share one seed discipline.
//!
//! The constants are Knuth's MMIX multiplier/increment, the same pair the
//! in-tree copies always used:
//!
//! ```text
//! state' = state * 6364136223846793005 + 1442695040888963407
//! ```
//!
//! Two entry points cover the two historical idioms without perturbing any
//! pinned sequence:
//!
//! * [`Lcg::new`] pre-mixes the seed through one LCG step (the `Cases::new`
//!   idiom) so small consecutive seeds diverge immediately;
//! * [`Lcg::from_state`] adopts a raw state verbatim (the `Lcg(seed)` tuple
//!   idiom of `delta_flatten.rs` / `histogram_oracle.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The multiplier of the shared 64-bit LCG (Knuth MMIX).
pub const LCG_MUL: u64 = 6364136223846793005;
/// The increment of the shared 64-bit LCG (Knuth MMIX).
pub const LCG_INC: u64 = 1442695040888963407;

/// Deterministic pseudo-random case generator: a 64-bit LCG with the
/// workspace-standard constants.
///
/// All draws advance the state exactly once, so sequences are reproducible
/// from the seed alone and independent of which width accessor is used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A generator whose seed is pre-mixed through one LCG step, so that
    /// consecutive small seeds (0, 1, 2, …) start from well-separated states.
    /// This is the `Cases::new(seed)` idiom of the property suites.
    pub fn new(seed: u64) -> Self {
        Lcg {
            state: seed.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC),
        }
    }

    /// A generator adopting `state` verbatim, matching the historical
    /// `Lcg(raw)` tuple-struct idiom. The first draw advances once before
    /// yielding, exactly like the in-tree copies did.
    pub fn from_state(state: u64) -> Self {
        Lcg { state }
    }

    /// Advances the state one step and returns the top 31 bits
    /// (`state >> 33`) — the draw every suite except the histogram oracle
    /// uses.
    // Not `Iterator::next`: draws are infallible (no `Option`) and the name
    // is pinned by every historical call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.step();
        self.state >> 33
    }

    /// Advances the state one step and returns the top 53 bits
    /// (`state >> 11`), for suites that need draws wider than 31 bits
    /// (the histogram oracle's value distribution).
    pub fn next_wide(&mut self) -> u64 {
        self.step();
        self.state >> 11
    }

    /// One draw reduced modulo `range` (`range == 0` is treated as 1, so the
    /// result is always in bounds). This is the `Cases::next(range)` idiom.
    pub fn below(&mut self, range: u64) -> u64 {
        self.next() % range.max(1)
    }

    /// One draw mapped uniformly-by-modulo into `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.next() % (hi - lo + 1)
    }

    /// One draw as a coin flip: true with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics when `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0, "zero denominator");
        self.below(den) < num
    }

    /// The raw internal state, for logging a reproducer mid-sequence.
    pub fn state(&self) -> u64 {
        self.state
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared generator must be bit-identical to the historical in-tree
    /// copies, or every pinned property sequence in the workspace shifts.
    #[test]
    fn matches_historical_cases_idiom() {
        // Reference: Cases::new(7) then next(1000) three times, transcribed
        // from the pre-extraction helper.
        let mut state: u64 = 7u64.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        let mut reference = Vec::new();
        for _ in 0..3 {
            state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
            reference.push((state >> 33) % 1000);
        }

        let mut lcg = Lcg::new(7);
        let got: Vec<u64> = (0..3).map(|_| lcg.below(1000)).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn matches_historical_raw_idiom() {
        let mut state: u64 = 42;
        state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        let narrow = state >> 33;
        state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        let wide = state >> 11;

        let mut lcg = Lcg::from_state(42);
        assert_eq!(lcg.next(), narrow);
        assert_eq!(lcg.next_wide(), wide);
    }

    #[test]
    fn range_is_inclusive_and_in_bounds() {
        let mut lcg = Lcg::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..512 {
            let v = lcg.range(2, 5);
            assert!((2..=5).contains(&v));
            saw_lo |= v == 2;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi, "range(2, 5) never hit an endpoint");
    }

    #[test]
    fn below_zero_range_is_safe() {
        let mut lcg = Lcg::new(9);
        assert_eq!(lcg.below(0), 0);
        assert_eq!(lcg.below(1), 0);
    }
}
