//! The reconfigurable video system of Figure 4.
//!
//! The paper's larger example is an industrial video platform: a processing chain
//! (`PIn → P1 → P2 → POut`) whose stages `P1` and `P2` each have a set of function
//! variants that a controller switches dynamically on user requests. The valve processes
//! `PIn` and `POut` are suspended during reconfiguration so that no invalid image (one
//! processed partly by the old and partly by the new variant) ever reaches the output.
//!
//! **Substitution note.** The original platform and its controller software are not
//! available. The chain, the valves, the request/confirm channels and the per-stage
//! configurations are modelled exactly as in the paper; the controller `PControl` is
//! modelled as part of the environment: the [`VideoScenario`] computes the token
//! sequence the controller would emit (suspend both valves, request the new variant on
//! both stages, resume after the reconfiguration window) and injects it into the
//! simulation. This preserves the property the paper demonstrates — representability of
//! dynamic reconfiguration and suppression of invalid output images — while keeping the
//! model self-contained.

use spi_model::{
    ActivationFunction, ActivationRule, Channel, ChannelKind, GraphBuilder, Interval, ModeId,
    ModeSpec, Predicate, SpiGraph, Token,
};
use spi_sim::{SimConfig, SimReport, Simulator};
use spi_variants::{Configuration, ConfigurationMap, ConfigurationSet};

use crate::WorkloadError;

/// Static parameters of the video chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoParams {
    /// Latency of stage `P1` in variant 1 / variant 2.
    pub p1_latency: (u64, u64),
    /// Latency of stage `P2` in variant 1 / variant 2.
    pub p2_latency: (u64, u64),
    /// Reconfiguration latency of `P1` (per target configuration).
    pub p1_reconfiguration: (u64, u64),
    /// Reconfiguration latency of `P2` (per target configuration).
    pub p2_reconfiguration: (u64, u64),
    /// Latency of the valve processes.
    pub valve_latency: u64,
}

impl Default for VideoParams {
    fn default() -> Self {
        VideoParams {
            p1_latency: (3, 5),
            p2_latency: (4, 6),
            p1_reconfiguration: (20, 30),
            p2_reconfiguration: (25, 35),
            valve_latency: 1,
        }
    }
}

/// A dynamic reconfiguration scenario: a frame stream plus user requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoScenario {
    /// Inter-arrival time of input frames.
    pub frame_period: u64,
    /// Number of frames injected.
    pub frame_count: u64,
    /// User requests as `(time, variant tag)` pairs, e.g. `(400, "V2")`.
    pub requests: Vec<(u64, &'static str)>,
    /// How long after a request the valves are resumed (must cover the reconfiguration
    /// window of both stages).
    pub resume_delay: u64,
    /// Simulation horizon.
    pub horizon: u64,
}

impl Default for VideoScenario {
    fn default() -> Self {
        VideoScenario {
            frame_period: 20,
            frame_count: 60,
            requests: vec![(400, "V2"), (900, "V1")],
            resume_delay: 80,
            horizon: 2_000,
        }
    }
}

/// Outcome of a video-system simulation, summarising the paper's qualitative claims.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VideoOutcome {
    /// Frames injected on `CVin`.
    pub frames_in: u64,
    /// Frames emitted on `CVout` while the chain was fully configured ("fresh").
    pub fresh_frames: u64,
    /// Frames replaced by the last valid image while a reconfiguration was in progress.
    pub repeated_frames: u64,
    /// Frames destroyed by the input valve during reconfiguration windows.
    pub dropped_at_input: u64,
    /// Number of proper reconfigurations of the two stages.
    pub reconfigurations: u64,
    /// Total reconfiguration latency accumulated by the two stages.
    pub reconfiguration_latency: u64,
}

#[allow(clippy::too_many_arguments)] // mirrors the seven wiring parameters of the paper's valve element
fn valve(
    b: &mut GraphBuilder,
    name: &str,
    input: spi_model::ChannelId,
    control: spi_model::ChannelId,
    output: spi_model::ChannelId,
    normal_tag: &str,
    suspend_tag: Option<&str>,
    latency: u64,
) -> Result<spi_model::ProcessId, WorkloadError> {
    // Mode 0 = normal, mode 1 = suspend. The input valve destroys data while suspended
    // (`suspend_tag` is `None`); the output valve replaces the chain output by the last
    // valid image, modelled as a token tagged `suspend_tag`.
    let normal = ModeSpec::new("normal", Interval::point(latency))
        .consume(input, Interval::point(1))
        .produce_tagged(
            output,
            Interval::point(1),
            [normal_tag].into_iter().collect(),
        );
    let mut suspend =
        ModeSpec::new("suspend", Interval::point(latency)).consume(input, Interval::point(1));
    if let Some(tag) = suspend_tag {
        suspend = suspend.produce_tagged(output, Interval::point(1), [tag].into_iter().collect());
    }
    let activation = ActivationFunction::new()
        .with_rule(ActivationRule::new(
            "a_suspend",
            Predicate::min_tokens(input, 1).and(Predicate::has_tag(control, "suspend")),
            ModeId::new(1),
        ))
        .with_rule(ActivationRule::new(
            "a_normal",
            Predicate::min_tokens(input, 1),
            ModeId::new(0),
        ));
    let process = b
        .process(name)
        .mode(normal)
        .mode(suspend)
        .activation(activation)
        .build()?;
    b.wire_input(input, process)?;
    b.wire_input(control, process)?;
    b.wire_output(process, output)?;
    Ok(process)
}

fn stage(
    b: &mut GraphBuilder,
    name: &str,
    input: spi_model::ChannelId,
    output: spi_model::ChannelId,
    request: spi_model::ChannelId,
    latencies: (u64, u64),
) -> Result<spi_model::ProcessId, WorkloadError> {
    let v1 = ModeSpec::new("v1", Interval::point(latencies.0))
        .consume(input, Interval::point(1))
        .produce(output, Interval::point(1));
    let v2 = ModeSpec::new("v2", Interval::point(latencies.1))
        .consume(input, Interval::point(1))
        .produce(output, Interval::point(1));
    let activation = ActivationFunction::new()
        .with_rule(ActivationRule::new(
            "a_v1",
            Predicate::min_tokens(input, 1).and(Predicate::has_tag(request, "V1")),
            ModeId::new(0),
        ))
        .with_rule(ActivationRule::new(
            "a_v2",
            Predicate::min_tokens(input, 1).and(Predicate::has_tag(request, "V2")),
            ModeId::new(1),
        ));
    let process = b
        .process(name)
        .mode(v1)
        .mode(v2)
        .activation(activation)
        .build()?;
    b.wire_input(input, process)?;
    b.wire_input(request, process)?;
    b.wire_output(process, output)?;
    Ok(process)
}

/// Builds the Figure 4 model: the processing chain with its valves, request registers
/// and per-stage configuration sets.
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed topology).
pub fn video_system(params: &VideoParams) -> Result<(SpiGraph, ConfigurationMap), WorkloadError> {
    let mut b = GraphBuilder::new("figure4_video");
    let cvin = b.channel("CVin", ChannelKind::Queue)?;
    let cv1 = b.channel("CV1", ChannelKind::Queue)?;
    let cv2 = b.channel("CV2", ChannelKind::Queue)?;
    let cv3 = b.channel("CV3", ChannelKind::Queue)?;
    let cvout = b.channel("CVout", ChannelKind::Queue)?;
    let cin_ctl = b.channel("CInCtl", ChannelKind::Register)?;
    let cout_ctl = b.channel("COutCtl", ChannelKind::Register)?;
    let creq1 = b.channel("CReq1", ChannelKind::Register)?;
    let creq2 = b.channel("CReq2", ChannelKind::Register)?;

    valve(
        &mut b,
        "PIn",
        cvin,
        cin_ctl,
        cv1,
        "frame",
        None,
        params.valve_latency,
    )?;
    let p1 = stage(&mut b, "P1", cv1, cv2, creq1, params.p1_latency)?;
    let p2 = stage(&mut b, "P2", cv2, cv3, creq2, params.p2_latency)?;
    valve(
        &mut b,
        "POut",
        cv3,
        cout_ctl,
        cvout,
        "fresh",
        Some("repeat"),
        params.valve_latency,
    )?;

    let mut graph = b.finish()?;
    // The chain starts configured for variant 1: the request registers hold a 'V1' token.
    for (channel, name) in [(creq1, "CReq1"), (creq2, "CReq2")] {
        let initialised = Channel::new(channel, name, ChannelKind::Register)?
            .with_initial_tokens(vec![Token::tagged("V1")])?;
        graph.replace_channel(initialised)?;
    }
    graph.validate()?;

    let mut configurations = ConfigurationMap::new();
    configurations.insert(
        p1,
        ConfigurationSet::new()
            .with_configuration(Configuration::new(
                "conf1",
                [ModeId::new(0)],
                params.p1_reconfiguration.0,
            ))
            .with_configuration(Configuration::new(
                "conf2",
                [ModeId::new(1)],
                params.p1_reconfiguration.1,
            )),
    );
    configurations.insert(
        p2,
        ConfigurationSet::new()
            .with_configuration(Configuration::new(
                "conf1",
                [ModeId::new(0)],
                params.p2_reconfiguration.0,
            ))
            .with_configuration(Configuration::new(
                "conf2",
                [ModeId::new(1)],
                params.p2_reconfiguration.1,
            )),
    );
    Ok((graph, configurations))
}

/// Builds a ready-to-run simulator for the given parameters and scenario: frames arrive
/// periodically on `CVin`; each user request suspends both valves, switches both stages'
/// request registers, and resumes the valves after `resume_delay`.
///
/// # Errors
///
/// Propagates model and injection errors.
pub fn video_simulator(
    params: &VideoParams,
    scenario: &VideoScenario,
) -> Result<Simulator, WorkloadError> {
    let (graph, configurations) = video_system(params)?;
    let config = SimConfig::with_horizon(scenario.horizon)
        .max_executions(scenario.frame_count * 4 + 64)
        .without_trace();
    let mut simulator = Simulator::new(graph, config).with_configurations(configurations);

    for frame in 0..scenario.frame_count {
        simulator.inject_by_name(
            frame * scenario.frame_period,
            "CVin",
            Token::tagged("frame").with_sequence(frame),
        )?;
    }
    for (time, variant) in &scenario.requests {
        // The controller's reaction to a user request (Section 5 of the paper):
        // suspend the valves, request the new variant on both stages, resume later.
        simulator.inject_by_name(*time, "CInCtl", Token::tagged("suspend"))?;
        simulator.inject_by_name(*time, "COutCtl", Token::tagged("suspend"))?;
        simulator.inject_by_name(*time, "CReq1", Token::tagged(*variant))?;
        simulator.inject_by_name(*time, "CReq2", Token::tagged(*variant))?;
        simulator.inject_by_name(
            *time + scenario.resume_delay,
            "CInCtl",
            Token::tagged("resume"),
        )?;
        simulator.inject_by_name(
            *time + scenario.resume_delay,
            "COutCtl",
            Token::tagged("resume"),
        )?;
    }
    Ok(simulator)
}

/// Summarises a simulation report of the video system into the quantities the paper
/// argues about.
pub fn summarize(graph: &SpiGraph, report: &SimReport, scenario: &VideoScenario) -> VideoOutcome {
    let mode_count = |process: &str, mode: u32| {
        graph
            .process_by_name(process)
            .map(|p| {
                report
                    .stats
                    .mode_executions
                    .get(&(p.id(), ModeId::new(mode)))
                    .copied()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    };
    VideoOutcome {
        frames_in: scenario.frame_count,
        fresh_frames: mode_count("POut", 0),
        repeated_frames: mode_count("POut", 1),
        dropped_at_input: mode_count("PIn", 1),
        reconfigurations: report.stats.reconfigurations,
        reconfiguration_latency: report.stats.reconfiguration_latency,
    }
}

/// Convenience wrapper: build, run and summarise in one call.
///
/// # Errors
///
/// Propagates model, injection and simulation errors.
pub fn run_video_scenario(
    params: &VideoParams,
    scenario: &VideoScenario,
) -> Result<VideoOutcome, WorkloadError> {
    let mut simulator = video_simulator(params, scenario)?;
    let graph = simulator.graph().clone();
    let report = simulator.run()?;
    Ok(summarize(&graph, &report, scenario))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_system_builds_and_validates() {
        let (graph, configurations) = video_system(&VideoParams::default()).unwrap();
        assert_eq!(graph.process_count(), 4);
        assert_eq!(graph.channel_count(), 9);
        assert_eq!(configurations.len(), 2);
        for set in configurations.values() {
            assert_eq!(set.len(), 2);
        }
    }

    #[test]
    fn steady_state_without_requests_produces_only_fresh_frames() {
        let scenario = VideoScenario {
            requests: vec![],
            frame_count: 20,
            ..Default::default()
        };
        let outcome = run_video_scenario(&VideoParams::default(), &scenario).unwrap();
        assert_eq!(outcome.fresh_frames, 20);
        assert_eq!(outcome.repeated_frames, 0);
        assert_eq!(outcome.dropped_at_input, 0);
        // The two stages configure once each at start-up but never re-configure.
        assert_eq!(outcome.reconfigurations, 0);
    }

    #[test]
    fn reconfiguration_suppresses_invalid_images() {
        let scenario = VideoScenario::default();
        let outcome = run_video_scenario(&VideoParams::default(), &scenario).unwrap();
        // Two requests, two stages: four proper reconfigurations in total.
        assert_eq!(outcome.reconfigurations, 4);
        assert!(outcome.reconfiguration_latency >= 20 + 25 + 30 + 35);
        // During the reconfiguration windows the valves either dropped frames at the
        // input or replaced chain output by the last valid image — but no frame simply
        // vanished: every frame that entered the chain left it as fresh or repeated.
        assert!(outcome.repeated_frames + outcome.dropped_at_input > 0);
        assert_eq!(
            outcome.fresh_frames + outcome.repeated_frames + outcome.dropped_at_input,
            outcome.frames_in
        );
        assert!(outcome.fresh_frames > outcome.repeated_frames);
    }

    #[test]
    fn longer_reconfiguration_latency_repeats_more_frames() {
        let scenario = VideoScenario {
            resume_delay: 200,
            ..Default::default()
        };
        let slow = VideoParams {
            p1_reconfiguration: (120, 150),
            p2_reconfiguration: (120, 150),
            ..Default::default()
        };
        let fast_outcome =
            run_video_scenario(&VideoParams::default(), &VideoScenario::default()).unwrap();
        let slow_outcome = run_video_scenario(&slow, &scenario).unwrap();
        assert!(
            slow_outcome.repeated_frames + slow_outcome.dropped_at_input
                > fast_outcome.repeated_frames + fast_outcome.dropped_at_input
        );
    }
}
