//! The worked examples of the paper: Figure 1 (SPI basics), Figure 2 (two function
//! variants behind one interface, the system evaluated in Table 1) and Figure 3
//! (run-time variant selection).

use spi_model::{ChannelKind, GraphBuilder, Interval, ModeSpec, SpiGraph, TagSet};
use spi_synth::{ApplicationSpec, SynthesisProblem, TaskSpec};
use spi_variants::{
    Cluster, ClusterSelection, Interface, SelectionRule, VariantSystem, VariantType,
};

use crate::WorkloadError;

/// Builds the SPI example of Figure 1: `p1 → c1 → p2 → c2 → p3` with the exact
/// parameters given in Section 2 of the paper (p2 has the two modes `m1`/`m2` with the
/// paper's activation rules on tags `'a'`/`'b'`).
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed example).
pub fn figure1() -> Result<SpiGraph, WorkloadError> {
    let mut b = GraphBuilder::new("figure1");
    let p1 = b.process("p1").latency(Interval::point(1)).build()?;
    let c1 = b.channel("c1", ChannelKind::Queue)?;
    let c2 = b.channel("c2", ChannelKind::Queue)?;
    let p2 = b
        .process("p2")
        .mode(
            ModeSpec::new("m1", Interval::point(3))
                .consume(c1, Interval::point(1))
                .produce(c2, Interval::point(2)),
        )
        .mode(
            ModeSpec::new("m2", Interval::point(5))
                .consume(c1, Interval::point(3))
                .produce(c2, Interval::point(5)),
        )
        .activation(
            spi_model::ActivationFunction::new()
                .with_rule(spi_model::ActivationRule::new(
                    "a1",
                    spi_model::Predicate::min_tokens(c1, 1)
                        .and(spi_model::Predicate::has_tag(c1, "a")),
                    spi_model::ModeId::new(0),
                ))
                .with_rule(spi_model::ActivationRule::new(
                    "a2",
                    spi_model::Predicate::min_tokens(c1, 3)
                        .and(spi_model::Predicate::has_tag(c1, "b")),
                    spi_model::ModeId::new(1),
                )),
        )
        .build()?;
    let p3 = b.process("p3").latency(Interval::point(3)).build()?;
    b.connect_output_tagged(p1, c1, Interval::point(2), TagSet::singleton("a"))?;
    b.wire_input(c1, p2)?;
    b.wire_output(p2, c2)?;
    b.connect_input(c2, p3, Interval::point(1))?;
    Ok(b.finish()?)
}

fn chain_cluster(name: &str, stages: usize, stage_latency: u64) -> Result<Cluster, WorkloadError> {
    let mut b = GraphBuilder::new(name);
    let mut previous = None;
    for stage in 0..stages {
        let process = b
            .process(format!("P{stage}"))
            .latency(Interval::point(stage_latency))
            .build()?;
        if let Some(previous) = previous {
            let channel = b.channel(format!("c{stage}"), ChannelKind::Queue)?;
            b.connect_output(previous, channel, Interval::point(1))?;
            b.connect_input(channel, process, Interval::point(1))?;
        }
        previous = Some(process);
    }
    let graph = b.finish()?;
    let mut cluster = Cluster::new(name, graph);
    cluster.add_input_port("i", "P0", Interval::point(1))?;
    cluster.add_output_port("o", format!("P{}", stages - 1).as_str(), Interval::point(1))?;
    Ok(cluster)
}

/// Builds the Figure 2 system: common processes `PA` and `PB` around `interface1` with
/// the two mutually exclusive clusters `cluster1` and `cluster2`.
///
/// Replacing the interface by either cluster yields the two independent applications
/// whose synthesis is compared in Table 1.
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed example).
pub fn figure2_system() -> Result<VariantSystem, WorkloadError> {
    let mut b = GraphBuilder::new("figure2");
    let pa = b.process("PA").latency(Interval::point(2)).build()?;
    let pb = b.process("PB").latency(Interval::point(3)).build()?;
    let c_in = b.channel("C_in", ChannelKind::Queue)?;
    let c_mid = b.channel("C_mid", ChannelKind::Queue)?;
    b.connect_output(pa, c_in, Interval::point(1))?;
    b.connect_input(c_mid, pb, Interval::point(1))?;
    let common = b.finish()?;

    let mut interface = Interface::new("interface1");
    interface.add_input_port("i");
    interface.add_output_port("o");
    interface.add_cluster(chain_cluster("cluster1", 2, 4)?)?;
    interface.add_cluster(chain_cluster("cluster2", 3, 2)?)?;

    let mut system = VariantSystem::new(common);
    let attachment = system.attach_interface(interface, VariantType::Production)?;
    system.bind_input(attachment, "i", "C_in")?;
    system.bind_output(attachment, "o", "C_mid")?;
    system.validate()?;
    Ok(system)
}

/// The synthesis parameters calibrated so that the four flows reproduce the cost
/// structure of Table 1: independent totals 34 / 38, superposition 57, variant-aware 41,
/// design times 67 / 73 / 140 / 118.
pub fn table1_problem() -> Result<SynthesisProblem, WorkloadError> {
    let mut problem = SynthesisProblem::new("table1", 15)
        .with_task(TaskSpec::new("PA", 25, 100, 26, 10))
        .with_task(TaskSpec::new("PB", 15, 100, 30, 12))
        .with_task(TaskSpec::new("interface1/cluster1", 70, 100, 19, 45))
        .with_task(TaskSpec::new("interface1/cluster2", 80, 100, 23, 51));
    problem.add_application(ApplicationSpec::new(
        "application1",
        ["PA", "PB", "interface1/cluster1"].map(String::from),
    ))?;
    problem.add_application(ApplicationSpec::new(
        "application2",
        ["PA", "PB", "interface1/cluster2"].map(String::from),
    ))?;
    Ok(problem)
}

/// Synthesis parameters for [`figure2_system`] task names, matching [`table1_problem`].
/// Use with [`spi_synth::from_variant_system`].
pub fn table1_params(task: &str) -> Option<spi_synth::TaskParams> {
    let (sw_time, period, hw_area, synthesis_effort) = match task {
        "PA" => (25, 100, 26, 10),
        "PB" => (15, 100, 30, 12),
        "interface1/cluster1" => (70, 100, 19, 45),
        "interface1/cluster2" => (80, 100, 23, 51),
        _ => return None,
    };
    Some(spi_synth::TaskParams {
        sw_time,
        period,
        hw_area,
        synthesis_effort,
    })
}

/// Builds the Figure 3 system: run-time variant selection. The user process `PUser`
/// writes a token tagged `'V1'` or `'V2'` onto the register `CV`; the interface's
/// cluster selection rules `rho1`/`rho2` map the tag to `cluster1`/`cluster2`.
///
/// The `selected` argument chooses which tag `PUser` emits (mirroring the user setting
/// the boot parameter).
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed example).
pub fn figure3_system(selected: &str) -> Result<VariantSystem, WorkloadError> {
    let mut b = GraphBuilder::new("figure3");
    let user = b
        .process("PUser")
        .latency(Interval::point(1))
        .environment()
        .build()?;
    let source = b
        .process("PSource")
        .latency(Interval::point(1))
        .environment()
        .build()?;
    let sink = b.process("PSink").latency(Interval::point(1)).build()?;
    let cv = b.channel("CV", ChannelKind::Register)?;
    let cin = b.channel("CIn", ChannelKind::Queue)?;
    let cout = b.channel("COut", ChannelKind::Queue)?;
    b.connect_output_tagged(user, cv, Interval::point(1), TagSet::singleton(selected))?;
    b.connect_output(source, cin, Interval::point(1))?;
    b.connect_input(cout, sink, Interval::point(1))?;
    let common = b.finish()?;

    let mut interface = Interface::new("interface1");
    interface.add_input_port("i");
    interface.add_output_port("o");
    interface.add_cluster(chain_cluster("cluster1", 2, 3)?)?;
    interface.add_cluster(chain_cluster("cluster2", 2, 6)?)?;

    let mut system = VariantSystem::new(common);
    let attachment = system.attach_interface(interface, VariantType::RunTime)?;
    system.bind_input(attachment, "i", "CIn")?;
    system.bind_output(attachment, "o", "COut")?;
    system.set_selection(
        attachment,
        ClusterSelection::new()
            .with_rule(SelectionRule::tag_equals("rho1", "CV", "V1", "cluster1"))
            .with_rule(SelectionRule::tag_equals("rho2", "CV", "V2", "cluster2"))
            .with_configuration_latency("cluster1", 8)
            .with_configuration_latency("cluster2", 12),
    )?;
    system.validate()?;
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_synth::report::table1;
    use spi_variants::{ExtractionPolicy, VariantChoice};

    #[test]
    fn figure1_matches_the_paper_parameters() {
        let graph = figure1().unwrap();
        assert_eq!(graph.process_count(), 3);
        assert_eq!(graph.channel_count(), 2);
        let p2 = graph.process_by_name("p2").unwrap();
        assert_eq!(p2.latency_hull().unwrap(), Interval::new(3, 5).unwrap());
        let c1 = graph.channel_by_name("c1").unwrap().id();
        let c2 = graph.channel_by_name("c2").unwrap().id();
        assert_eq!(p2.consumption_hull(c1), Interval::new(1, 3).unwrap());
        assert_eq!(p2.production_hull(c2), Interval::new(2, 5).unwrap());
    }

    #[test]
    fn figure2_flattens_into_two_applications() {
        let system = figure2_system().unwrap();
        assert_eq!(system.variant_space().count(), 2);
        let apps = system.flatten_all().unwrap();
        assert_eq!(apps.len(), 2);
        for (_, graph) in &apps {
            assert!(graph.validate().is_ok());
        }
    }

    #[test]
    fn table1_problem_reproduces_the_paper_table() {
        let table = table1(&table1_problem().unwrap()).unwrap();
        assert_eq!(table.rows[0].total, 34);
        assert_eq!(table.rows[1].total, 38);
        assert_eq!(table.superposition().unwrap().total, 57);
        assert_eq!(table.with_variants().unwrap().total, 41);
    }

    #[test]
    fn table1_params_cover_the_figure2_tasks() {
        let system = figure2_system().unwrap();
        let problem = spi_synth::from_variant_system(&system, 15, table1_params).unwrap();
        let table = table1(&problem).unwrap();
        assert_eq!(table.with_variants().unwrap().total, 41);
        assert_eq!(table.superposition().unwrap().total, 57);
    }

    #[test]
    fn figure3_selects_the_requested_variant() {
        for (tag, expected_cluster) in [("V1", "cluster1"), ("V2", "cluster2")] {
            let system = figure3_system(tag).unwrap();
            let choice = VariantChoice::new().with("interface1", expected_cluster);
            assert!(system.flatten(&choice).is_ok());
            let attachment = system.attachment_by_name("interface1").unwrap();
            let abstracted = system
                .abstract_interface(attachment, ExtractionPolicy::Coarse)
                .unwrap();
            assert_eq!(abstracted.configuration_set().len(), 2);
        }
    }
}
