//! # spi-workloads
//!
//! Workload generators reproducing the systems used in the paper's presentation and
//! evaluation, plus synthetic, seeded generators for scaling studies:
//!
//! * [`figures::figure1`] — the introductory SPI example (Figure 1);
//! * [`figures::figure2_system`] / [`figures::table1_problem`] — the two-variant design
//!   scenario evaluated in Table 1;
//! * [`figures::figure3_system`] — run-time variant selection (Figure 3);
//! * [`video`] — the reconfigurable video system (Figure 4) with its simulation
//!   scenarios;
//! * [`scenarios`] — the motivational multi-standard TV and automotive systems;
//! * [`synthetic`] — seeded generators of variant systems and synthesis problems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod scenarios;
pub mod synthetic;
pub mod video;

pub use figures::{figure1, figure2_system, figure3_system, table1_params, table1_problem};
pub use scenarios::{
    automotive_problem, automotive_system, exploration_suite, multi_tenant_suite, tv_problem,
    tv_system, TenantLoad,
};
pub use synthetic::{scaling_system, synthetic_problem, synthetic_system, SyntheticParams};
pub use video::{
    run_video_scenario, video_simulator, video_system, VideoOutcome, VideoParams, VideoScenario,
};

use std::fmt;

/// Error raised while constructing a workload.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Error from the SPI model layer.
    Model(spi_model::ModelError),
    /// Error from the variants layer.
    Variants(spi_variants::VariantError),
    /// Error from the synthesis layer.
    Synth(spi_synth::SynthError),
    /// Error from the simulator.
    Sim(spi_sim::SimError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Model(e) => write!(f, "model error: {e}"),
            WorkloadError::Variants(e) => write!(f, "variants error: {e}"),
            WorkloadError::Synth(e) => write!(f, "synthesis error: {e}"),
            WorkloadError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Model(e) => Some(e),
            WorkloadError::Variants(e) => Some(e),
            WorkloadError::Synth(e) => Some(e),
            WorkloadError::Sim(e) => Some(e),
        }
    }
}

impl From<spi_model::ModelError> for WorkloadError {
    fn from(e: spi_model::ModelError) -> Self {
        WorkloadError::Model(e)
    }
}

impl From<spi_variants::VariantError> for WorkloadError {
    fn from(e: spi_variants::VariantError) -> Self {
        WorkloadError::Variants(e)
    }
}

impl From<spi_synth::SynthError> for WorkloadError {
    fn from(e: spi_synth::SynthError) -> Self {
        WorkloadError::Synth(e)
    }
}

impl From<spi_sim::SimError> for WorkloadError {
    fn from(e: spi_sim::SimError) -> Self {
        WorkloadError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_error_wraps_every_layer() {
        let model: WorkloadError = spi_model::ModelError::CyclicGraph.into();
        assert!(model.to_string().contains("model error"));
        let variants: WorkloadError = spi_variants::VariantError::Validation("x".into()).into();
        assert!(std::error::Error::source(&variants).is_some());
        let synth: WorkloadError = spi_synth::SynthError::NoApplications.into();
        assert!(synth.to_string().contains("synthesis"));
        let sim: WorkloadError = spi_sim::SimError::Config("bad".into()).into();
        assert!(sim.to_string().contains("simulation"));
    }
}
