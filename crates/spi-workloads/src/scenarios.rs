//! Motivational scenarios from the paper's introduction: a multi-standard TV set and an
//! automotive controller adapted to different emission laws. Both are variant systems
//! with a fixed core function and one or more variant sets, used by the examples and the
//! design-time experiments.

use spi_model::{ChannelKind, GraphBuilder, Interval, SpiGraph};
use spi_synth::{SynthesisProblem, TaskParams};
use spi_variants::{Cluster, Interface, VariantSystem, VariantType};

use crate::WorkloadError;

fn single_process_cluster(name: &str, latency: u64) -> Result<Cluster, WorkloadError> {
    let mut b = GraphBuilder::new(name);
    b.process("P").latency(Interval::point(latency)).build()?;
    let mut cluster = Cluster::new(name, b.finish()?);
    cluster.add_input_port("i", "P", Interval::point(1))?;
    cluster.add_output_port("o", "P", Interval::point(1))?;
    Ok(cluster)
}

fn pipeline_common(name: &str, stages: &[&str]) -> Result<SpiGraph, WorkloadError> {
    // A chain of common processes with a free channel between each pair of consecutive
    // stages where an interface can be attached:  s0 -> gap0 ... gap1 -> s1 -> ...
    let mut b = GraphBuilder::new(name);
    let mut previous = None;
    for (index, stage) in stages.iter().enumerate() {
        let process = b.process(*stage).latency(Interval::point(2)).build()?;
        if let Some(previous) = previous {
            let into = b.channel(format!("gap{index}_in"), ChannelKind::Queue)?;
            let out_of = b.channel(format!("gap{index}_out"), ChannelKind::Queue)?;
            b.connect_output(previous, into, Interval::point(1))?;
            b.connect_input(out_of, process, Interval::point(1))?;
        }
        previous = Some(process);
    }
    Ok(b.finish()?)
}

/// Builds the multi-standard TV scenario: a common signal chain (`Tuner`, `Scaler`,
/// `Display`) with two variant sets — the video decoding standard (PAL / NTSC / SECAM)
/// and the audio decoding standard (A2 / NICAM). The variant selections of the two sets
/// are independent, so the system spans `3 × 2 = 6` variant combinations.
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed scenario).
pub fn tv_system() -> Result<VariantSystem, WorkloadError> {
    let common = pipeline_common("multi_standard_tv", &["Tuner", "Scaler", "Display"])?;
    let mut system = VariantSystem::new(common);

    let mut video = Interface::new("video_standard");
    video.add_input_port("i");
    video.add_output_port("o");
    video.add_cluster(single_process_cluster("pal", 6)?)?;
    video.add_cluster(single_process_cluster("ntsc", 5)?)?;
    video.add_cluster(single_process_cluster("secam", 7)?)?;
    let video_attachment = system.attach_interface(video, VariantType::Production)?;
    system.bind_input(video_attachment, "i", "gap1_in")?;
    system.bind_output(video_attachment, "o", "gap1_out")?;

    let mut audio = Interface::new("audio_standard");
    audio.add_input_port("i");
    audio.add_output_port("o");
    audio.add_cluster(single_process_cluster("a2", 3)?)?;
    audio.add_cluster(single_process_cluster("nicam", 4)?)?;
    let audio_attachment = system.attach_interface(audio, VariantType::RunTime)?;
    system.bind_input(audio_attachment, "i", "gap2_in")?;
    system.bind_output(audio_attachment, "o", "gap2_out")?;

    system.validate()?;
    Ok(system)
}

/// Synthesis parameters for the TV scenario, calibrated so that the common chain is
/// expensive in hardware (favouring reuse) and the standards differ moderately.
pub fn tv_params(task: &str) -> Option<TaskParams> {
    let (sw_time, hw_area, synthesis_effort) = match task {
        "Tuner" => (15, 40, 8),
        "Scaler" => (20, 55, 14),
        "Display" => (10, 35, 6),
        "video_standard/pal" => (45, 25, 30),
        "video_standard/ntsc" => (40, 24, 28),
        "video_standard/secam" => (50, 27, 33),
        "audio_standard/a2" => (12, 10, 9),
        "audio_standard/nicam" => (16, 12, 11),
        _ => return None,
    };
    Some(TaskParams {
        sw_time,
        period: 100,
        hw_area,
        synthesis_effort,
    })
}

/// Derives the synthesis problem of the TV scenario.
///
/// # Errors
///
/// Propagates bridge errors.
pub fn tv_problem() -> Result<SynthesisProblem, WorkloadError> {
    Ok(spi_synth::from_variant_system(
        &tv_system()?,
        20,
        tv_params,
    )?)
}

/// Builds the automotive scenario: an engine controller whose exhaust treatment strategy
/// is a production variant selected per market (three emission-law variants), with the
/// sensor fusion and actuator control as the common part.
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed scenario).
pub fn automotive_system() -> Result<VariantSystem, WorkloadError> {
    let common = pipeline_common("engine_controller", &["SensorFusion", "Actuation"])?;
    let mut system = VariantSystem::new(common);
    let mut emission = Interface::new("emission_law");
    emission.add_input_port("i");
    emission.add_output_port("o");
    emission.add_cluster(single_process_cluster("euro6", 9)?)?;
    emission.add_cluster(single_process_cluster("epa_tier3", 8)?)?;
    emission.add_cluster(single_process_cluster("china6", 10)?)?;
    let attachment = system.attach_interface(emission, VariantType::Production)?;
    system.bind_input(attachment, "i", "gap1_in")?;
    system.bind_output(attachment, "o", "gap1_out")?;
    system.validate()?;
    Ok(system)
}

/// Synthesis parameters for the automotive scenario.
pub fn automotive_params(task: &str) -> Option<TaskParams> {
    let (sw_time, hw_area, synthesis_effort) = match task {
        "SensorFusion" => (30, 60, 16),
        "Actuation" => (20, 45, 10),
        "emission_law/euro6" => (55, 30, 25),
        "emission_law/epa_tier3" => (50, 28, 24),
        "emission_law/china6" => (60, 32, 27),
        _ => return None,
    };
    Some(TaskParams {
        sw_time,
        period: 100,
        hw_area,
        synthesis_effort,
    })
}

/// Derives the synthesis problem of the automotive scenario.
///
/// # Errors
///
/// Propagates bridge errors.
pub fn automotive_problem() -> Result<SynthesisProblem, WorkloadError> {
    Ok(spi_synth::from_variant_system(
        &automotive_system()?,
        25,
        automotive_params,
    )?)
}

/// The scenario suite for the exploration service: every variant system the
/// workloads crate can pose as an exploration job, named. The suite is what
/// `spi-explore` examples, benchmarks and smoke tests iterate over, and the
/// names double as the `{"scenario": ...}` identifiers of the ndjson wire
/// format (plus a synthetic scaling entry for volume).
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed
/// scenarios).
pub fn exploration_suite() -> Result<Vec<(String, VariantSystem)>, WorkloadError> {
    Ok(vec![
        ("tv".to_string(), tv_system()?),
        ("automotive".to_string(), automotive_system()?),
        ("figure2".to_string(), crate::figures::figure2_system()?),
        (
            "scaling_8x2".to_string(),
            crate::synthetic::scaling_system(8, 2)?,
        ),
    ])
}

/// One tenant's load in the multi-tenant exploration scenario.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Fair-queuing tenant the job bills to.
    pub tenant: String,
    /// WFQ weight of the tenant.
    pub weight: u32,
    /// Job name.
    pub name: String,
    /// The variant system to explore.
    pub system: VariantSystem,
    /// Suggested shard count (scaled to the space size).
    pub shard_count: usize,
}

/// The multi-tenant fairness scenario: one batch "whale" tenant submitting a
/// large scaling space alongside interactive tenants with the paper's small
/// scenario systems. Under FIFO dispatch the whale's shards drain first and
/// the interactive jobs wait for the whole backlog; under weighted-fair
/// queuing the interactive tenants (weight 2) finish promptly while the
/// whale still gets its share. `spi-explore`'s scheduler tests and the
/// `store` bench section consume this suite.
///
/// # Errors
///
/// Propagates model construction errors (none are expected for the fixed
/// scenarios).
pub fn multi_tenant_suite() -> Result<Vec<TenantLoad>, WorkloadError> {
    Ok(vec![
        TenantLoad {
            tenant: "batch".to_string(),
            weight: 1,
            name: "whale-scaling".to_string(),
            system: crate::synthetic::scaling_system(8, 2)?, // 256 combinations
            shard_count: 64,
        },
        TenantLoad {
            tenant: "tv".to_string(),
            weight: 2,
            name: "tv-exploration".to_string(),
            system: tv_system()?,
            shard_count: 4,
        },
        TenantLoad {
            tenant: "automotive".to_string(),
            weight: 2,
            name: "automotive-exploration".to_string(),
            system: automotive_system()?,
            shard_count: 3,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_synth::strategy;

    #[test]
    fn multi_tenant_suite_mixes_a_whale_with_interactive_tenants() {
        let suite = multi_tenant_suite().unwrap();
        assert_eq!(suite.len(), 3);
        let whale = &suite[0];
        assert_eq!(whale.tenant, "batch");
        assert_eq!(whale.system.variant_space().count(), 256);
        for interactive in &suite[1..] {
            assert!(interactive.weight > whale.weight);
            assert!(
                interactive.system.variant_space().count() < 10,
                "interactive tenants submit small spaces"
            );
        }
    }

    #[test]
    fn tv_system_spans_six_variant_combinations() {
        let system = tv_system().unwrap();
        assert_eq!(system.attachment_count(), 2);
        assert_eq!(system.variant_space().count(), 6);
        assert_eq!(system.flatten_all().unwrap().len(), 6);
    }

    #[test]
    fn tv_problem_prefers_variant_aware_synthesis() {
        let problem = tv_problem().unwrap();
        assert_eq!(problem.applications().len(), 6);
        let joint = strategy::variant_aware(&problem).unwrap();
        let superposed = strategy::superposition(&problem).unwrap();
        assert!(joint.cost.total() <= superposed.cost.total());
        assert!(joint.design_time < superposed.design_time);
    }

    #[test]
    fn automotive_system_has_three_production_variants() {
        let system = automotive_system().unwrap();
        assert_eq!(system.variant_space().count(), 3);
        let problem = automotive_problem().unwrap();
        assert_eq!(problem.common_tasks().len(), 2);
        assert_eq!(problem.variant_tasks().len(), 3);
    }

    #[test]
    fn automotive_synthesis_is_feasible() {
        let problem = automotive_problem().unwrap();
        let result = strategy::variant_aware(&problem).unwrap();
        assert!(result.feasibility.feasible());
    }

    #[test]
    fn exploration_suite_names_valid_nonempty_systems() {
        let suite = exploration_suite().unwrap();
        assert_eq!(suite.len(), 4);
        let names: Vec<&str> = suite.iter().map(|(name, _)| name.as_str()).collect();
        assert_eq!(names, vec!["tv", "automotive", "figure2", "scaling_8x2"]);
        for (name, system) in &suite {
            assert!(system.validate().is_ok(), "{name} must validate");
            assert!(
                system.variant_space().count() > 0,
                "{name} must span at least one combination"
            );
        }
        // The volume entry is actually voluminous.
        assert_eq!(suite[3].1.variant_space().count(), 256);
    }
}
