//! Seeded synthetic workload generators for scaling experiments.
//!
//! The paper's evaluation is a single small design scenario plus one case study. To turn
//! its qualitative claims (cost advantage of variant-aware synthesis, design-time
//! reduction, schedulability through mutual exclusion) into measurable trends, these
//! generators produce families of systems parameterised by the number of variants, the
//! number of common processes and a random seed. All generation is deterministic for a
//! given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spi_model::{ChannelKind, GraphBuilder, Interval};
use spi_synth::{ApplicationSpec, SynthesisProblem, TaskSpec};
use spi_variants::{Cluster, Interface, VariantSystem, VariantType};

use crate::WorkloadError;

/// Parameters of a synthetic variant system / synthesis problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticParams {
    /// Number of variant-independent (common) tasks.
    pub common_tasks: usize,
    /// Number of variant sets (interfaces).
    pub interfaces: usize,
    /// Number of clusters (variants) per interface.
    pub clusters_per_interface: usize,
    /// Number of processes inside each cluster (for the model-level generator).
    pub cluster_depth: usize,
    /// RNG seed; identical seeds produce identical workloads.
    pub seed: u64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            common_tasks: 4,
            interfaces: 2,
            clusters_per_interface: 3,
            cluster_depth: 2,
            seed: 42,
        }
    }
}

impl SyntheticParams {
    /// The variant-space scaling scenario: `interfaces` variant sets of
    /// `clusters_per_interface` variants each, i.e. a cross product of
    /// `clusters_per_interface ^ interfaces` combinations.
    ///
    /// This is the regime the lazy enumeration / [`spi_variants::Flattener`] hot
    /// path is built for (e.g. `scaling(20, 2)` spans 2^20 combinations); the
    /// shallow clusters keep each combination's graph small so that throughput
    /// measurements are dominated by the enumeration/flattening machinery itself.
    pub fn scaling(interfaces: usize, clusters_per_interface: usize) -> Self {
        SyntheticParams {
            common_tasks: interfaces + 1,
            interfaces,
            clusters_per_interface,
            cluster_depth: 1,
            seed: 42,
        }
    }
}

/// Builds the model-level scaling scenario of [`SyntheticParams::scaling`]: a chain of
/// common processes with `interfaces` interfaces of `clusters_per_interface` clusters
/// spliced between them.
///
/// # Errors
///
/// Propagates model-construction errors (none are expected for generated names).
pub fn scaling_system(
    interfaces: usize,
    clusters_per_interface: usize,
) -> Result<VariantSystem, WorkloadError> {
    synthetic_system(&SyntheticParams::scaling(
        interfaces,
        clusters_per_interface,
    ))
}

/// Generates a synthetic synthesis problem: `common_tasks` shared tasks plus one task
/// per (interface, cluster), and one application per variant combination.
///
/// Utilizations are drawn such that the all-software mapping of a single application is
/// usually slightly infeasible — the regime where the mapping decisions are interesting.
///
/// # Errors
///
/// Propagates problem-construction errors (none are expected for generated names).
pub fn synthetic_problem(params: &SyntheticParams) -> Result<SynthesisProblem, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut problem = SynthesisProblem::new(
        format!("synthetic_{}", params.seed),
        10 + rng.gen_range(0..10),
    );

    let mut common = Vec::new();
    for index in 0..params.common_tasks {
        let name = format!("common{index}");
        problem.add_task(TaskSpec::new(
            &name,
            rng.gen_range(5..20),
            100,
            rng.gen_range(15..45),
            rng.gen_range(4..12),
        ));
        common.push(name);
    }

    let mut variant_names: Vec<Vec<String>> = Vec::new();
    for interface in 0..params.interfaces {
        let mut clusters = Vec::new();
        for cluster in 0..params.clusters_per_interface {
            let name = format!("if{interface}/v{cluster}");
            problem.add_task(TaskSpec::new(
                &name,
                rng.gen_range(30..75),
                100,
                rng.gen_range(15..35),
                rng.gen_range(20..55),
            ));
            clusters.push(name);
        }
        variant_names.push(clusters);
    }

    // One application per combination of variants (cartesian product).
    let mut combinations: Vec<Vec<String>> = vec![Vec::new()];
    for clusters in &variant_names {
        let mut next = Vec::new();
        for partial in &combinations {
            for cluster in clusters {
                let mut extended = partial.clone();
                extended.push(cluster.clone());
                next.push(extended);
            }
        }
        combinations = next;
    }
    for (index, combination) in combinations.into_iter().enumerate() {
        let mut tasks = common.clone();
        tasks.extend(combination);
        problem.add_application(ApplicationSpec::new(format!("application{index}"), tasks))?;
    }
    Ok(problem)
}

/// Generates a synthetic variant system at the model level: a chain of common processes
/// with one interface (and its clusters) spliced between each consecutive pair.
///
/// # Errors
///
/// Propagates model-construction errors (none are expected for generated names).
pub fn synthetic_system(params: &SyntheticParams) -> Result<VariantSystem, WorkloadError> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let stages = params.interfaces + 1;
    let mut b = GraphBuilder::new(format!("synthetic_system_{}", params.seed));
    let mut previous = None;
    for stage in 0..stages {
        let process = b
            .process(format!("common{stage}"))
            .latency(Interval::point(rng.gen_range(1..6)))
            .build()?;
        if let Some(previous) = previous {
            let into = b.channel(format!("gap{stage}_in"), ChannelKind::Queue)?;
            let out_of = b.channel(format!("gap{stage}_out"), ChannelKind::Queue)?;
            b.connect_output(previous, into, Interval::point(1))?;
            b.connect_input(out_of, process, Interval::point(1))?;
        }
        previous = Some(process);
    }
    let common = b.finish()?;
    let mut system = VariantSystem::new(common);

    for interface_index in 0..params.interfaces {
        let mut interface = Interface::new(format!("if{interface_index}"));
        interface.add_input_port("i");
        interface.add_output_port("o");
        for cluster_index in 0..params.clusters_per_interface {
            let name = format!("if{interface_index}_v{cluster_index}");
            let mut cb = GraphBuilder::new(&name);
            let mut prev = None;
            for depth in 0..params.cluster_depth.max(1) {
                let process = cb
                    .process(format!("P{depth}"))
                    .latency(Interval::point(rng.gen_range(1..8)))
                    .build()?;
                if let Some(prev) = prev {
                    let channel = cb.channel(format!("c{depth}"), ChannelKind::Queue)?;
                    cb.connect_output(prev, channel, Interval::point(1))?;
                    cb.connect_input(channel, process, Interval::point(1))?;
                }
                prev = Some(process);
            }
            let mut cluster = Cluster::new(&name, cb.finish()?);
            cluster.add_input_port("i", "P0", Interval::point(1))?;
            cluster.add_output_port(
                "o",
                format!("P{}", params.cluster_depth.max(1) - 1).as_str(),
                Interval::point(1),
            )?;
            interface.add_cluster(cluster)?;
        }
        let attachment = system.attach_interface(interface, VariantType::Production)?;
        system.bind_input(attachment, "i", format!("gap{}_in", interface_index + 1))?;
        system.bind_output(attachment, "o", format!("gap{}_out", interface_index + 1))?;
    }
    system.validate()?;
    Ok(system)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_synth::design_time;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = SyntheticParams::default();
        let a = synthetic_problem(&params).unwrap();
        let b = synthetic_problem(&params).unwrap();
        assert_eq!(a, b);
        let other = synthetic_problem(&SyntheticParams { seed: 7, ..params }).unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn problem_size_matches_parameters() {
        let params = SyntheticParams {
            common_tasks: 5,
            interfaces: 3,
            clusters_per_interface: 2,
            ..Default::default()
        };
        let problem = synthetic_problem(&params).unwrap();
        assert_eq!(problem.task_count(), 5 + 3 * 2);
        assert_eq!(problem.applications().len(), 2usize.pow(3));
        assert_eq!(problem.common_tasks().len(), 5);
    }

    #[test]
    fn design_time_gap_grows_with_variant_count() {
        // The more variants, the larger the advantage of considering common tasks once.
        let few = synthetic_problem(&SyntheticParams {
            clusters_per_interface: 2,
            ..Default::default()
        })
        .unwrap();
        let many = synthetic_problem(&SyntheticParams {
            clusters_per_interface: 4,
            ..Default::default()
        })
        .unwrap();
        let gap = |problem: &SynthesisProblem| {
            design_time::independent(problem).unwrap().total - design_time::joint(problem).total
        };
        assert!(gap(&many) > gap(&few));
    }

    #[test]
    fn scaling_scenario_spans_a_megavariant_space_lazily() {
        use spi_variants::Flattener;

        // 2^20 combinations: far beyond what eager enumeration/flattening could
        // materialize, yet the lazy space handles counting, random access and
        // strided sampling in microseconds.
        let system = scaling_system(20, 2).unwrap();
        let space = system.variant_space();
        assert_eq!(space.count(), 1 << 20);
        assert_eq!(space.choices_iter().len(), 1 << 20);

        let flattener = Flattener::new(&system).unwrap();
        // Strided shard: every 2^17th combination, 8 flattens in total.
        for (_, graph) in (0..8).map(|i| flattener.flatten_at(i << 17).unwrap()) {
            assert!(graph.validate().is_ok());
            // 21 common chain processes + one single-process cluster per interface.
            assert_eq!(graph.process_count(), 21 + 20);
        }
    }

    #[test]
    fn scaling_params_shape_matches_arguments() {
        let params = SyntheticParams::scaling(5, 3);
        let system = synthetic_system(&params).unwrap();
        assert_eq!(system.attachment_count(), 5);
        assert_eq!(system.variant_space().count(), 3usize.pow(5));
        let problem = synthetic_problem(&params).unwrap();
        assert_eq!(problem.task_count(), params.common_tasks + 5 * 3);
    }

    #[test]
    fn synthetic_system_flattens_for_every_choice() {
        let params = SyntheticParams {
            interfaces: 2,
            clusters_per_interface: 2,
            cluster_depth: 3,
            ..Default::default()
        };
        let system = synthetic_system(&params).unwrap();
        assert_eq!(system.variant_space().count(), 4);
        for (_, graph) in system.flatten_all().unwrap() {
            assert!(graph.validate().is_ok());
        }
    }
}
