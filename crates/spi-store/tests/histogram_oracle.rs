//! Randomized differential suite: the log-linear [`Histogram`] against an
//! exact sorted-sample oracle.
//!
//! Three properties, over LCG-generated sample sets spanning the linear
//! region, several octaves and the saturation bound:
//!
//! * **Quantile error bound** — for every checked percentile, the histogram
//!   quantile is never below the exact nearest-rank quantile and never more
//!   than `exact / 32` (one log-linear bucket width) above it; exact in the
//!   linear region (< 32) and at p100.
//! * **Merge associativity** — splitting a sample set into parts and merging
//!   the parts' histograms in any grouping yields bit-identical summaries to
//!   recording everything into one histogram.
//! * **Saturation** — values past the bounded range land in the overflow
//!   bucket without panicking, and quantiles falling there report the exact
//!   tracked maximum.

use spi_store::metrics::{Histogram, GROUPS, HISTOGRAM_BOUND};

/// Deterministic LCG (same constants as the other randomized suites); this
/// suite draws via `next_wide` — 53-bit values, wide enough to span every
/// histogram octave up to the saturation bound.
use spi_testutil::Lcg;

/// Exact nearest-rank percentile of a sorted sample set.
fn exact_quantile(sorted: &[u64], pct: u32) -> u64 {
    assert!(!sorted.is_empty());
    if pct >= 100 {
        return *sorted.last().unwrap();
    }
    let rank = ((sorted.len() as u128 * pct as u128).div_ceil(100) as usize).max(1);
    sorted[rank - 1]
}

/// Asserts the log-linear error bound for every checked percentile.
fn assert_quantiles_within_bound(histogram: &Histogram, sorted: &[u64], label: &str) {
    for pct in [1, 5, 10, 25, 50, 75, 90, 95, 99, 100] {
        let exact = exact_quantile(sorted, pct);
        let approx = histogram.quantile(pct);
        assert!(
            approx >= exact,
            "{label}: p{pct} approx {approx} below exact {exact}"
        );
        if exact >= HISTOGRAM_BOUND {
            // Past the bounded range the only guarantee is the clamp to the
            // exact tracked maximum.
            assert!(
                approx <= histogram.max(),
                "{label}: p{pct} saturated approx {approx} above max"
            );
            continue;
        }
        let slack = exact / GROUPS;
        assert!(
            approx <= exact + slack,
            "{label}: p{pct} approx {approx} exceeds exact {exact} + bound {slack}"
        );
        if exact < GROUPS || pct == 100 {
            assert_eq!(approx, exact, "{label}: p{pct} must be exact");
        }
    }
}

#[test]
fn randomized_quantiles_match_the_exact_oracle_within_bucket_bound() {
    let mut lcg = Lcg::from_state(42);
    for round in 0..200 {
        let len = (lcg.next_wide() % 300 + 1) as usize;
        // Spread samples across magnitudes: small linear-region values,
        // mid-range, and wide 40-bit values, mixed per round.
        let spread = lcg.next_wide() % 3;
        let samples: Vec<u64> = (0..len)
            .map(|_| match spread {
                0 => lcg.next_wide() % 64,
                1 => lcg.next_wide() % 1_000_000,
                _ => lcg.next_wide() % (1 << 40),
            })
            .collect();
        let histogram = Histogram::new();
        for &v in &samples {
            histogram.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        assert_eq!(histogram.count(), sorted.len() as u64);
        assert_eq!(histogram.sum(), sorted.iter().sum::<u64>());
        assert_eq!(histogram.max(), *sorted.last().unwrap());
        assert_quantiles_within_bound(&histogram, &sorted, &format!("round {round}"));
    }
}

#[test]
fn merge_is_associative_and_matches_single_recording() {
    let mut lcg = Lcg::from_state(7);
    for round in 0..50 {
        let parts: Vec<Vec<u64>> = (0..3)
            .map(|_| {
                (0..(lcg.next_wide() % 100 + 1))
                    .map(|_| lcg.next_wide() % (1 << 36))
                    .collect()
            })
            .collect();

        let record_all = |sets: &[&Vec<u64>]| {
            let h = Histogram::new();
            for set in sets {
                for &v in set.iter() {
                    h.record(v);
                }
            }
            h
        };
        let single = record_all(&[&parts[0], &parts[1], &parts[2]]);

        // (a ⊔ b) ⊔ c
        let left = record_all(&[&parts[0]]);
        left.merge(&record_all(&[&parts[1]]));
        left.merge(&record_all(&[&parts[2]]));
        // a ⊔ (b ⊔ c)
        let right = record_all(&[&parts[0]]);
        let bc = record_all(&[&parts[1]]);
        bc.merge(&record_all(&[&parts[2]]));
        right.merge(&bc);

        for histogram in [&left, &right] {
            assert_eq!(histogram.count(), single.count(), "round {round}");
            assert_eq!(histogram.sum(), single.sum(), "round {round}");
            assert_eq!(histogram.max(), single.max(), "round {round}");
            for pct in [1, 25, 50, 75, 90, 99, 100] {
                assert_eq!(
                    histogram.quantile(pct),
                    single.quantile(pct),
                    "round {round} p{pct}"
                );
            }
        }
        assert_eq!(
            left.summary().to_line(),
            right.summary().to_line(),
            "round {round}: merge grouping must not be observable"
        );
    }
}

#[test]
fn saturation_at_the_bounded_range_reports_the_tracked_max() {
    let mut lcg = Lcg::from_state(99);
    let histogram = Histogram::new();
    let mut samples: Vec<u64> = (0..64)
        .map(|_| HISTOGRAM_BOUND + lcg.next_wide() % (1 << 30))
        .collect();
    samples.push(u64::MAX);
    for &v in &samples {
        histogram.record(v);
    }
    samples.sort_unstable();
    assert_eq!(histogram.count(), samples.len() as u64);
    // Every quantile falls in the overflow bucket; all report the exact max.
    for pct in [1, 50, 100] {
        assert_eq!(histogram.quantile(pct), u64::MAX, "p{pct}");
    }
    // Mixed in-range + saturated samples: in-range quantiles stay bounded.
    let mixed = Histogram::new();
    let mut mixed_samples: Vec<u64> = (0..100).map(|_| lcg.next_wide() % 1_000_000).collect();
    mixed_samples.extend([HISTOGRAM_BOUND, HISTOGRAM_BOUND * 2]);
    for &v in &mixed_samples {
        mixed.record(v);
    }
    mixed_samples.sort_unstable();
    assert_quantiles_within_bound(&mixed, &mixed_samples, "mixed in-range + saturated samples");
}
