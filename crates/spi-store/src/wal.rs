//! The append-only, checksummed write-ahead log and its snapshot companion.
//!
//! # Files
//!
//! A store directory holds two files:
//!
//! * `wal.log` — one record per line: `{"seq":N,"crc":"<hex>","rec":{...}}`.
//!   `rec` is an opaque [`JsonValue`] supplied by the caller (the registry
//!   serializes its own transition records); `crc` is the FNV-1a-128 digest
//!   of `rec`'s canonical line, so a flipped bit anywhere in the payload —
//!   or a torn final line from a crash mid-append — fails verification.
//! * `snapshot.json` — one line `{"seq":N,"crc":"<hex>","state":{...}}`:
//!   a caller-supplied compaction of every record up to and including `seq`.
//!
//! # Recovery
//!
//! [`Wal::open`] loads the snapshot (if any), then replays `wal.log` records
//! with `seq` greater than the snapshot's. Replay stops at the first
//! malformed, checksum-failing or out-of-order line and **truncates** the
//! file there: a crash can only tear the tail, so everything before the
//! first bad line is intact by construction, and everything after it was
//! never acknowledged. Appends after recovery continue the sequence.
//!
//! # Durability
//!
//! Every append writes through to the operating system before returning
//! (`BufWriter` is flushed per record), which survives process crashes —
//! the failure mode the exploration service actually recovers from.
//! [`Wal::sync`] additionally `fsync`s for machine-crash durability; the
//! service calls it at compaction points rather than per record.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use spi_model::digest::digest_bytes;
use spi_model::json::JsonValue;

use crate::error::{Result, StoreError};

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.json";
const LOCK_FILE: &str = "lock";

/// Everything [`Wal::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The latest snapshot state, if a snapshot was ever written.
    pub snapshot: Option<JsonValue>,
    /// Replayable records appended after the snapshot, in append order.
    pub records: Vec<JsonValue>,
    /// How many trailing bytes were discarded as a torn tail (0 on a clean
    /// shutdown). Exposed so operators can observe imperfect recoveries.
    pub truncated_bytes: u64,
}

impl Recovered {
    /// True when nothing was ever written (fresh directory).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.records.is_empty()
    }
}

/// An open write-ahead log; see the module docs for the format.
pub struct Wal {
    wal_path: PathBuf,
    snapshot_path: PathBuf,
    writer: BufWriter<File>,
    next_seq: u64,
    /// Size of `wal.log` in bytes (after torn-tail truncation); lets owners
    /// trigger compaction once the log outgrows a budget.
    log_bytes: u64,
    /// Held for the Wal's lifetime; the OS releases it when the process dies
    /// (including `kill -9`), so a crashed daemon never wedges its store.
    _lock: File,
}

fn checksum_line(value: &JsonValue) -> String {
    digest_bytes(value.to_line().as_bytes()).to_string()
}

fn frame(seq: u64, key: &str, payload: &JsonValue) -> JsonValue {
    JsonValue::object([
        ("seq", JsonValue::Int(i128::from(seq))),
        ("crc", JsonValue::string(checksum_line(payload))),
        (key, payload.clone()),
    ])
}

/// Parses one framed line; `Ok` carries `(seq, payload)`.
fn unframe(line: &str, key: &str) -> std::result::Result<(u64, JsonValue), String> {
    let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
    let seq = value
        .get("seq")
        .and_then(JsonValue::as_u64)
        .ok_or("missing seq")?;
    let crc = value
        .get("crc")
        .and_then(JsonValue::as_str)
        .ok_or("missing crc")?;
    let payload = value.get(key).ok_or("missing payload")?;
    if checksum_line(payload) != crc {
        return Err(format!("checksum mismatch at seq {seq}"));
    }
    Ok((seq, payload.clone()))
}

impl Wal {
    /// Opens (creating if needed) the store at `dir`, recovering its state.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`StoreError::Corrupt`] when the snapshot itself fails
    /// verification (a corrupt snapshot cannot be truncated away — the data
    /// it compacted is gone, so recovery refuses to guess).
    pub fn open(dir: impl AsRef<Path>) -> Result<(Wal, Recovered)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join(WAL_FILE);
        let snapshot_path = dir.join(SNAPSHOT_FILE);

        // One writer per store directory: two daemons appending with
        // independent sequence counters would interleave records, and the
        // next recovery would truncate everything after the first
        // out-of-order line — silent loss of acknowledged commits. The OS
        // advisory lock dies with the process, so a `kill -9` leaves the
        // store immediately reopenable.
        let lock = File::create(dir.join(LOCK_FILE))?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Corrupt(format!(
                    "store directory {} is locked by another process",
                    dir.display()
                )));
            }
            Err(std::fs::TryLockError::Error(error)) => return Err(error.into()),
        }

        let (snapshot, snapshot_seq) = match std::fs::read_to_string(&snapshot_path) {
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => (None, 0),
            Err(error) => return Err(error.into()),
            Ok(text) => {
                let line = text.trim();
                if line.is_empty() {
                    (None, 0)
                } else {
                    let (seq, state) = unframe(line, "state")
                        .map_err(|why| StoreError::Corrupt(format!("snapshot: {why}")))?;
                    (Some(state), seq)
                }
            }
        };

        let mut records = Vec::new();
        let mut next_seq = snapshot_seq + u64::from(snapshot.is_some());
        let mut good_bytes = 0u64;
        let mut total_bytes = 0u64;
        match File::open(&wal_path) {
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
            Err(error) => return Err(error.into()),
            Ok(file) => {
                total_bytes = file.metadata()?.len();
                let mut reader = BufReader::new(file);
                let mut line = String::new();
                loop {
                    line.clear();
                    let read = reader.read_line(&mut line)?;
                    if read == 0 {
                        break;
                    }
                    // A record is only valid if newline-terminated (a torn
                    // append may stop mid-line yet still parse as JSON).
                    if !line.ends_with('\n') {
                        break;
                    }
                    let Ok((seq, payload)) = unframe(line.trim_end(), "rec") else {
                        break;
                    };
                    if seq < next_seq && snapshot.is_some() {
                        // Pre-snapshot leftovers (rotation crashed between
                        // snapshot write and truncate): already compacted.
                        good_bytes += read as u64;
                        continue;
                    }
                    if seq != next_seq {
                        break;
                    }
                    next_seq = seq + 1;
                    good_bytes += read as u64;
                    records.push(payload);
                }
            }
        }
        let truncated_bytes = total_bytes.saturating_sub(good_bytes);
        if truncated_bytes > 0 {
            // Torn tail: cut it so future appends start on a clean boundary.
            let file = OpenOptions::new().write(true).open(&wal_path)?;
            file.set_len(good_bytes)?;
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)?;
        Ok((
            Wal {
                wal_path,
                snapshot_path,
                writer: BufWriter::new(file),
                next_seq,
                log_bytes: good_bytes,
                _lock: lock,
            },
            Recovered {
                snapshot,
                records,
                truncated_bytes,
            },
        ))
    }

    /// Appends one record, flushing it to the operating system, and returns
    /// its sequence number.
    ///
    /// # Errors
    ///
    /// I/O errors; on error the record must be considered not written.
    pub fn append(&mut self, record: &JsonValue) -> Result<u64> {
        let seq = self.next_seq;
        let line = frame(seq, "rec", record).to_line();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.next_seq = seq + 1;
        self.log_bytes += line.len() as u64 + 1;
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn sync(&mut self) -> Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// Replaces the snapshot with `state` (covering every record appended so
    /// far) and truncates the log — the compaction step. Crash-ordering: the
    /// snapshot is written to a temporary file, synced, atomically renamed
    /// into place, and only then is the log truncated, so every instant in
    /// between recovers to the same state.
    ///
    /// Returns the log size in bytes that the compaction reclaimed, which is
    /// what trace capture records for a `wal_compact` decision.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn compact(&mut self, state: &JsonValue) -> Result<u64> {
        let reclaimed = self.log_bytes;
        self.sync()?;
        let seq = self.next_seq.saturating_sub(1);
        let line = frame(seq, "state", state).to_line();
        let tmp_path = self.snapshot_path.with_extension("tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(line.as_bytes())?;
            tmp.write_all(b"\n")?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.snapshot_path)?;
        // Reopen truncating: the old appender's cursor would leave a hole.
        let file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.wal_path)?;
        file.sync_all()?;
        let file = OpenOptions::new().append(true).open(&self.wal_path)?;
        self.writer = BufWriter::new(file);
        self.next_seq = seq + 1;
        self.log_bytes = 0;
        Ok(reclaimed)
    }

    /// Current size of the log file in bytes (0 right after a compaction).
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spi-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(n: i128) -> JsonValue {
        JsonValue::object([("t", JsonValue::string("test")), ("n", JsonValue::Int(n))])
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let dir = temp_dir("replay");
        {
            let (mut wal, recovered) = Wal::open(&dir).unwrap();
            assert!(recovered.is_empty());
            for n in 0..5 {
                assert_eq!(wal.append(&record(n)).unwrap(), n as u64);
            }
        }
        let (mut wal, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.truncated_bytes, 0);
        assert_eq!(recovered.records, (0..5).map(record).collect::<Vec<_>>());
        assert_eq!(wal.append(&record(5)).unwrap(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = temp_dir("torn");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&record(0)).unwrap();
            wal.append(&record(1)).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the final line.
        let path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 7)
            .unwrap();
        let (mut wal, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![record(0)]);
        assert!(recovered.truncated_bytes > 0);
        // The sequence continues from the surviving prefix.
        assert_eq!(wal.append(&record(9)).unwrap(), 1);
        drop(wal);
        let (_, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![record(0), record(9)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_record_stops_replay_at_the_last_good_line() {
        let dir = temp_dir("flip");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for n in 0..3 {
                wal.append(&record(n)).unwrap();
            }
        }
        // Flip a payload byte in the middle record: its crc must fail and
        // replay must stop *before* it (it cannot prove the tail's order).
        let path = dir.join(WAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"n\":1", "\"n\":7", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        let (_, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![record(0)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_snapshots_and_truncates() {
        let dir = temp_dir("compact");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            for n in 0..4 {
                wal.append(&record(n)).unwrap();
            }
            wal.compact(&JsonValue::object([("upto", JsonValue::Int(3))]))
                .unwrap();
            wal.append(&record(4)).unwrap();
        }
        let (_, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(
            recovered.snapshot,
            Some(JsonValue::object([("upto", JsonValue::Int(3))]))
        );
        assert_eq!(recovered.records, vec![record(4)]);
        assert_eq!(recovered.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = temp_dir("badsnap");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append(&record(0)).unwrap();
            wal.compact(&record(0)).unwrap();
        }
        let path = dir.join(SNAPSHOT_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replacen("\"t\"", "\"u\"", 1)).unwrap();
        assert!(matches!(Wal::open(&dir), Err(StoreError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_opener_is_rejected_until_the_first_closes() {
        let dir = temp_dir("lock");
        let (wal, _) = Wal::open(&dir).unwrap();
        assert!(matches!(Wal::open(&dir), Err(StoreError::Corrupt(_))));
        drop(wal);
        // The lock dies with the handle (and with the process, under kill -9).
        assert!(Wal::open(&dir).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_bytes_tracks_the_file_across_appends_compaction_and_reopen() {
        let dir = temp_dir("logbytes");
        {
            let (mut wal, _) = Wal::open(&dir).unwrap();
            assert_eq!(wal.log_bytes(), 0);
            wal.append(&record(0)).unwrap();
            wal.append(&record(1)).unwrap();
            let on_disk = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
            assert_eq!(wal.log_bytes(), on_disk);
            wal.compact(&record(0)).unwrap();
            assert_eq!(wal.log_bytes(), 0);
            wal.append(&record(2)).unwrap();
            assert!(wal.log_bytes() > 0);
        }
        let (wal, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.records, vec![record(2)]);
        let on_disk = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(wal.log_bytes(), on_disk, "reopen resumes the byte count");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_is_callable_and_preserves_records() {
        let dir = temp_dir("sync");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(&record(1)).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.next_seq(), 1);
        drop(wal);
        let (_, recovered) = Wal::open(&dir).unwrap();
        assert_eq!(recovered.records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
