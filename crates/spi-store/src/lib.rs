//! # spi-store
//!
//! Durable state and scheduling policy for the exploration service — the
//! layer that lets `spi-explore` survive restarts, skip repeat work and stay
//! fair under multi-tenant load:
//!
//! * [`wal`] — an append-only, checksummed write-ahead log with
//!   snapshot+replay recovery (`wal.log` + `snapshot.json` in a store
//!   directory). Records are opaque [`JsonValue`](spi_model::json::JsonValue)s; the registry in
//!   `spi-explore` defines the actual transition records and replays them.
//! * [`cache`] — a content-addressed result cache keyed by the
//!   [`Digest`](spi_model::digest::Digest) of the canonical JSON identifying
//!   a computation; repeat submissions become O(1) lookups instead of
//!   worker-pool sweeps.
//! * [`sched`] — weighted-fair queuing across tenants
//!   ([`FairScheduler`]) and the latency bookkeeping behind hedged
//!   re-leases for straggler shards ([`LatencyTracker`], [`HedgeConfig`]).
//! * [`trace`] — a bounded ring of every scheduler decision
//!   ([`TraceCapture`]) plus an offline checker ([`TraceReplay`]) that
//!   asserts WFQ's proportional-share bound and exactly-once lease
//!   accounting over any captured run, and bounded live subscriptions
//!   ([`TraceSubscription`]) that stream decisions as they happen without
//!   ever blocking the scheduler.
//! * [`metrics`] — lock-free counters, gauges and log-linear bounded-error
//!   histograms ([`Histogram`]), organized in a [`MetricsRegistry`] with
//!   static metric ids and per-tenant label handles; the continuous
//!   aggregate layer next to the event-level trace.
//! * [`span`] — hierarchical phase spans ([`SpanRecorder`], [`SpanSink`]):
//!   monotonic enter/exit pairs in bounded per-worker rings, carrying
//!   parent ids, static [`PhaseId`]s, waitgraph-compatible attribution and
//!   the trace-seq window they overlapped; aggregated into per-phase
//!   [`Profile`]s with folded flamegraph stacks and critical paths, or
//!   exported as Chrome trace-event JSON ([`span::chrome_trace`]).
//!
//! The crate deliberately knows nothing about jobs, leases or evaluators:
//! everything is expressed over raw ids and JSON payloads, so the store can
//! be tested exhaustively on its own and reused by any future service layer.
//!
//! ```rust
//! use spi_model::json::JsonValue;
//! use spi_store::{Wal, ResultCache, FairScheduler};
//!
//! # fn main() -> Result<(), spi_store::StoreError> {
//! let dir = std::env::temp_dir().join(format!("spi-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let (mut wal, recovered) = Wal::open(&dir)?;
//! assert!(recovered.is_empty());
//! wal.append(&JsonValue::object([("t", JsonValue::string("submit"))]))?;
//!
//! // ... crash, restart:
//! drop(wal);
//! let (_wal, recovered) = Wal::open(&dir)?;
//! assert_eq!(recovered.records.len(), 1);
//! # let _ = std::fs::remove_dir_all(&dir);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod metrics;
pub mod sched;
pub mod span;
pub mod trace;
pub mod wal;

pub use cache::{CacheLimit, ResultCache};
pub use error::{Result, StoreError};
pub use metrics::{
    Counter, CounterId, Gauge, GaugeId, Histogram, HistogramId, MetricsRegistry, TenantMetrics,
};
pub use sched::{Dispatch, Entry, FairScheduler, HedgeConfig, LatencyTracker};
pub use span::{
    CriticalPath, PhaseId, Profile, Span, SpanDrain, SpanIds, SpanRecorder, SpanSink, SpanStamp,
    DEFAULT_SPAN_CAPACITY,
};
pub use trace::{
    ReplayReport, TraceCapture, TraceDrain, TraceEvent, TraceReplay, TraceSubscription, TracedEvent,
};
pub use wal::{Recovered, Wal};
