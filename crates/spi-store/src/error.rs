//! Error type of the store layer.

use std::fmt;

/// Error raised by the WAL, snapshot or cache machinery.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// An I/O operation on the store directory failed.
    Io(std::io::Error),
    /// A record or snapshot failed checksum or shape validation. Recovery
    /// treats a corrupt *tail* as a torn write and truncates it; corruption
    /// anywhere else surfaces as this error.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(message) => write!(f, "store corruption: {message}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let io: StoreError = std::io::Error::other("disk full").into();
        assert!(io.to_string().contains("disk full"));
        assert!(std::error::Error::source(&io).is_some());
        let corrupt = StoreError::Corrupt("bad crc".into());
        assert!(corrupt.to_string().contains("bad crc"));
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}
