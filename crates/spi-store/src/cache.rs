//! The content-addressed result cache.
//!
//! Completed exploration results are stored under the [`Digest`] of the
//! canonical JSON identifying the computation — for the exploration service,
//! `{system recipe, variant space, evaluator spec}`. A resubmission of the
//! same content hits the cache and is served without touching the worker
//! pool: the paper's whole premise is that the same variant spaces get
//! re-optimized many times under changing constraints, so repeat jobs are
//! the common case, not the exception.
//!
//! The cache itself is a dumb, deterministic map — durability comes from the
//! owning registry, which rebuilds it during WAL replay (every completed job
//! with a digest reinserts its committed result) and carries it inside
//! snapshots via [`ResultCache::to_snapshot`] / [`ResultCache::from_snapshot`].

use std::collections::BTreeMap;

use spi_model::digest::Digest;
use spi_model::json::{JsonError, JsonResult, JsonValue};

/// A content-addressed map from digest to an opaque result payload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultCache {
    // BTreeMap: deterministic snapshot order, so equal caches serialize
    // byte-identically and snapshots diff cleanly.
    entries: BTreeMap<Digest, JsonValue>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// Stores `result` under `digest`, replacing any previous entry (the
    /// digest is a content address, so a replacement is byte-identical
    /// anyway unless the evaluator is nondeterministic).
    pub fn insert(&mut self, digest: Digest, result: JsonValue) {
        self.entries.insert(digest, result);
    }

    /// Looks up `digest`, counting the hit/miss.
    pub fn lookup(&mut self, digest: Digest) -> Option<&JsonValue> {
        match self.entries.get(&digest) {
            Some(result) => {
                self.hits += 1;
                Some(result)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the hit/miss counters.
    pub fn peek(&self, digest: Digest) -> Option<&JsonValue> {
        self.entries.get(&digest)
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime lookup hits (this process; counters are not persisted).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses (this process).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The snapshot form: an object of `digest-hex → result` members in
    /// digest order.
    pub fn to_snapshot(&self) -> JsonValue {
        JsonValue::Object(
            self.entries
                .iter()
                .map(|(digest, result)| (digest.to_string(), result.clone()))
                .collect(),
        )
    }

    /// Rebuilds a cache from its snapshot form.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not an object of digest-keyed members.
    pub fn from_snapshot(value: &JsonValue) -> JsonResult<ResultCache> {
        let members = value
            .as_object()
            .ok_or_else(|| JsonError::new("expected an object for ResultCache"))?;
        let mut cache = ResultCache::new();
        for (key, result) in members {
            cache.insert(Digest::parse(key)?, result.clone());
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::digest::digest_bytes;

    #[test]
    fn insert_lookup_and_counters() {
        let mut cache = ResultCache::new();
        let key = digest_bytes(b"job-a");
        assert!(cache.lookup(key).is_none());
        cache.insert(key, JsonValue::Int(42));
        assert_eq!(cache.lookup(key), Some(&JsonValue::Int(42)));
        assert_eq!(cache.peek(key), Some(&JsonValue::Int(42)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut cache = ResultCache::new();
        cache.insert(digest_bytes(b"x"), JsonValue::string("rx"));
        cache.insert(digest_bytes(b"y"), JsonValue::Int(7));
        let snapshot = cache.to_snapshot();
        let back = ResultCache::from_snapshot(&snapshot).unwrap();
        assert_eq!(
            back.peek(digest_bytes(b"x")),
            Some(&JsonValue::string("rx"))
        );
        assert_eq!(back.peek(digest_bytes(b"y")), Some(&JsonValue::Int(7)));
        assert_eq!(back.to_snapshot().to_line(), snapshot.to_line());
        assert!(ResultCache::from_snapshot(&JsonValue::Int(1)).is_err());
        assert!(ResultCache::from_snapshot(&JsonValue::object([("zz", JsonValue::Null)])).is_err());
    }
}
