//! The content-addressed result cache.
//!
//! Completed exploration results are stored under the [`Digest`] of the
//! canonical JSON identifying the computation — for the exploration service,
//! `{system recipe, variant space, evaluator spec}`. A resubmission of the
//! same content hits the cache and is served without touching the worker
//! pool: the paper's whole premise is that the same variant spaces get
//! re-optimized many times under changing constraints, so repeat jobs are
//! the common case, not the exception.
//!
//! The cache is bounded by an optional [`CacheLimit`] (entry count and/or
//! total payload bytes); past the limit the least-recently-used entry is
//! evicted, deterministically (ties broken by digest order). Durability
//! comes from the owning registry, which rebuilds it during WAL replay
//! (every completed job with a digest reinserts its committed result) and
//! carries it inside snapshots via [`ResultCache::to_snapshot`] /
//! [`ResultCache::from_snapshot`].

use std::collections::BTreeMap;

use spi_model::digest::Digest;
use spi_model::json::{JsonError, JsonResult, JsonValue};

/// An optional bound on a [`ResultCache`]. `None` fields are unbounded; the
/// default is fully unbounded, preserving the historical behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLimit {
    /// Maximum number of cached results.
    pub max_entries: Option<usize>,
    /// Maximum total payload size, measured as the serialized
    /// (`JsonValue::to_line`) byte length of the cached values.
    pub max_bytes: Option<usize>,
}

impl CacheLimit {
    /// No bound at all.
    pub const UNBOUNDED: CacheLimit = CacheLimit {
        max_entries: None,
        max_bytes: None,
    };

    /// Bound by entry count only.
    pub fn entries(max_entries: usize) -> CacheLimit {
        CacheLimit {
            max_entries: Some(max_entries),
            max_bytes: None,
        }
    }

    /// Bound by total payload bytes only.
    pub fn bytes(max_bytes: usize) -> CacheLimit {
        CacheLimit {
            max_entries: None,
            max_bytes: Some(max_bytes),
        }
    }

    /// True when neither bound is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// One cached payload plus the bookkeeping the LRU policy needs.
#[derive(Debug, Clone)]
struct CacheEntry {
    value: JsonValue,
    bytes: usize,
    last_used: u64,
}

/// A content-addressed map from digest to an opaque result payload.
#[derive(Debug, Clone, Default)]
pub struct ResultCache {
    // BTreeMap: deterministic snapshot order, so equal caches serialize
    // byte-identically and snapshots diff cleanly.
    entries: BTreeMap<Digest, CacheEntry>,
    limit: CacheLimit,
    // Logical recency clock: bumped on insert and lookup. Not persisted —
    // a restore starts with recency in digest order, which is deterministic.
    clock: u64,
    total_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

// Cache identity is its contents, not its access history: two caches holding
// the same payloads are equal even if their recency clocks and counters
// differ (e.g. one was restored from a snapshot).
impl PartialEq for ResultCache {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .zip(other.entries.iter())
                .all(|((da, ea), (db, eb))| da == db && ea.value == eb.value)
    }
}

impl ResultCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ResultCache::default()
    }

    /// An empty cache with the given bound.
    pub fn with_limit(limit: CacheLimit) -> Self {
        ResultCache {
            limit,
            ..ResultCache::default()
        }
    }

    /// The active bound.
    pub fn limit(&self) -> CacheLimit {
        self.limit
    }

    /// Replaces the bound and immediately evicts down to it.
    pub fn set_limit(&mut self, limit: CacheLimit) {
        self.limit = limit;
        self.evict_to_limit();
    }

    /// Stores `result` under `digest`, replacing any previous entry (the
    /// digest is a content address, so a replacement is byte-identical
    /// anyway unless the evaluator is nondeterministic), then evicts
    /// least-recently-used entries until the cache is within its limit.
    /// Returns how many entries this insert evicted, so callers can trace
    /// cache pressure without re-deriving it from the lifetime counter.
    pub fn insert(&mut self, digest: Digest, result: JsonValue) -> u64 {
        let bytes = result.to_line().len();
        self.clock += 1;
        let entry = CacheEntry {
            value: result,
            bytes,
            last_used: self.clock,
        };
        self.total_bytes += bytes;
        if let Some(old) = self.entries.insert(digest, entry) {
            self.total_bytes -= old.bytes;
        }
        let before = self.evictions;
        self.evict_to_limit();
        self.evictions - before
    }

    /// Looks up `digest`, counting the hit/miss and refreshing the entry's
    /// recency on a hit.
    pub fn lookup(&mut self, digest: Digest) -> Option<&JsonValue> {
        match self.entries.get_mut(&digest) {
            Some(entry) => {
                self.hits += 1;
                self.clock += 1;
                entry.last_used = self.clock;
                Some(&entry.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching the hit/miss counters or the entry's recency.
    pub fn peek(&self, digest: Digest) -> Option<&JsonValue> {
        self.entries.get(&digest).map(|entry| &entry.value)
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total serialized payload size of the cached results.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Lifetime lookup hits (this process; counters are not persisted).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses (this process).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime evictions (this process; not persisted).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evicts least-recently-used entries (digest order breaks ties) until
    /// both bounds hold.
    fn evict_to_limit(&mut self) {
        loop {
            let over_entries = self
                .limit
                .max_entries
                .is_some_and(|max| self.entries.len() > max);
            let over_bytes = self
                .limit
                .max_bytes
                .is_some_and(|max| self.total_bytes > max);
            if !over_entries && !over_bytes {
                return;
            }
            // O(n) scan per eviction: the cache holds at most a few thousand
            // job results, and evictions are rare next to lookups.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(digest, entry)| (entry.last_used, **digest))
                .map(|(digest, _)| *digest)
                .expect("over a limit implies at least one entry");
            let evicted = self
                .entries
                .remove(&victim)
                .expect("victim digest was just found in the map");
            self.total_bytes -= evicted.bytes;
            self.evictions += 1;
        }
    }

    /// The snapshot form: an object of `digest-hex → result` members in
    /// digest order. Recency and counters are not persisted.
    pub fn to_snapshot(&self) -> JsonValue {
        JsonValue::Object(
            self.entries
                .iter()
                .map(|(digest, entry)| (digest.to_string(), entry.value.clone()))
                .collect(),
        )
    }

    /// Rebuilds an unbounded cache from its snapshot form (apply a bound
    /// afterwards with [`ResultCache::set_limit`]). Restored entries start
    /// with recency in digest order.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the value is not an object of digest-keyed members.
    pub fn from_snapshot(value: &JsonValue) -> JsonResult<ResultCache> {
        let members = value
            .as_object()
            .ok_or_else(|| JsonError::new("expected an object for ResultCache"))?;
        let mut cache = ResultCache::new();
        for (key, result) in members {
            cache.insert(Digest::parse(key)?, result.clone());
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::digest::digest_bytes;

    #[test]
    fn insert_lookup_and_counters() {
        let mut cache = ResultCache::new();
        let key = digest_bytes(b"job-a");
        assert!(cache.lookup(key).is_none());
        cache.insert(key, JsonValue::Int(42));
        assert_eq!(cache.lookup(key), Some(&JsonValue::Int(42)));
        assert_eq!(cache.peek(key), Some(&JsonValue::Int(42)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        assert_eq!(cache.total_bytes(), JsonValue::Int(42).to_line().len());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut cache = ResultCache::new();
        cache.insert(digest_bytes(b"x"), JsonValue::string("rx"));
        cache.insert(digest_bytes(b"y"), JsonValue::Int(7));
        let snapshot = cache.to_snapshot();
        let back = ResultCache::from_snapshot(&snapshot).unwrap();
        assert_eq!(
            back.peek(digest_bytes(b"x")),
            Some(&JsonValue::string("rx"))
        );
        assert_eq!(back.peek(digest_bytes(b"y")), Some(&JsonValue::Int(7)));
        assert_eq!(back.to_snapshot().to_line(), snapshot.to_line());
        assert_eq!(back, cache, "restored cache must equal the original");
        assert!(ResultCache::from_snapshot(&JsonValue::Int(1)).is_err());
        assert!(ResultCache::from_snapshot(&JsonValue::object([("zz", JsonValue::Null)])).is_err());
    }

    #[test]
    fn entry_limit_evicts_least_recently_used() {
        let (a, b, c) = (digest_bytes(b"a"), digest_bytes(b"b"), digest_bytes(b"c"));
        let mut cache = ResultCache::with_limit(CacheLimit::entries(2));
        cache.insert(a, JsonValue::Int(1));
        cache.insert(b, JsonValue::Int(2));
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert!(cache.lookup(a).is_some());
        cache.insert(c, JsonValue::Int(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(a).is_some());
        assert!(cache.peek(b).is_none(), "LRU entry must be evicted");
        assert!(cache.peek(c).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn byte_limit_evicts_until_within_budget() {
        let payload = JsonValue::string("0123456789");
        let one = payload.to_line().len();
        let mut cache = ResultCache::with_limit(CacheLimit::bytes(2 * one));
        cache.insert(digest_bytes(b"a"), payload.clone());
        cache.insert(digest_bytes(b"b"), payload.clone());
        assert_eq!(cache.len(), 2);
        cache.insert(digest_bytes(b"c"), payload.clone());
        assert_eq!(cache.len(), 2, "third insert must evict one entry");
        assert!(cache.total_bytes() <= 2 * one);
        // A payload bigger than the whole budget empties the cache but still
        // terminates deterministically.
        cache.insert(digest_bytes(b"big"), JsonValue::string("x".repeat(64)));
        assert!(cache.is_empty());
    }

    #[test]
    fn tightening_the_limit_evicts_immediately_and_reinsert_updates_bytes() {
        let mut cache = ResultCache::new();
        for i in 0..5u8 {
            cache.insert(digest_bytes(&[i]), JsonValue::Int(i as i128));
        }
        cache.set_limit(CacheLimit::entries(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 3);
        // Replacing an entry accounts bytes for the new payload only.
        let key = digest_bytes(b"replace");
        let mut solo = ResultCache::new();
        solo.insert(key, JsonValue::string("a".repeat(100)));
        solo.insert(key, JsonValue::Int(1));
        assert_eq!(solo.total_bytes(), JsonValue::Int(1).to_line().len());
    }
}
