//! Scheduling policy: weighted-fair queuing across tenants and hedged
//! re-leasing of straggler shards.
//!
//! # Weighted-fair queuing
//!
//! The service's original dispatch order was a single FIFO of `(job, shard)`
//! pairs — one tenant submitting a `2^20`-combination space starved every
//! later submitter until its last shard drained. [`FairScheduler`] replaces
//! it with classic virtual-time WFQ: each tenant owns a FIFO of entries and
//! a *finish tag*; a dispatch picks the non-empty tenant with the smallest
//! tag and advances that tag by `SCALE / weight`. A tenant enqueueing into
//! an empty queue starts at the current virtual time, so newcomers interleave
//! immediately instead of queuing behind the backlog, and a weight-`w` tenant
//! receives `w` shards for every one a weight-1 tenant gets.
//!
//! The scheduler is deliberately oblivious to registry state: it hands out
//! *candidate* entries and the registry skips stale ones (shard already
//! leased, job cancelled), exactly like the FIFO it replaces.
//!
//! # Hedged re-leasing
//!
//! A shard whose worker is slow — overloaded machine, degraded evaluator,
//! one pathological variant — holds its lease until the timeout even though
//! the rest of the job finished long ago. [`LatencyTracker`] keeps each
//! job's completed-shard durations; once enough samples exist, a shard
//! in flight for longer than `multiplier × quantile(q)` is eligible for a
//! **hedge**: a duplicate lease handed to an idle worker. Whichever lease
//! commits first wins the shard; the loser's flushes turn stale and are
//! discarded — the registry's staged/committed split already guarantees
//! exactly-once accounting, so hedging never double-counts.

use std::collections::{BTreeMap, VecDeque};

/// Fixed-point scale for virtual time (so integer weights divide cleanly).
/// One dispatch advances a weight-`w` tenant's finish tag by `SCALE / w`, so
/// `SCALE` is also the natural unit for fairness bounds over traces.
pub const SCALE: u64 = 1 << 20;

/// A schedulable unit: the raw job id and the shard index within it.
pub type Entry = (u64, usize);

struct TenantQueue {
    weight: u32,
    finish: u64,
    queue: VecDeque<Entry>,
}

/// Virtual-time weighted-fair queue of `(job, shard)` entries across tenants.
#[derive(Default)]
pub struct FairScheduler {
    virtual_now: u64,
    tenants: BTreeMap<String, TenantQueue>,
    len: usize,
}

impl FairScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        FairScheduler::default()
    }

    /// Enqueues an entry for `tenant` at `weight` (clamped to ≥ 1; the last
    /// submission's weight wins for the whole tenant).
    pub fn enqueue(&mut self, tenant: &str, weight: u32, entry: Entry) {
        let virtual_now = self.virtual_now;
        let slot = self
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantQueue {
                weight: weight.max(1),
                finish: virtual_now,
                queue: VecDeque::new(),
            });
        slot.weight = weight.max(1);
        if slot.queue.is_empty() {
            // A newly-busy tenant joins at the current virtual time: it gets
            // its fair share immediately but no credit for having been idle.
            slot.finish = slot.finish.max(virtual_now);
        }
        slot.queue.push_back(entry);
        self.len += 1;
    }

    /// Dispatches the next entry under the WFQ policy, if any.
    pub fn dequeue(&mut self) -> Option<Entry> {
        self.dequeue_dispatch().map(|dispatch| dispatch.entry)
    }

    /// Dispatches the next entry together with the scheduler-truth metadata
    /// the decision was made with — the tenant charged, the weight its finish
    /// tag advanced by, and the virtual time of the dispatch. This is what
    /// trace capture records: the *scheduler's* view, not the job's, which
    /// matters when a later submission rewrote the tenant weight mid-backlog.
    pub fn dequeue_dispatch(&mut self) -> Option<Dispatch> {
        let (name, _) = self
            .tenants
            .iter()
            .filter(|(_, slot)| !slot.queue.is_empty())
            // Deterministic tie-break on the tenant name (BTreeMap order).
            .min_by_key(|(name, slot)| (slot.finish, name.as_str()))
            .map(|(name, slot)| (name.clone(), slot.finish))?;
        let slot = self.tenants.get_mut(&name).expect("tenant exists");
        let entry = slot.queue.pop_front().expect("queue non-empty");
        self.virtual_now = slot.finish;
        let weight = slot.weight.max(1);
        slot.finish += SCALE / u64::from(weight);
        self.len -= 1;
        Some(Dispatch {
            tenant: name,
            weight,
            entry,
            vtime: self.virtual_now,
        })
    }

    /// The current virtual time (the finish tag of the last dispatch).
    pub fn virtual_now(&self) -> u64 {
        self.virtual_now
    }

    /// Entries currently queued (including ones the registry may later skip
    /// as stale).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tenants that currently have queued entries.
    pub fn busy_tenants(&self) -> impl Iterator<Item = &str> {
        self.tenants
            .iter()
            .filter(|(_, slot)| !slot.queue.is_empty())
            .map(|(name, _)| name.as_str())
    }

    /// Entries currently queued for `tenant` (0 for unknown tenants).
    pub fn tenant_backlog(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |slot| slot.queue.len())
    }

    /// How far `tenant`'s finish tag trails the scheduler's virtual time, in
    /// virtual-time units (0 for unknown or up-to-date tenants). A growing
    /// lag on a tenant with backlog means the tenant is owed service — the
    /// metric the starvation watchdog watches.
    pub fn tenant_vtime_lag(&self, tenant: &str) -> u64 {
        self.tenants
            .get(tenant)
            .map_or(0, |slot| self.virtual_now.saturating_sub(slot.finish))
    }
}

/// One WFQ dispatch with the metadata the decision was made under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    /// Tenant whose queue the entry was taken from.
    pub tenant: String,
    /// Weight in force when the tenant's finish tag advanced (post-clamp).
    pub weight: u32,
    /// The dispatched `(job, shard)` entry.
    pub entry: Entry,
    /// Virtual time of the dispatch (the dispatching tenant's finish tag).
    pub vtime: u64,
}

/// Tunables of the speculative re-leasing policy. Integer-valued so configs
/// stay `Eq` and behave identically on every platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Master switch.
    pub enabled: bool,
    /// The latency quantile (in percent, 1..=100) a straggler must exceed.
    pub quantile_pct: u8,
    /// Multiplier (in percent) applied to the quantile: 200 means a shard
    /// must run 2× the quantile before a hedge is considered.
    pub multiplier_pct: u32,
    /// Completed-shard samples required before hedging activates (too few
    /// samples make the quantile meaningless).
    pub min_samples: usize,
    /// Maximum duplicate leases per shard beyond the primary.
    pub max_hedges: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            quantile_pct: 95,
            multiplier_pct: 200,
            min_samples: 3,
            max_hedges: 1,
        }
    }
}

impl HedgeConfig {
    /// A disabled policy (pure WFQ, no speculative leases).
    pub fn disabled() -> Self {
        HedgeConfig {
            enabled: false,
            ..HedgeConfig::default()
        }
    }
}

/// Completed-duration samples for one job's shards, bounded in memory.
///
/// Past the cap the tracker keeps a classic **reservoir** (Algorithm R): each
/// of the `observed` durations survives with equal probability, so quantiles
/// stay unbiased estimates of the full run instead of drifting toward the
/// high tail as the old drop-the-smallest policy did. The exact maximum is
/// tracked separately — `quantile_ns(100)` never under-reports the worst
/// shard, which is what the hedging policy's tail honesty rests on.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    /// Sorted ascending; bounded to keep per-job state O(1)-ish.
    samples_ns: Vec<u64>,
    observed: u64,
    /// Exact maximum over *all* observations, evicted or not.
    max_ns: u64,
    /// Deterministic LCG state for reservoir replacement (no RNG crate; the
    /// tracker must behave identically on every platform and in replays).
    rng: u64,
}

/// Sample cap: enough resolution for a p95 over any realistic shard count.
const MAX_SAMPLES: usize = 512;

impl LatencyTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        LatencyTracker::default()
    }

    /// Records one completed-shard duration.
    pub fn record_ns(&mut self, duration_ns: u64) {
        self.observed += 1;
        self.max_ns = self.max_ns.max(duration_ns);
        if self.samples_ns.len() < MAX_SAMPLES {
            let at = self.samples_ns.partition_point(|&s| s <= duration_ns);
            self.samples_ns.insert(at, duration_ns);
            return;
        }
        // Algorithm R: keep the newcomer with probability cap/observed by
        // drawing a uniform slot in 0..observed; a slot under the cap evicts
        // that reservoir element (the draw is independent of the values, so
        // a sorted-rank index is still a uniformly chosen victim).
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let slot = (self.rng >> 33) % self.observed;
        if let Ok(victim) = usize::try_from(slot) {
            if victim < MAX_SAMPLES {
                self.samples_ns.remove(victim);
                let at = self.samples_ns.partition_point(|&s| s <= duration_ns);
                self.samples_ns.insert(at, duration_ns);
            }
        }
    }

    /// Samples recorded so far (uncapped count).
    pub fn count(&self) -> u64 {
        self.observed
    }

    /// The `pct`-th percentile of recorded durations, if any: nearest-rank
    /// over the reservoir, except `pct = 100` which reports the exact maximum
    /// ever observed (the reservoir may have evicted it).
    pub fn quantile_ns(&self, pct: u8) -> Option<u64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let pct = u64::from(pct.clamp(1, 100));
        if pct == 100 {
            return Some(self.max_ns);
        }
        let rank = ((pct * self.samples_ns.len() as u64).div_ceil(100)).max(1) as usize;
        Some(self.samples_ns[rank.min(self.samples_ns.len()) - 1])
    }

    /// The in-flight duration beyond which a shard counts as a straggler
    /// under `config`, or `None` while hedging is inactive (disabled or not
    /// enough samples yet). The gate compares the *uncapped* observation
    /// count — a `min_samples` above the reservoir cap must delay hedging,
    /// not disable it forever.
    pub fn hedge_threshold_ns(&self, config: &HedgeConfig) -> Option<u64> {
        if !config.enabled || self.observed < config.min_samples as u64 {
            return None;
        }
        let quantile = self.quantile_ns(config.quantile_pct)?;
        Some(quantile.saturating_mul(u64::from(config.multiplier_pct)) / 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo() {
        let mut scheduler = FairScheduler::new();
        for shard in 0..5 {
            scheduler.enqueue("solo", 1, (0, shard));
        }
        let order: Vec<usize> = std::iter::from_fn(|| scheduler.dequeue())
            .map(|(_, shard)| shard)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(scheduler.is_empty());
    }

    #[test]
    fn late_small_tenant_interleaves_instead_of_waiting() {
        let mut scheduler = FairScheduler::new();
        for shard in 0..100 {
            scheduler.enqueue("whale", 1, (0, shard));
        }
        // Drain a few whale shards, then a small tenant shows up.
        for _ in 0..10 {
            scheduler.dequeue().unwrap();
        }
        for shard in 0..4 {
            scheduler.enqueue("minnow", 1, (1, shard));
        }
        // The minnow's 4 shards must all dispatch within the next 8 slots
        // (equal weights → strict alternation), not after 90 whale shards.
        let next: Vec<u64> = (0..8).map(|_| scheduler.dequeue().unwrap().0).collect();
        assert_eq!(next.iter().filter(|&&job| job == 1).count(), 4);
    }

    #[test]
    fn weights_skew_the_share_proportionally() {
        let mut scheduler = FairScheduler::new();
        for shard in 0..30 {
            scheduler.enqueue("heavy", 3, (0, shard));
            scheduler.enqueue("light", 1, (1, shard));
        }
        let first_twenty: Vec<u64> = (0..20).map(|_| scheduler.dequeue().unwrap().0).collect();
        let heavy = first_twenty.iter().filter(|&&job| job == 0).count();
        // Weight 3 vs 1 → ~15 of the first 20 dispatches.
        assert!((14..=16).contains(&heavy), "heavy got {heavy} of 20");
    }

    #[test]
    fn busy_tenants_reports_only_nonempty_queues() {
        let mut scheduler = FairScheduler::new();
        scheduler.enqueue("a", 1, (0, 0));
        scheduler.enqueue("b", 1, (1, 0));
        scheduler.dequeue().unwrap();
        let busy: Vec<&str> = scheduler.busy_tenants().collect();
        assert_eq!(busy.len(), 1);
        assert_eq!(scheduler.len(), 1);
    }

    #[test]
    fn latency_quantiles_are_nearest_rank() {
        let mut tracker = LatencyTracker::new();
        for ns in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            tracker.record_ns(ns);
        }
        assert_eq!(tracker.quantile_ns(50), Some(50));
        assert_eq!(tracker.quantile_ns(95), Some(100));
        assert_eq!(tracker.quantile_ns(100), Some(100));
        assert_eq!(tracker.quantile_ns(1), Some(10));
        assert_eq!(tracker.count(), 10);
        assert_eq!(LatencyTracker::new().quantile_ns(50), None);
    }

    #[test]
    fn hedge_threshold_needs_samples_and_scales() {
        let config = HedgeConfig {
            min_samples: 3,
            quantile_pct: 50,
            multiplier_pct: 200,
            ..HedgeConfig::default()
        };
        let mut tracker = LatencyTracker::new();
        tracker.record_ns(100);
        tracker.record_ns(100);
        assert_eq!(tracker.hedge_threshold_ns(&config), None, "too few samples");
        tracker.record_ns(100);
        assert_eq!(tracker.hedge_threshold_ns(&config), Some(200));
        assert_eq!(
            tracker.hedge_threshold_ns(&HedgeConfig::disabled()),
            None,
            "disabled policy never hedges"
        );
    }

    #[test]
    fn sample_cap_keeps_the_high_tail() {
        let mut tracker = LatencyTracker::new();
        for ns in 0..((MAX_SAMPLES as u64) + 100) {
            tracker.record_ns(ns);
        }
        // Whatever the reservoir evicted, the exact maximum survives.
        assert_eq!(
            tracker.quantile_ns(100),
            Some(MAX_SAMPLES as u64 + 99),
            "max sample must survive eviction"
        );
        assert_eq!(tracker.count(), MAX_SAMPLES as u64 + 100);
    }

    #[test]
    fn hedge_activates_past_the_sample_cap() {
        // Regression: the activation gate once compared the *capped* reservoir
        // length (≤ MAX_SAMPLES) against min_samples, so any min_samples above
        // the cap silently disabled hedging forever.
        let config = HedgeConfig {
            min_samples: MAX_SAMPLES + 88,
            quantile_pct: 50,
            multiplier_pct: 200,
            ..HedgeConfig::default()
        };
        let mut tracker = LatencyTracker::new();
        for _ in 0..(MAX_SAMPLES + 87) {
            tracker.record_ns(1_000);
        }
        assert_eq!(
            tracker.hedge_threshold_ns(&config),
            None,
            "gate must still hold below min_samples"
        );
        tracker.record_ns(1_000);
        assert_eq!(
            tracker.hedge_threshold_ns(&config),
            Some(2_000),
            "min_samples > MAX_SAMPLES must delay hedging, not disable it"
        );
    }

    #[test]
    fn reservoir_keeps_quantiles_unbiased_over_skewed_samples() {
        // 10k right-skewed samples: 90% near 1µs, 10% near 100µs. The old
        // drop-the-smallest policy left only the top 512 — all stragglers —
        // so p50 read ~100_000. An unbiased bounded sample keeps p50 in the
        // bulk and p95 in the tail.
        let mut tracker = LatencyTracker::new();
        for i in 0u64..10_000 {
            let ns = if i % 10 == 9 {
                100_000 + i
            } else {
                1_000 + (i % 7)
            };
            tracker.record_ns(ns);
        }
        let p50 = tracker.quantile_ns(50).unwrap();
        assert!(
            (1_000..=1_006).contains(&p50),
            "p50 {p50} must sit in the bulk of the distribution"
        );
        let p95 = tracker.quantile_ns(95).unwrap();
        assert!(p95 >= 100_000, "p95 {p95} must sit in the straggler tail");
        assert_eq!(tracker.quantile_ns(100), Some(109_999), "exact max");
        assert_eq!(tracker.count(), 10_000);
    }

    #[test]
    fn dispatch_carries_scheduler_truth() {
        let mut scheduler = FairScheduler::new();
        for shard in 0..4 {
            scheduler.enqueue("heavy", 2, (0, shard));
            scheduler.enqueue("light", 1, (1, shard));
        }
        let mut last_vtime = 0;
        while let Some(dispatch) = scheduler.dequeue_dispatch() {
            assert!(
                dispatch.vtime >= last_vtime,
                "WFQ virtual time must be non-decreasing"
            );
            last_vtime = dispatch.vtime;
            let expected_weight = if dispatch.tenant == "heavy" { 2 } else { 1 };
            assert_eq!(dispatch.weight, expected_weight);
            assert_eq!(dispatch.entry.0, u64::from(dispatch.tenant == "light"));
            assert_eq!(scheduler.virtual_now(), dispatch.vtime);
        }
        assert!(scheduler.is_empty());
    }
}
