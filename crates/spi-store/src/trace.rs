//! Bounded capture and offline replay of scheduler decisions.
//!
//! Every decision the scheduling layer makes — WFQ enqueue/dequeue with its
//! virtual-time tag, lease grant/renew/expiry, hedge issue/win, cache hit,
//! WAL compaction — is recorded as a [`TraceEvent`] in a fixed-capacity ring
//! ([`TraceCapture`]). The ring is cheap enough to leave on in production:
//! recording is a `VecDeque` push under the registry lock the decision
//! already holds, and a full ring drops the *oldest* events (counting them)
//! instead of blocking the scheduler.
//!
//! Drained events are plain data with a stable JSON form, so a trace can
//! cross the wire (`{"op":"trace"}` in `spi-explored`), land in a file, and
//! be replayed offline by [`TraceReplay`] — a checker that re-derives what
//! *must* have been true of any correct run:
//!
//! * **WFQ proportional share** — over every maximal window in which a set
//!   of tenants stays continuously backlogged, their normalized service
//!   (virtual-time quanta, `SCALE / weight` per dispatch at the weight the
//!   scheduler actually charged) may differ only by a small constant slack.
//!   Linear starvation — a whale draining while a backlogged minnow waits —
//!   grows the gap without bound and trips the check.
//! * **Exactly-once lease accounting** — lease ids are granted once, only
//!   live leases renew or commit, every shard commits at most once, and a
//!   commit retires every outstanding lease on its shard (hedge losers
//!   included), so no retired lease can act again.
//!
//! The checker demands a *complete* trace (contiguous sequence numbers from
//! zero): fairness over a window you only half-saw is not assertable. The
//! capture reports how many events it dropped, so a caller knows when to
//! raise `--trace-capacity` instead of trusting a truncated replay.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use spi_model::json::{FromJson, JsonError, JsonResult, JsonValue, ToJson};

use crate::sched::SCALE;

/// Default ring capacity: a few thousand shards' worth of decisions.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Pairwise normalized-service slack allowed by the fairness check, in
/// virtual-time units. Two quanta cover the window-boundary offsets of the
/// two tenants being compared, one covers a finish tag derived under an old
/// weight that a mid-backlog resubmission rewrote, and one is headroom for
/// the discretization of window edges. Starvation is linear in the backlog,
/// so any systematic unfairness still overruns this constant immediately.
pub const FAIRNESS_SLACK: u64 = 4 * SCALE;

/// One scheduler decision, as recorded at the point the decision was made.
///
/// Fields are raw ids (`u64` job ids, lease ids) rather than the registry's
/// typed ids: the trace layer lives below the registry and must stay
/// replayable by tools that know nothing about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A `(job, shard)` entry joined `tenant`'s WFQ queue at `weight`.
    WfqEnqueue {
        /// Tenant whose queue received the entry.
        tenant: String,
        /// Weight in force at enqueue time.
        weight: u32,
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
    },
    /// The WFQ policy dispatched an entry (the registry may still skip it as
    /// stale — a dispatch is a virtual-time advance either way).
    WfqDequeue {
        /// Tenant charged for the dispatch.
        tenant: String,
        /// Weight the finish tag advanced by (`SCALE / weight`).
        weight: u32,
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// Virtual time of the dispatch.
        vtime: u64,
    },
    /// A lease was granted on a shard.
    LeaseGrant {
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// Raw lease id (unique per grant).
        lease: u64,
        /// Worker identity the lease went to.
        worker: String,
        /// True when this is a speculative duplicate lease (a hedge).
        hedged: bool,
    },
    /// A lease's deadline was pushed out by a progress report.
    LeaseRenew {
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// Raw lease id.
        lease: u64,
    },
    /// A lease hit its deadline and was revoked; staged work discarded.
    LeaseExpire {
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// Raw lease id.
        lease: u64,
    },
    /// A lease was abandoned (cancel, shutdown drain); staged work discarded.
    LeaseAbandon {
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// Raw lease id.
        lease: u64,
    },
    /// A hedged (duplicate) lease committed first and won its shard.
    HedgeWin {
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// The winning (hedged) lease id.
        lease: u64,
    },
    /// A shard committed exactly once on a still-valid lease.
    ShardCommit {
        /// Raw job id.
        job: u64,
        /// Shard index within the job.
        shard: usize,
        /// The committing lease id.
        lease: u64,
        /// Variants evaluated by the committed shard.
        evaluated: u64,
    },
    /// A submission was answered from the content-addressed result cache.
    CacheHit {
        /// Raw job id of the newborn (already-completed) job.
        job: u64,
    },
    /// A cache insert evicted `evicted` least-recently-used results.
    CacheEvict {
        /// Number of entries evicted by one insert.
        evicted: u64,
    },
    /// The WAL compacted to a snapshot.
    WalCompact {
        /// Log size in bytes *before* the compaction.
        log_bytes: u64,
    },
}

impl TraceEvent {
    /// The stable `kind` string used in the JSON form.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WfqEnqueue { .. } => "wfq_enqueue",
            TraceEvent::WfqDequeue { .. } => "wfq_dequeue",
            TraceEvent::LeaseGrant { .. } => "lease_grant",
            TraceEvent::LeaseRenew { .. } => "lease_renew",
            TraceEvent::LeaseExpire { .. } => "lease_expire",
            TraceEvent::LeaseAbandon { .. } => "lease_abandon",
            TraceEvent::HedgeWin { .. } => "hedge_win",
            TraceEvent::ShardCommit { .. } => "shard_commit",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::WalCompact { .. } => "wal_compact",
        }
    }
}

/// A captured event with its position in the capture sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedEvent {
    /// Monotone sequence number assigned at record time (gap-free unless the
    /// ring dropped events).
    pub seq: u64,
    /// The decision itself.
    pub event: TraceEvent,
}

fn num(value: u64) -> JsonValue {
    JsonValue::Int(i128::from(value))
}

impl ToJson for TracedEvent {
    fn to_json(&self) -> JsonValue {
        let mut members: Vec<(String, JsonValue)> = vec![
            ("seq".to_string(), num(self.seq)),
            ("kind".to_string(), JsonValue::string(self.event.kind())),
        ];
        match &self.event {
            TraceEvent::WfqEnqueue {
                tenant,
                weight,
                job,
                shard,
            } => {
                members.push(("tenant".to_string(), JsonValue::string(tenant.clone())));
                members.push(("weight".to_string(), num(u64::from(*weight))));
                members.push(("job".to_string(), num(*job)));
                members.push(("shard".to_string(), num(*shard as u64)));
            }
            TraceEvent::WfqDequeue {
                tenant,
                weight,
                job,
                shard,
                vtime,
            } => {
                members.push(("tenant".to_string(), JsonValue::string(tenant.clone())));
                members.push(("weight".to_string(), num(u64::from(*weight))));
                members.push(("job".to_string(), num(*job)));
                members.push(("shard".to_string(), num(*shard as u64)));
                members.push(("vtime".to_string(), num(*vtime)));
            }
            TraceEvent::LeaseGrant {
                job,
                shard,
                lease,
                worker,
                hedged,
            } => {
                members.push(("job".to_string(), num(*job)));
                members.push(("shard".to_string(), num(*shard as u64)));
                members.push(("lease".to_string(), num(*lease)));
                members.push(("worker".to_string(), JsonValue::string(worker.clone())));
                members.push(("hedged".to_string(), JsonValue::Bool(*hedged)));
            }
            TraceEvent::LeaseRenew { job, shard, lease }
            | TraceEvent::LeaseExpire { job, shard, lease }
            | TraceEvent::LeaseAbandon { job, shard, lease }
            | TraceEvent::HedgeWin { job, shard, lease } => {
                members.push(("job".to_string(), num(*job)));
                members.push(("shard".to_string(), num(*shard as u64)));
                members.push(("lease".to_string(), num(*lease)));
            }
            TraceEvent::ShardCommit {
                job,
                shard,
                lease,
                evaluated,
            } => {
                members.push(("job".to_string(), num(*job)));
                members.push(("shard".to_string(), num(*shard as u64)));
                members.push(("lease".to_string(), num(*lease)));
                members.push(("evaluated".to_string(), num(*evaluated)));
            }
            TraceEvent::CacheHit { job } => {
                members.push(("job".to_string(), num(*job)));
            }
            TraceEvent::CacheEvict { evicted } => {
                members.push(("evicted".to_string(), num(*evicted)));
            }
            TraceEvent::WalCompact { log_bytes } => {
                members.push(("log_bytes".to_string(), num(*log_bytes)));
            }
        }
        JsonValue::Object(members)
    }
}

impl FromJson for TracedEvent {
    fn from_json(value: &JsonValue) -> JsonResult<TracedEvent> {
        let field_u64 = |key: &str| -> JsonResult<u64> {
            value
                .require(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a u64")))
        };
        let field_usize = |key: &str| -> JsonResult<usize> {
            value
                .require(key)?
                .as_usize()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a usize")))
        };
        let field_str = |key: &str| -> JsonResult<String> {
            Ok(value
                .require(key)?
                .as_str()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a string")))?
                .to_string())
        };
        let field_weight = |key: &str| -> JsonResult<u32> {
            u32::try_from(field_u64(key)?)
                .map_err(|_| JsonError::new(format!("`{key}` out of range for a weight")))
        };
        let seq = field_u64("seq")?;
        let kind = field_str("kind")?;
        let event = match kind.as_str() {
            "wfq_enqueue" => TraceEvent::WfqEnqueue {
                tenant: field_str("tenant")?,
                weight: field_weight("weight")?,
                job: field_u64("job")?,
                shard: field_usize("shard")?,
            },
            "wfq_dequeue" => TraceEvent::WfqDequeue {
                tenant: field_str("tenant")?,
                weight: field_weight("weight")?,
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                vtime: field_u64("vtime")?,
            },
            "lease_grant" => TraceEvent::LeaseGrant {
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                lease: field_u64("lease")?,
                worker: field_str("worker")?,
                hedged: value
                    .require("hedged")?
                    .as_bool()
                    .ok_or_else(|| JsonError::new("`hedged` must be a bool"))?,
            },
            "lease_renew" => TraceEvent::LeaseRenew {
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                lease: field_u64("lease")?,
            },
            "lease_expire" => TraceEvent::LeaseExpire {
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                lease: field_u64("lease")?,
            },
            "lease_abandon" => TraceEvent::LeaseAbandon {
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                lease: field_u64("lease")?,
            },
            "hedge_win" => TraceEvent::HedgeWin {
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                lease: field_u64("lease")?,
            },
            "shard_commit" => TraceEvent::ShardCommit {
                job: field_u64("job")?,
                shard: field_usize("shard")?,
                lease: field_u64("lease")?,
                evaluated: field_u64("evaluated")?,
            },
            "cache_hit" => TraceEvent::CacheHit {
                job: field_u64("job")?,
            },
            "cache_evict" => TraceEvent::CacheEvict {
                evicted: field_u64("evicted")?,
            },
            "wal_compact" => TraceEvent::WalCompact {
                log_bytes: field_u64("log_bytes")?,
            },
            other => return Err(JsonError::new(format!("unknown trace kind `{other}`"))),
        };
        Ok(TracedEvent { seq, event })
    }
}

/// What one [`TraceCapture::drain`] handed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDrain {
    /// The captured events, oldest first.
    pub events: Vec<TracedEvent>,
    /// Events the ring dropped (overwrote) since the previous drain. A
    /// nonzero count means the drained slice is *not* replay-complete.
    pub dropped: u64,
}

/// One live subscriber's sending side: a bounded channel plus a shared lag
/// counter the recorder bumps instead of ever blocking on a full queue.
#[derive(Debug)]
struct TraceFanout {
    tx: SyncSender<TracedEvent>,
    lagged: Arc<AtomicU64>,
}

/// The receiving side of a live trace subscription
/// ([`TraceCapture::subscribe`]).
///
/// Events arrive through a **bounded** queue: when the subscriber falls
/// behind, the recorder drops the event for this subscriber and increments a
/// lag counter instead of blocking the scheduler. [`take_lagged`] reads and
/// resets that counter, so a consumer can emit a `lagged` marker and resync
/// from the capture ring. Dropping the subscription unregisters it on the
/// next recorded event.
///
/// [`take_lagged`]: TraceSubscription::take_lagged
#[derive(Debug)]
pub struct TraceSubscription {
    rx: Receiver<TracedEvent>,
    lagged: Arc<AtomicU64>,
}

impl TraceSubscription {
    /// The next queued event, or `None` when the queue is currently empty
    /// or the capture side has gone away.
    pub fn try_next(&self) -> Option<TracedEvent> {
        self.rx.try_recv().ok()
    }

    /// Waits up to `timeout` for the next event; `None` on timeout or when
    /// the capture side has gone away.
    pub fn next_timeout(&self, timeout: Duration) -> Option<TracedEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Events dropped for this subscriber since the last call, resetting
    /// the counter. Nonzero means the consumer lagged and the stream has a
    /// gap; resync via [`TraceCapture::read_since`].
    pub fn take_lagged(&self) -> u64 {
        self.lagged.swap(0, Ordering::Relaxed)
    }
}

/// Fixed-capacity ring of scheduler decisions.
///
/// Capacity `0` disables capture entirely (recording becomes a no-op); any
/// other capacity keeps the newest events and counts what it had to drop.
#[derive(Debug, Default)]
pub struct TraceCapture {
    ring: VecDeque<TracedEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    subscribers: Vec<TraceFanout>,
    /// Live mirror of `next_seq`, shared lock-free with readers that must
    /// not take the capture's lock (span recording on worker hot paths).
    seq_mirror: Arc<AtomicU64>,
}

impl TraceCapture {
    /// A capture ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceCapture {
            ring: VecDeque::with_capacity(capacity.min(DEFAULT_TRACE_CAPACITY)),
            capacity,
            next_seq: 0,
            dropped: 0,
            subscribers: Vec::new(),
            seq_mirror: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A capture ring at [`DEFAULT_TRACE_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        TraceCapture::new(DEFAULT_TRACE_CAPACITY)
    }

    /// True when recording is enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped (overwritten) since the last [`drain`](Self::drain).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one decision, assigning it the next sequence number, and
    /// fans it out to every live subscriber. Fan-out never blocks: a full
    /// subscriber queue counts one lagged event for that subscriber and the
    /// recorder moves on; a hung-up subscriber is unregistered.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 && self.subscribers.is_empty() {
            return;
        }
        let traced = TracedEvent {
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        self.seq_mirror.store(self.next_seq, Ordering::Relaxed);
        self.subscribers
            .retain(|sub| match sub.tx.try_send(traced.clone()) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    sub.lagged.fetch_add(1, Ordering::Relaxed);
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        if self.capacity == 0 {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(traced);
    }

    /// The sequence number the *next* recorded event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// A lock-free live mirror of [`next_seq`](Self::next_seq), updated on
    /// every record. The span recorder reads it at span enter/exit to
    /// bracket each span with the scheduler decisions it overlapped, without
    /// touching whatever lock guards the capture itself.
    pub fn seq_mirror(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.seq_mirror)
    }

    /// Registers a live subscriber with a bounded queue of `queue` events
    /// (clamped to ≥ 1) and returns its receiving side. Subscriptions see
    /// every event recorded after this call — even when the ring itself is
    /// disabled (`capacity == 0`) — subject to the queue bound.
    pub fn subscribe(&mut self, queue: usize) -> TraceSubscription {
        let (tx, rx) = std::sync::mpsc::sync_channel(queue.max(1));
        let lagged = Arc::new(AtomicU64::new(0));
        self.subscribers.push(TraceFanout {
            tx,
            lagged: Arc::clone(&lagged),
        });
        TraceSubscription { rx, lagged }
    }

    /// Non-destructive read of every buffered event with `seq >= since`,
    /// oldest first. Unlike [`drain`](Self::drain) this leaves the ring (and
    /// the drain-side drop counter) untouched, so multiple pollers can each
    /// keep their own cursor. `dropped` here counts the events **this
    /// cursor** can no longer see — those with sequence numbers at or past
    /// `since` that the ring has already overwritten.
    pub fn read_since(&self, since: u64) -> TraceDrain {
        let front_seq = self.next_seq - self.ring.len() as u64;
        let skip = since.saturating_sub(front_seq) as usize;
        TraceDrain {
            events: self.ring.iter().skip(skip).cloned().collect(),
            dropped: front_seq.saturating_sub(since),
        }
    }

    /// Takes every buffered event (oldest first) plus the drop count since
    /// the previous drain, and resets both. Sequence numbers keep counting
    /// across drains, so concatenated drains of a never-full ring form one
    /// gap-free trace.
    pub fn drain(&mut self) -> TraceDrain {
        TraceDrain {
            events: self.ring.drain(..).collect(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

/// Outcome of replaying a captured trace through the correctness checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events replayed.
    pub events: usize,
    /// WFQ dispatches seen (including ones the registry skipped as stale).
    pub dispatches: u64,
    /// Leases granted.
    pub grants: u64,
    /// Of those, speculative (hedged) grants.
    pub hedged_grants: u64,
    /// Shards won by a hedged lease.
    pub hedge_wins: u64,
    /// Shard commits seen.
    pub commits: u64,
    /// Distinct `(job, shard)` pairs that committed.
    pub committed_shards: usize,
    /// Valid lease renewals seen.
    pub renews: u64,
    /// Valid lease expiries seen.
    pub expiries: u64,
    /// Valid lease abandons seen.
    pub abandons: u64,
    /// Live leases retired as a side effect of another lease committing
    /// their shard (hedge losers). Commits retire these silently — no
    /// expire/abandon event — so conservation laws over grants need this
    /// derived count: grants = commits + expiries + abandons +
    /// retired_by_commit + still-live.
    pub retired_by_commit: u64,
    /// Leases still live when the trace window closed.
    pub live_leases: u64,
    /// Total variants evaluated across every shard commit.
    pub evaluated: u64,
    /// Every invariant violation found, in trace order. Empty ⇔ the run was
    /// provably fair and exactly-once over the captured window.
    pub violations: Vec<String>,
}

impl ReplayReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaseState {
    Live,
    Retired,
}

struct LeaseRecord {
    job: u64,
    shard: usize,
    state: LeaseState,
}

/// Offline checker for captured traces: WFQ proportional share and
/// exactly-once lease accounting (see the [module docs](self) for the exact
/// properties).
#[derive(Default)]
pub struct TraceReplay {
    report: ReplayReport,
    // Fairness state.
    last_vtime: u64,
    backlog: BTreeMap<String, u64>,
    members: BTreeSet<String>,
    service: BTreeMap<String, u64>,
    // Lease census state.
    leases: HashMap<u64, LeaseRecord>,
    committed: HashSet<(u64, usize)>,
}

impl TraceReplay {
    /// Replays `events` (as drained: oldest first) and reports every
    /// violation of the scheduler's contracts. The trace must be complete —
    /// sequence numbers contiguous from 0 — or the incompleteness itself is
    /// reported as a violation, because neither fairness nor a lease census
    /// is assertable over a window with holes.
    pub fn check(events: &[TracedEvent]) -> ReplayReport {
        let mut replay = TraceReplay::default();
        replay.report.events = events.len();
        for (index, traced) in events.iter().enumerate() {
            if traced.seq != index as u64 {
                replay.report.violations.push(format!(
                    "trace incomplete: expected seq {index}, found {} (events were dropped \
                     or reordered; raise --trace-capacity)",
                    traced.seq
                ));
                return replay.report;
            }
            replay.step(traced);
        }
        replay.close_window();
        replay.report.live_leases = replay
            .leases
            .values()
            .filter(|record| record.state == LeaseState::Live)
            .count() as u64;
        replay.report
    }

    fn step(&mut self, traced: &TracedEvent) {
        let seq = traced.seq;
        match &traced.event {
            TraceEvent::WfqEnqueue { tenant, .. } => {
                let backlog = self.backlog.entry(tenant.clone()).or_insert(0);
                let was_idle = *backlog == 0;
                *backlog += 1;
                if was_idle {
                    // The busy set changed: fairness windows are defined by
                    // "continuously backlogged", so close the current one.
                    self.close_window();
                }
            }
            TraceEvent::WfqDequeue {
                tenant,
                weight,
                vtime,
                ..
            } => {
                self.report.dispatches += 1;
                if *vtime < self.last_vtime {
                    self.report.violations.push(format!(
                        "seq {seq}: WFQ virtual time went backwards ({} -> {vtime})",
                        self.last_vtime
                    ));
                }
                self.last_vtime = (*vtime).max(self.last_vtime);
                let backlog = self.backlog.entry(tenant.clone()).or_insert(0);
                if *backlog == 0 {
                    self.report.violations.push(format!(
                        "seq {seq}: dequeue for tenant `{tenant}` with no traced backlog"
                    ));
                    return;
                }
                *backlog -= 1;
                let emptied = *backlog == 0;
                if self.members.contains(tenant) {
                    *self.service.entry(tenant.clone()).or_insert(0) +=
                        SCALE / u64::from((*weight).max(1));
                }
                if emptied {
                    self.close_window();
                }
            }
            TraceEvent::LeaseGrant {
                job,
                shard,
                lease,
                hedged,
                ..
            } => {
                self.report.grants += 1;
                if *hedged {
                    self.report.hedged_grants += 1;
                }
                if self.leases.contains_key(lease) {
                    self.report
                        .violations
                        .push(format!("seq {seq}: lease id {lease} granted twice"));
                    return;
                }
                if self.committed.contains(&(*job, *shard)) {
                    self.report.violations.push(format!(
                        "seq {seq}: lease {lease} granted on already-committed shard \
                         (job {job}, shard {shard})"
                    ));
                    return;
                }
                self.leases.insert(
                    *lease,
                    LeaseRecord {
                        job: *job,
                        shard: *shard,
                        state: LeaseState::Live,
                    },
                );
            }
            TraceEvent::LeaseRenew { job, shard, lease } => {
                if self.require_live("renewed", seq, *job, *shard, *lease) {
                    self.report.renews += 1;
                }
            }
            TraceEvent::LeaseExpire { job, shard, lease } => {
                if self.require_live("expired", seq, *job, *shard, *lease) {
                    self.report.expiries += 1;
                    self.leases
                        .get_mut(lease)
                        .expect("lease was just checked live")
                        .state = LeaseState::Retired;
                }
            }
            TraceEvent::LeaseAbandon { job, shard, lease } => {
                if self.require_live("abandoned", seq, *job, *shard, *lease) {
                    self.report.abandons += 1;
                    self.leases
                        .get_mut(lease)
                        .expect("lease was just checked live")
                        .state = LeaseState::Retired;
                }
            }
            TraceEvent::HedgeWin { job, shard, lease } => {
                self.report.hedge_wins += 1;
                // The winner was just retired by its own commit, so only the
                // identity is checked, not liveness.
                match self.leases.get(lease) {
                    None => self
                        .report
                        .violations
                        .push(format!("seq {seq}: hedge win cites unknown lease {lease}")),
                    Some(record) if (record.job, record.shard) != (*job, *shard) => {
                        self.report.violations.push(format!(
                            "seq {seq}: hedge win cites lease {lease} of another shard"
                        ));
                    }
                    Some(_) => {}
                }
            }
            TraceEvent::ShardCommit {
                job,
                shard,
                lease,
                evaluated,
            } => {
                self.report.commits += 1;
                self.report.evaluated += *evaluated;
                if !self.require_live("committed", seq, *job, *shard, *lease) {
                    return;
                }
                if !self.committed.insert((*job, *shard)) {
                    self.report.violations.push(format!(
                        "seq {seq}: shard committed twice (job {job}, shard {shard})"
                    ));
                    return;
                }
                self.report.committed_shards = self.committed.len();
                // Exactly-once: a commit retires every lease on the shard —
                // the winner and any hedge losers alike. Losers retire with
                // no event of their own; the derived count keeps the
                // grant-side conservation law closable.
                for (id, record) in self.leases.iter_mut() {
                    if (record.job, record.shard) == (*job, *shard) {
                        if record.state == LeaseState::Live && id != lease {
                            self.report.retired_by_commit += 1;
                        }
                        record.state = LeaseState::Retired;
                    }
                }
            }
            TraceEvent::CacheHit { .. }
            | TraceEvent::CacheEvict { .. }
            | TraceEvent::WalCompact { .. } => {}
        }
    }

    /// Checks that `lease` exists, is live, and belongs to `(job, shard)`;
    /// records a violation and returns false otherwise.
    fn require_live(&mut self, verb: &str, seq: u64, job: u64, shard: usize, lease: u64) -> bool {
        match self.leases.get(&lease) {
            None => {
                self.report
                    .violations
                    .push(format!("seq {seq}: {verb} unknown lease {lease}"));
                false
            }
            Some(record) if (record.job, record.shard) != (job, shard) => {
                self.report.violations.push(format!(
                    "seq {seq}: lease {lease} {verb} against the wrong shard \
                     (granted for job {}, shard {}; cited job {job}, shard {shard})",
                    record.job, record.shard
                ));
                false
            }
            Some(record) if record.state == LeaseState::Retired => {
                self.report.violations.push(format!(
                    "seq {seq}: retired lease {lease} {verb} (job {job}, shard {shard}) — \
                     exactly-once accounting violated"
                ));
                false
            }
            Some(_) => true,
        }
    }

    /// Closes the current fairness window: tenants that stayed backlogged
    /// through the whole window must have received proportional service, and
    /// a new window opens over the currently-backlogged set.
    fn close_window(&mut self) {
        if self.members.len() >= 2 {
            let services: Vec<(&str, u64)> = self
                .members
                .iter()
                .map(|tenant| {
                    (
                        tenant.as_str(),
                        self.service.get(tenant).copied().unwrap_or(0),
                    )
                })
                .collect();
            let (min_tenant, min) = services
                .iter()
                .min_by_key(|(_, service)| *service)
                .copied()
                .expect("members is non-empty");
            let (max_tenant, max) = services
                .iter()
                .max_by_key(|(_, service)| *service)
                .copied()
                .expect("members is non-empty");
            if max - min > FAIRNESS_SLACK {
                self.report.violations.push(format!(
                    "WFQ proportional-share bound violated: over a joint-backlog window \
                     `{max_tenant}` received {max} normalized virtual-time units while \
                     `{min_tenant}` received {min} (slack {FAIRNESS_SLACK})"
                ));
            }
        }
        self.service.clear();
        self.members = self
            .backlog
            .iter()
            .filter(|(_, backlog)| **backlog > 0)
            .map(|(tenant, _)| tenant.clone())
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FairScheduler;

    fn enqueue(tenant: &str, weight: u32, job: u64, shard: usize) -> TraceEvent {
        TraceEvent::WfqEnqueue {
            tenant: tenant.to_string(),
            weight,
            job,
            shard,
        }
    }

    fn grant(job: u64, shard: usize, lease: u64) -> TraceEvent {
        TraceEvent::LeaseGrant {
            job,
            shard,
            lease,
            worker: "w0".to_string(),
            hedged: false,
        }
    }

    fn commit(job: u64, shard: usize, lease: u64) -> TraceEvent {
        TraceEvent::ShardCommit {
            job,
            shard,
            lease,
            evaluated: 1,
        }
    }

    fn sequenced(events: Vec<TraceEvent>) -> Vec<TracedEvent> {
        events
            .into_iter()
            .enumerate()
            .map(|(seq, event)| TracedEvent {
                seq: seq as u64,
                event,
            })
            .collect()
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut capture = TraceCapture::new(2);
        for job in 0..5 {
            capture.record(TraceEvent::CacheHit { job });
        }
        assert_eq!(capture.len(), 2);
        let drained = capture.drain();
        assert_eq!(drained.dropped, 3);
        assert_eq!(drained.events[0].seq, 3);
        assert_eq!(drained.events[1].seq, 4);
        assert_eq!(capture.drain().dropped, 0, "drain resets the drop count");
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let mut capture = TraceCapture::new(0);
        assert!(!capture.enabled());
        capture.record(TraceEvent::CacheHit { job: 0 });
        assert!(capture.is_empty());
        assert_eq!(capture.drain().dropped, 0);
    }

    #[test]
    fn read_since_is_non_destructive_and_cursor_aware() {
        let mut capture = TraceCapture::new(8);
        for job in 0..5 {
            capture.record(TraceEvent::CacheHit { job });
        }
        let tail = capture.read_since(3);
        assert_eq!(tail.dropped, 0);
        assert_eq!(
            tail.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [3, 4]
        );
        // Nothing was consumed: a second cursor still sees everything.
        let all = capture.read_since(0);
        assert_eq!(all.events.len(), 5);
        assert_eq!(all.dropped, 0);
        // A cursor past the end sees nothing and missed nothing.
        let future = capture.read_since(99);
        assert!(future.events.is_empty());
        assert_eq!(future.dropped, 0);
        // The destructive drain still works afterwards and is unaffected.
        assert_eq!(capture.drain().events.len(), 5);
    }

    #[test]
    fn read_since_counts_what_the_ring_overwrote() {
        let mut capture = TraceCapture::new(2);
        for job in 0..5 {
            capture.record(TraceEvent::CacheHit { job });
        }
        // Ring holds seqs 3..=4; a cursor at 1 lost seqs 1 and 2.
        let read = capture.read_since(1);
        assert_eq!(read.dropped, 2);
        assert_eq!(
            read.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [3, 4]
        );
    }

    #[test]
    fn subscription_streams_lags_and_unregisters() {
        let mut capture = TraceCapture::new(8);
        let subscription = capture.subscribe(2);
        capture.record(TraceEvent::CacheHit { job: 0 });
        capture.record(TraceEvent::CacheHit { job: 1 });
        // Queue is full (bound 2): the next records lag, never block.
        capture.record(TraceEvent::CacheHit { job: 2 });
        capture.record(TraceEvent::CacheHit { job: 3 });
        assert_eq!(subscription.try_next().unwrap().seq, 0);
        assert_eq!(subscription.try_next().unwrap().seq, 1);
        assert!(subscription.try_next().is_none());
        assert_eq!(subscription.take_lagged(), 2);
        assert_eq!(subscription.take_lagged(), 0, "take resets the lag count");
        // After the lag, the subscriber resyncs from the ring by cursor.
        let resync = capture.read_since(2);
        assert_eq!(resync.events.len(), 2);
        // Events keep flowing after a lag episode.
        capture.record(TraceEvent::CacheHit { job: 4 });
        assert_eq!(subscription.try_next().unwrap().seq, 4);
        // Dropping the receiver unregisters the subscriber on next record.
        drop(subscription);
        capture.record(TraceEvent::CacheHit { job: 5 });
        assert!(capture.subscribers.is_empty());
    }

    #[test]
    fn subscription_works_with_capture_ring_disabled() {
        let mut capture = TraceCapture::new(0);
        let subscription = capture.subscribe(4);
        capture.record(TraceEvent::CacheHit { job: 0 });
        assert!(capture.is_empty(), "ring stays disabled");
        assert_eq!(subscription.try_next().unwrap().seq, 0);
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let events = vec![
            enqueue("a", 2, 0, 1),
            TraceEvent::WfqDequeue {
                tenant: "a".to_string(),
                weight: 2,
                job: 0,
                shard: 1,
                vtime: 524_288,
            },
            TraceEvent::LeaseGrant {
                job: 0,
                shard: 1,
                lease: 7,
                worker: "spi-explore-worker-3".to_string(),
                hedged: true,
            },
            TraceEvent::LeaseRenew {
                job: 0,
                shard: 1,
                lease: 7,
            },
            TraceEvent::LeaseExpire {
                job: 0,
                shard: 1,
                lease: 7,
            },
            TraceEvent::LeaseAbandon {
                job: 0,
                shard: 1,
                lease: 7,
            },
            TraceEvent::HedgeWin {
                job: 0,
                shard: 1,
                lease: 7,
            },
            TraceEvent::ShardCommit {
                job: 0,
                shard: 1,
                lease: 7,
                evaluated: 64,
            },
            TraceEvent::CacheHit { job: 9 },
            TraceEvent::CacheEvict { evicted: 2 },
            TraceEvent::WalCompact { log_bytes: 4096 },
        ];
        for traced in sequenced(events) {
            let line = traced.to_json().to_line();
            let parsed = TracedEvent::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
            assert_eq!(parsed, traced, "round trip of {line}");
        }
    }

    /// Drives a real scheduler and checks the captured trace replays clean.
    #[test]
    fn replay_accepts_a_real_wfq_run() {
        let mut scheduler = FairScheduler::new();
        let mut capture = TraceCapture::with_default_capacity();
        for shard in 0..60 {
            scheduler.enqueue("heavy", 3, (0, shard));
            capture.record(enqueue("heavy", 3, 0, shard));
            scheduler.enqueue("light", 1, (1, shard));
            capture.record(enqueue("light", 1, 1, shard));
        }
        let mut lease = 0u64;
        while let Some(dispatch) = scheduler.dequeue_dispatch() {
            capture.record(TraceEvent::WfqDequeue {
                tenant: dispatch.tenant.clone(),
                weight: dispatch.weight,
                job: dispatch.entry.0,
                shard: dispatch.entry.1,
                vtime: dispatch.vtime,
            });
            capture.record(grant(dispatch.entry.0, dispatch.entry.1, lease));
            capture.record(commit(dispatch.entry.0, dispatch.entry.1, lease));
            lease += 1;
        }
        let drained = capture.drain();
        assert_eq!(drained.dropped, 0);
        let report = TraceReplay::check(&drained.events);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.dispatches, 120);
        assert_eq!(report.commits, 120);
        assert_eq!(report.committed_shards, 120);
    }

    /// A FIFO over the same backlog starves the second tenant; the
    /// proportional-share check must notice.
    #[test]
    fn replay_rejects_fifo_starvation() {
        let mut events = Vec::new();
        for shard in 0..40 {
            events.push(enqueue("whale", 1, 0, shard));
            events.push(enqueue("minnow", 1, 1, shard));
        }
        // The whale drains completely first — what the pre-WFQ FIFO did.
        for (job, tenant) in [(0u64, "whale"), (1u64, "minnow")] {
            for shard in 0..40 {
                events.push(TraceEvent::WfqDequeue {
                    tenant: tenant.to_string(),
                    weight: 1,
                    job,
                    shard,
                    vtime: 0,
                });
            }
        }
        let report = TraceReplay::check(&sequenced(events));
        assert!(
            report
                .violations
                .iter()
                .any(|violation| violation.contains("proportional-share")),
            "expected a fairness violation, got {:?}",
            report.violations
        );
    }

    #[test]
    fn replay_rejects_double_commit_and_stale_lease_action() {
        let events = sequenced(vec![
            grant(0, 0, 1),
            grant(0, 0, 2),
            commit(0, 0, 1),
            // Loser was retired by the commit: both of these must trip.
            commit(0, 0, 2),
            TraceEvent::LeaseRenew {
                job: 0,
                shard: 0,
                lease: 2,
            },
        ]);
        let report = TraceReplay::check(&events);
        assert_eq!(report.committed_shards, 1);
        assert_eq!(
            report.violations.len(),
            2,
            "violations: {:?}",
            report.violations
        );
        assert!(report.violations.iter().all(|v| v.contains("retired")));
    }

    #[test]
    fn replay_rejects_reused_lease_ids_and_gaps() {
        let report = TraceReplay::check(&sequenced(vec![grant(0, 0, 1), grant(0, 1, 1)]));
        assert!(report.violations.iter().any(|v| v.contains("twice")));

        let mut gappy = sequenced(vec![grant(0, 0, 1), commit(0, 0, 1)]);
        gappy[1].seq = 5;
        let report = TraceReplay::check(&gappy);
        assert!(report.violations.iter().any(|v| v.contains("incomplete")));
    }
}
