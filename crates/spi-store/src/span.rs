//! Hierarchical phase spans: where the time went *inside* a shard.
//!
//! The metrics plane ([`crate::metrics`]) aggregates and the decision trace
//! ([`crate::trace`]) sequences, but neither attributes wall-clock to the
//! stages of the flatten→compile→search pipeline. This module records
//! monotonic-clock enter/exit pairs into bounded per-worker rings:
//!
//! * a [`SpanRecorder`] owns the clock epoch, the global id/seq counters and
//!   one ring per worker; it is shared (`Arc`) between the worker pool, the
//!   registry and the wire surface;
//! * each thread records through its own [`SpanSink`] — a stack of open
//!   spans plus the ambient [`SpanIds`] context (job/shard/lease/tenant/
//!   worker, the same ids the waitgraph uses) — so the hot path takes no
//!   cross-thread lock until a span *completes* and lands in its ring;
//! * every completed [`Span`] carries its parent id, its static [`PhaseId`],
//!   and the [`TraceCapture`](crate::trace::TraceCapture) sequence watermark
//!   observed at enter and exit, so spans and scheduler decisions
//!   cross-correlate (`trace_first..trace_last` is exactly the window of
//!   decisions that overlapped the span).
//!
//! The overhead discipline is the [`MetricsRegistry`](crate::MetricsRegistry)
//! one: a disabled recorder hands out no-op sinks, and every record site
//! collapses to a single `enabled` branch. Rings drop **oldest-first** on
//! overflow and count what they forgot, so a slow reader costs history,
//! never throughput.
//!
//! On top of the raw spans this module derives the served views:
//! [`Profile::from_spans`] (per-phase totals + log-linear histograms +
//! folded flamegraph stacks + per-job critical paths) and [`chrome_trace`]
//! (Chrome trace-event JSON loadable in Perfetto / `chrome://tracing`).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use spi_model::json::JsonValue;

use crate::metrics::Histogram;

/// Default per-worker span ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// The static identity of an instrumented pipeline stage.
///
/// Phases are a closed enum (like the metric ids): recording a span costs an
/// enum copy, not a string, and every consumer can enumerate [`ALL`]
/// phases without scraping.
///
/// [`ALL`]: PhaseId::ALL
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseId {
    /// One whole shard drain: the worker's Gray-walk over its strided ranks.
    DrainShard,
    /// An incremental flatten that **patched** the previous flat graph.
    FlattenPatch,
    /// A flatten that had to **rebuild** from the skeleton (first rank of a
    /// drain, post-error reset, or a patch fallback).
    FlattenRebuild,
    /// Lowering a flat graph to the compiled synthesis form
    /// (`compiled_from_flat_graph`).
    CompileLower,
    /// The branch-and-bound partition search over a compiled graph.
    PartitionSearch,
    /// A batch merge renewing the lease deadline (`report_batch`).
    LeaseRenew,
    /// Committing a shard's staged report into the job (`complete_shard`).
    ShardCommit,
    /// One write-ahead-log append (inside the commit, or standalone for
    /// submits/cancels).
    WalAppend,
}

impl PhaseId {
    /// Every phase, in pipeline order.
    pub const ALL: [PhaseId; 8] = [
        PhaseId::DrainShard,
        PhaseId::FlattenPatch,
        PhaseId::FlattenRebuild,
        PhaseId::CompileLower,
        PhaseId::PartitionSearch,
        PhaseId::LeaseRenew,
        PhaseId::ShardCommit,
        PhaseId::WalAppend,
    ];

    /// The stable wire name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::DrainShard => "drain_shard",
            PhaseId::FlattenPatch => "flatten_patch",
            PhaseId::FlattenRebuild => "flatten_rebuild",
            PhaseId::CompileLower => "compile_lower",
            PhaseId::PartitionSearch => "partition_search",
            PhaseId::LeaseRenew => "lease_renew",
            PhaseId::ShardCommit => "shard_commit",
            PhaseId::WalAppend => "wal_append",
        }
    }

    /// The phase with the given wire name, if any.
    pub fn from_name(name: &str) -> Option<PhaseId> {
        PhaseId::ALL.into_iter().find(|phase| phase.name() == name)
    }
}

/// The scheduler-entity ids a span is attributed to — the same id space the
/// waitgraph nodes use (`job:{job}`, `shard:{job}/{shard}`, `lease:{lease}`,
/// `tenant:{tenant}`, `worker:{worker}`), so every span resolves against a
/// waitgraph snapshot. All fields are optional: registry-side spans outside
/// any lease (a submit's WAL append, say) carry none.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanIds {
    /// The job the span worked for.
    pub job: Option<u64>,
    /// The shard index within the job.
    pub shard: Option<u64>,
    /// The lease the work ran under.
    pub lease: Option<u64>,
    /// The job's fair-queuing tenant. `Arc<str>` so per-span context clones
    /// never allocate.
    pub tenant: Option<Arc<str>>,
    /// The worker thread that did the work.
    pub worker: Option<Arc<str>>,
}

impl SpanIds {
    fn json_field(value: &Option<Arc<str>>) -> JsonValue {
        match value {
            Some(text) => JsonValue::string(text.as_ref()),
            None => JsonValue::Null,
        }
    }

    fn json_num(value: Option<u64>) -> JsonValue {
        match value {
            Some(n) => JsonValue::Int(i128::from(n)),
            None => JsonValue::Null,
        }
    }
}

/// One completed enter/exit pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Global completion order across all workers (exit time order per
    /// worker; a strictly monotone cursor for streaming readers).
    pub seq: u64,
    /// Globally unique span id, assigned at enter.
    pub id: u64,
    /// The id of the enclosing open span on the same sink, if any.
    pub parent: Option<u64>,
    /// What stage this span timed.
    pub phase: PhaseId,
    /// Monotonic enter time, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Monotonic exit time, nanoseconds since the recorder's epoch.
    pub end_ns: u64,
    /// Total duration of direct child spans, for self-time attribution.
    pub child_ns: u64,
    /// The scheduler-trace sequence watermark at enter.
    pub trace_first: u64,
    /// The scheduler-trace sequence watermark at exit: decisions with
    /// `trace_first <= seq < trace_last` overlapped this span.
    pub trace_last: u64,
    /// Waitgraph-compatible attribution ids.
    pub ids: SpanIds,
}

impl Span {
    /// Wall-clock duration of the span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Duration minus the time spent in direct children.
    pub fn self_ns(&self) -> u64 {
        self.duration_ns().saturating_sub(self.child_ns)
    }

    /// The span as one canonical JSON object (what `spans` watch frames
    /// carry).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("seq", JsonValue::Int(i128::from(self.seq))),
            ("id", JsonValue::Int(i128::from(self.id))),
            ("parent", SpanIds::json_num(self.parent)),
            ("phase", JsonValue::string(self.phase.name())),
            ("start_ns", JsonValue::Int(i128::from(self.start_ns))),
            ("end_ns", JsonValue::Int(i128::from(self.end_ns))),
            ("self_ns", JsonValue::Int(i128::from(self.self_ns()))),
            ("trace_first", JsonValue::Int(i128::from(self.trace_first))),
            ("trace_last", JsonValue::Int(i128::from(self.trace_last))),
            ("job", SpanIds::json_num(self.ids.job)),
            ("shard", SpanIds::json_num(self.ids.shard)),
            ("lease", SpanIds::json_num(self.ids.lease)),
            ("tenant", SpanIds::json_field(&self.ids.tenant)),
            ("worker", SpanIds::json_field(&self.ids.worker)),
        ])
    }
}

/// Completed spans read from the rings, oldest `seq` first, plus how many
/// the rings had to forget (oldest-first) since the recorder started.
#[derive(Debug, Clone, Default)]
pub struct SpanDrain {
    /// The buffered spans with `seq >= since`, sorted by `seq`.
    pub spans: Vec<Span>,
    /// Total spans dropped to ring overflow over the recorder's lifetime.
    pub dropped: u64,
}

#[derive(Debug, Default)]
struct RingInner {
    ring: VecDeque<Span>,
    dropped: u64,
}

/// One worker's bounded ring of completed spans. Only the owning sink
/// pushes; readers merge across rings through
/// [`SpanRecorder::read_since`].
#[derive(Debug, Default)]
struct WorkerRing {
    inner: Mutex<RingInner>,
}

/// The shared recorder: clock epoch, global counters, per-worker rings and
/// the optional link to the scheduler trace's sequence watermark.
///
/// A recorder built with capacity `0` (or [`disabled`](Self::disabled)) is
/// fully inert: every sink it hands out is a no-op and
/// [`is_enabled`](Self::is_enabled) gates each instrumentation site down to
/// one branch.
#[derive(Debug)]
pub struct SpanRecorder {
    capacity: usize,
    epoch: Instant,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    trace_seq: OnceLock<Arc<AtomicU64>>,
    rings: Mutex<BTreeMap<String, Arc<WorkerRing>>>,
}

impl SpanRecorder {
    /// A recorder whose per-worker rings hold at most `capacity` completed
    /// spans each; `0` disables recording entirely.
    pub fn new(capacity: usize) -> SpanRecorder {
        SpanRecorder {
            capacity,
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            trace_seq: OnceLock::new(),
            rings: Mutex::new(BTreeMap::new()),
        }
    }

    /// A recorder at [`DEFAULT_SPAN_CAPACITY`].
    pub fn with_default_capacity() -> SpanRecorder {
        SpanRecorder::new(DEFAULT_SPAN_CAPACITY)
    }

    /// The inert recorder: hands out no-op sinks, records nothing.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder::new(0)
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured per-worker ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds since the recorder's epoch, from the monotonic clock.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Links the scheduler trace's live sequence watermark (see
    /// [`TraceCapture::seq_mirror`](crate::trace::TraceCapture::seq_mirror)):
    /// every span records the watermark at enter and exit. At most one link
    /// sticks; later calls are ignored.
    pub fn link_trace_seq(&self, mirror: Arc<AtomicU64>) {
        let _ = self.trace_seq.set(mirror);
    }

    fn trace_watermark(&self) -> u64 {
        self.trace_seq
            .get()
            .map_or(0, |mirror| mirror.load(Ordering::Relaxed))
    }

    /// The sequence number the next completed span will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Total spans dropped to ring overflow across all workers.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .expect("span rings lock")
            .values()
            .map(|ring| ring.inner.lock().expect("span ring lock").dropped)
            .sum()
    }

    /// A recording sink for `worker`, creating its ring on first use. The
    /// same worker name always maps to the same ring, so a worker thread
    /// that re-enters the loop keeps appending where it left off. On a
    /// disabled recorder this is a no-op sink.
    pub fn sink(self: &Arc<Self>, worker: &str) -> SpanSink {
        if !self.is_enabled() {
            return SpanSink::disabled();
        }
        let ring = Arc::clone(
            self.rings
                .lock()
                .expect("span rings lock")
                .entry(worker.to_string())
                .or_default(),
        );
        SpanSink {
            shared: Some(SinkShared {
                recorder: Arc::clone(self),
                ring,
            }),
            state: RefCell::new(SinkState::default()),
        }
    }

    /// Non-destructive merged read of every buffered span with
    /// `seq >= since`, sorted by completion `seq`. `dropped` is the
    /// recorder-lifetime overflow total — a reader whose cursor observes it
    /// growing knows its window has gaps.
    pub fn read_since(&self, since: u64) -> SpanDrain {
        let mut spans = Vec::new();
        let mut dropped = 0;
        {
            let rings = self.rings.lock().expect("span rings lock");
            for ring in rings.values() {
                let inner = ring.inner.lock().expect("span ring lock");
                dropped += inner.dropped;
                spans.extend(inner.ring.iter().filter(|s| s.seq >= since).cloned());
            }
        }
        spans.sort_by_key(|span| span.seq);
        SpanDrain { spans, dropped }
    }

    /// Every buffered span, sorted by completion `seq`.
    pub fn spans(&self) -> Vec<Span> {
        self.read_since(0).spans
    }
}

/// A `(monotonic ns, trace watermark)` pair taken by [`SpanSink::stamp`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStamp {
    /// Nanoseconds since the recorder's epoch.
    pub ns: u64,
    /// The scheduler-trace sequence watermark at stamp time.
    pub trace_seq: u64,
}

#[derive(Debug)]
struct SinkShared {
    recorder: Arc<SpanRecorder>,
    ring: Arc<WorkerRing>,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    phase: PhaseId,
    start_ns: u64,
    trace_first: u64,
    child_ns: u64,
}

#[derive(Debug, Default)]
struct SinkState {
    context: SpanIds,
    stack: Vec<OpenSpan>,
}

/// A single thread's recording handle: an open-span stack plus the ambient
/// [`SpanIds`] context. Interior-mutable (`&self` methods) so a drain loop
/// and its flush callback can share one sink; deliberately `!Sync` — one
/// sink per thread.
#[derive(Debug)]
pub struct SpanSink {
    shared: Option<SinkShared>,
    state: RefCell<SinkState>,
}

impl SpanSink {
    /// The no-op sink: every method is a cheap early return.
    pub fn disabled() -> SpanSink {
        SpanSink {
            shared: None,
            state: RefCell::new(SinkState::default()),
        }
    }

    /// True when this sink records into a live ring.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// How many spans are currently open on this sink.
    pub fn depth(&self) -> usize {
        self.state.borrow().stack.len()
    }

    /// Replaces the ambient attribution context; spans completed after this
    /// call carry a clone of `ids`.
    pub fn set_context(&self, ids: SpanIds) {
        if self.shared.is_none() {
            return;
        }
        self.state.borrow_mut().context = ids;
    }

    /// Resets the ambient context to all-`None`.
    pub fn clear_context(&self) {
        self.set_context(SpanIds::default());
    }

    /// Opens a span of `phase` nested under the current top of the stack.
    pub fn enter(&self, phase: PhaseId) {
        let Some(shared) = &self.shared else {
            return;
        };
        let open = OpenSpan {
            id: shared.recorder.next_id.fetch_add(1, Ordering::Relaxed),
            phase,
            start_ns: shared.recorder.now_ns(),
            trace_first: shared.recorder.trace_watermark(),
            child_ns: 0,
        };
        self.state.borrow_mut().stack.push(open);
    }

    /// Closes the innermost open span under the phase it was entered as.
    pub fn exit(&self) {
        self.finish(None);
    }

    /// Closes the innermost open span, recording it as `phase` instead of
    /// the phase it was entered as — for stages whose identity is only known
    /// at exit (a flatten classified as patch vs rebuild, say).
    pub fn exit_as(&self, phase: PhaseId) {
        self.finish(Some(phase));
    }

    /// The recorder's monotonic clock and trace watermark right now — a
    /// start/end pair for [`record_complete`](Self::record_complete). Zeros
    /// on a disabled sink.
    pub fn stamp(&self) -> SpanStamp {
        match &self.shared {
            Some(shared) => SpanStamp {
                ns: shared.recorder.now_ns(),
                trace_seq: shared.recorder.trace_watermark(),
            },
            None => SpanStamp::default(),
        }
    }

    /// Records an externally-timed span of `phase` between two
    /// [`stamp`](Self::stamp)s, as a child of the current top of the stack.
    /// For stages whose borrow structure keeps the sink's enter/exit pair
    /// out of reach (the delta flattener's patch-vs-rebuild classification
    /// is only readable after the flattened graph borrow ends).
    pub fn record_complete(&self, phase: PhaseId, start: SpanStamp, end: SpanStamp) {
        let Some(shared) = &self.shared else {
            return;
        };
        let mut state = self.state.borrow_mut();
        let duration = end.ns.saturating_sub(start.ns);
        let parent = state.stack.last_mut().map(|enclosing| {
            enclosing.child_ns += duration;
            enclosing.id
        });
        let span = Span {
            seq: shared.recorder.next_seq.fetch_add(1, Ordering::Relaxed),
            id: shared.recorder.next_id.fetch_add(1, Ordering::Relaxed),
            parent,
            phase,
            start_ns: start.ns,
            end_ns: end.ns,
            child_ns: 0,
            trace_first: start.trace_seq,
            trace_last: end.trace_seq,
            ids: state.context.clone(),
        };
        drop(state);
        let mut inner = shared.ring.inner.lock().expect("span ring lock");
        if inner.ring.len() == shared.recorder.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(span);
    }

    fn finish(&self, phase: Option<PhaseId>) {
        let Some(shared) = &self.shared else {
            return;
        };
        let mut state = self.state.borrow_mut();
        let Some(open) = state.stack.pop() else {
            debug_assert!(false, "span exit without a matching enter");
            return;
        };
        let end_ns = shared.recorder.now_ns();
        let duration = end_ns.saturating_sub(open.start_ns);
        let parent = state.stack.last_mut().map(|enclosing| {
            enclosing.child_ns += duration;
            enclosing.id
        });
        let span = Span {
            seq: shared.recorder.next_seq.fetch_add(1, Ordering::Relaxed),
            id: open.id,
            parent,
            phase: phase.unwrap_or(open.phase),
            start_ns: open.start_ns,
            end_ns,
            child_ns: open.child_ns,
            trace_first: open.trace_first,
            trace_last: shared.recorder.trace_watermark(),
            ids: state.context.clone(),
        };
        drop(state);
        let mut inner = shared.ring.inner.lock().expect("span ring lock");
        if inner.ring.len() == shared.recorder.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(span);
    }
}

/// Per-phase aggregate over a set of spans.
#[derive(Debug)]
pub struct PhaseProfile {
    /// The phase.
    pub phase: PhaseId,
    /// Completed spans of this phase.
    pub count: u64,
    /// Summed wall-clock duration.
    pub total_ns: u64,
    /// Summed self time (duration minus direct children).
    pub self_ns: u64,
    /// Log-linear histogram of span durations (bounded ~3% quantile error).
    pub histogram: Histogram,
}

/// One step of a job's critical path.
#[derive(Debug, Clone)]
pub struct PathStep {
    /// The phase of the step's span.
    pub phase: PhaseId,
    /// The lease the step ran under, if any.
    pub lease: Option<u64>,
    /// The worker that ran the step, if known.
    pub worker: Option<Arc<str>>,
    /// Span start, ns since the recorder epoch.
    pub start_ns: u64,
    /// Span end, ns since the recorder epoch.
    pub end_ns: u64,
}

impl PathStep {
    fn of(span: &Span) -> PathStep {
        PathStep {
            phase: span.phase,
            lease: span.ids.lease,
            worker: span.ids.worker.clone(),
            start_ns: span.start_ns,
            end_ns: span.end_ns,
        }
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("phase", JsonValue::string(self.phase.name())),
            ("lease", SpanIds::json_num(self.lease)),
            ("worker", SpanIds::json_field(&self.worker)),
            ("start_ns", JsonValue::Int(i128::from(self.start_ns))),
            ("end_ns", JsonValue::Int(i128::from(self.end_ns))),
        ])
    }
}

/// A job's longest observed span chain: consecutive root spans walking
/// backwards from the job's last exit, each starting after the previous one
/// ended. The final step is the **straggler** — the lease whose completion
/// gated the job's wall clock (the lease hedging should have targeted).
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The job.
    pub job: u64,
    /// First span enter to last span exit across the whole job.
    pub wall_ns: u64,
    /// The chain, in chronological order.
    pub steps: Vec<PathStep>,
    /// The last-finishing step (straggler lease attribution).
    pub straggler: Option<PathStep>,
}

impl CriticalPath {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("job", JsonValue::Int(i128::from(self.job))),
            ("wall_ns", JsonValue::Int(i128::from(self.wall_ns))),
            (
                "straggler",
                self.straggler
                    .as_ref()
                    .map_or(JsonValue::Null, PathStep::to_json),
            ),
            (
                "steps",
                JsonValue::Array(self.steps.iter().map(PathStep::to_json).collect()),
            ),
        ])
    }
}

/// The aggregated view the `profile` op serves: per-phase totals, folded
/// flamegraph stacks and per-job critical paths.
#[derive(Debug, Default)]
pub struct Profile {
    /// Phases with at least one span, in [`PhaseId::ALL`] order.
    pub phases: Vec<PhaseProfile>,
    /// Folded stacks (`root;child;leaf self_ns`), one entry per distinct
    /// stack, sorted — the exact input `inferno` / `flamegraph.pl` take.
    pub folded: Vec<(String, u64)>,
    /// One critical path per job that had spans, in job-id order.
    pub critical_paths: Vec<CriticalPath>,
    /// Spans the rings dropped to overflow (the profile is missing them).
    pub dropped: u64,
}

impl Profile {
    /// Aggregates `spans` (any order) into the served profile. `dropped` is
    /// carried through verbatim from the [`SpanDrain`].
    pub fn from_spans(spans: &[Span], dropped: u64) -> Profile {
        let mut by_phase: BTreeMap<PhaseId, PhaseProfile> = BTreeMap::new();
        for span in spans {
            let entry = by_phase.entry(span.phase).or_insert_with(|| PhaseProfile {
                phase: span.phase,
                count: 0,
                total_ns: 0,
                self_ns: 0,
                histogram: Histogram::new(),
            });
            entry.count += 1;
            entry.total_ns += span.duration_ns();
            entry.self_ns += span.self_ns();
            entry.histogram.record(span.duration_ns());
        }
        let phases = PhaseId::ALL
            .into_iter()
            .filter_map(|phase| by_phase.remove(&phase))
            .collect();

        // Folded stacks: walk each span's parent chain to its root. A parent
        // the ring already dropped truncates the chain there — the span
        // still folds, just rooted shallower.
        let by_id: BTreeMap<u64, &Span> = spans.iter().map(|span| (span.id, span)).collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for span in spans {
            let mut names = vec![span.phase.name()];
            let mut cursor = span.parent;
            while let Some(parent_id) = cursor {
                let Some(parent) = by_id.get(&parent_id) else {
                    break;
                };
                names.push(parent.phase.name());
                cursor = parent.parent;
            }
            names.reverse();
            *folded.entry(names.join(";")).or_insert(0) += span.self_ns();
        }
        let folded = folded.into_iter().collect();

        // Critical path per job, over root spans only (nested spans are
        // already covered by their roots).
        let mut jobs: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        for span in spans {
            if let (Some(job), None) = (span.ids.job, span.parent) {
                jobs.entry(job).or_default().push(span);
            }
        }
        let critical_paths = jobs
            .into_iter()
            .map(|(job, mut roots)| {
                roots.sort_by_key(|span| (span.end_ns, span.start_ns));
                let first_start = roots.iter().map(|s| s.start_ns).min().unwrap_or(0);
                let last = *roots.last().expect("a job group is non-empty");
                let mut steps = vec![PathStep::of(last)];
                let mut current_start = last.start_ns;
                // Chain backwards: the latest-ending root that exited before
                // the current step entered is the step that gated it.
                while let Some(prev) = roots.iter().rev().find(|span| span.end_ns <= current_start)
                {
                    current_start = prev.start_ns;
                    steps.push(PathStep::of(prev));
                }
                steps.reverse();
                CriticalPath {
                    job,
                    wall_ns: last.end_ns.saturating_sub(first_start),
                    straggler: Some(PathStep::of(last)),
                    steps,
                }
            })
            .collect();

        Profile {
            phases,
            folded,
            critical_paths,
            dropped,
        }
    }

    /// Summed self time across every phase — approximates total busy worker
    /// time when the drain roots cover the workers' running time.
    pub fn total_self_ns(&self) -> u64 {
        self.phases.iter().map(|phase| phase.self_ns).sum()
    }

    /// The profile as one canonical JSON object (what the `profile` op
    /// returns and quiesce persists as `profile.json`).
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|entry| {
                JsonValue::object([
                    ("phase", JsonValue::string(entry.phase.name())),
                    ("count", JsonValue::Int(i128::from(entry.count))),
                    ("total_ns", JsonValue::Int(i128::from(entry.total_ns))),
                    ("self_ns", JsonValue::Int(i128::from(entry.self_ns))),
                    ("duration_ns", entry.histogram.summary()),
                ])
            })
            .collect();
        let folded = self
            .folded
            .iter()
            .map(|(stack, self_ns)| JsonValue::string(format!("{stack} {self_ns}")))
            .collect();
        let paths = self
            .critical_paths
            .iter()
            .map(CriticalPath::to_json)
            .collect();
        JsonValue::object([
            ("dropped", JsonValue::Int(i128::from(self.dropped))),
            ("phases", JsonValue::Array(phases)),
            ("folded", JsonValue::Array(folded)),
            ("critical_paths", JsonValue::Array(paths)),
        ])
    }
}

/// Renders `spans` as Chrome trace-event JSON — an object with a
/// `traceEvents` array of `ph:"X"` complete events (pid = tenant,
/// tid = worker, ts/dur in microseconds) plus `ph:"M"` metadata events
/// naming each pid/tid, loadable directly in Perfetto or `chrome://tracing`.
/// Each event's `args` carries the span's waitgraph node ids
/// (`job:{j}`, `shard:{j}/{s}`, `lease:{l}`, ...) and its
/// `trace_first`/`trace_last` scheduler-trace window.
pub fn chrome_trace(spans: &[Span]) -> JsonValue {
    // Stable small integer ids: tenants (pids) and workers (tids) in sorted
    // name order, 0 reserved for "no attribution" (registry-side spans).
    let mut tenants: Vec<&str> = spans
        .iter()
        .filter_map(|span| span.ids.tenant.as_deref())
        .collect();
    tenants.sort_unstable();
    tenants.dedup();
    let mut workers: Vec<&str> = spans
        .iter()
        .filter_map(|span| span.ids.worker.as_deref())
        .collect();
    workers.sort_unstable();
    workers.dedup();
    let pid_of = |tenant: Option<&str>| {
        tenant.map_or(0, |name| {
            tenants
                .iter()
                .position(|t| *t == name)
                .expect("tenant indexed") as i128
                + 1
        })
    };
    let tid_of = |worker: Option<&str>| {
        worker.map_or(0, |name| {
            workers
                .iter()
                .position(|w| *w == name)
                .expect("worker indexed") as i128
                + 1
        })
    };

    let mut events = Vec::new();
    let mut named: Vec<(i128, i128)> = Vec::new();
    let meta = |name: &str, pid: i128, tid: i128, label: String| {
        JsonValue::object([
            ("name", JsonValue::string(name)),
            ("ph", JsonValue::string("M")),
            ("pid", JsonValue::Int(pid)),
            ("tid", JsonValue::Int(tid)),
            (
                "args",
                JsonValue::object([("name", JsonValue::string(label))]),
            ),
        ])
    };
    events.push(meta("process_name", 0, 0, "store".to_string()));
    for (index, tenant) in tenants.iter().enumerate() {
        events.push(meta(
            "process_name",
            index as i128 + 1,
            0,
            format!("tenant:{tenant}"),
        ));
    }
    for span in spans {
        let pid = pid_of(span.ids.tenant.as_deref());
        let tid = tid_of(span.ids.worker.as_deref());
        if !named.contains(&(pid, tid)) {
            named.push((pid, tid));
            let label = span
                .ids
                .worker
                .as_deref()
                .map_or("registry".to_string(), |worker| format!("worker:{worker}"));
            events.push(meta("thread_name", pid, tid, label));
        }
        let args = JsonValue::object([
            ("span", JsonValue::Int(i128::from(span.id))),
            ("parent", SpanIds::json_num(span.parent)),
            (
                "job",
                span.ids.job.map_or(JsonValue::Null, |job| {
                    JsonValue::string(format!("job:{job}"))
                }),
            ),
            (
                "shard",
                match (span.ids.job, span.ids.shard) {
                    (Some(job), Some(shard)) => JsonValue::string(format!("shard:{job}/{shard}")),
                    _ => JsonValue::Null,
                },
            ),
            (
                "lease",
                span.ids.lease.map_or(JsonValue::Null, |lease| {
                    JsonValue::string(format!("lease:{lease}"))
                }),
            ),
            (
                "tenant",
                span.ids.tenant.as_deref().map_or(JsonValue::Null, |t| {
                    JsonValue::string(format!("tenant:{t}"))
                }),
            ),
            (
                "worker",
                span.ids.worker.as_deref().map_or(JsonValue::Null, |w| {
                    JsonValue::string(format!("worker:{w}"))
                }),
            ),
            ("dur_ns", JsonValue::Int(i128::from(span.duration_ns()))),
            ("self_ns", JsonValue::Int(i128::from(span.self_ns()))),
            ("trace_first", JsonValue::Int(i128::from(span.trace_first))),
            ("trace_last", JsonValue::Int(i128::from(span.trace_last))),
        ]);
        events.push(JsonValue::object([
            ("name", JsonValue::string(span.phase.name())),
            ("cat", JsonValue::string("spi")),
            ("ph", JsonValue::string("X")),
            ("pid", JsonValue::Int(pid)),
            ("tid", JsonValue::Int(tid)),
            ("ts", JsonValue::Int(i128::from(span.start_ns / 1_000))),
            (
                "dur",
                JsonValue::Int(i128::from(span.duration_ns() / 1_000)),
            ),
            ("args", args),
        ]));
    }
    JsonValue::object([
        ("displayTimeUnit", JsonValue::string("ns")),
        ("traceEvents", JsonValue::Array(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize) -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder::new(capacity))
    }

    #[test]
    fn disabled_recorder_hands_out_noop_sinks() {
        let recorder = Arc::new(SpanRecorder::disabled());
        assert!(!recorder.is_enabled());
        let sink = recorder.sink("w0");
        assert!(!sink.is_enabled());
        sink.enter(PhaseId::DrainShard);
        sink.exit();
        assert_eq!(recorder.next_seq(), 0);
        assert!(recorder.spans().is_empty());
    }

    #[test]
    fn nesting_assigns_parents_and_self_time() {
        let recorder = recorder(64);
        let sink = recorder.sink("w0");
        sink.set_context(SpanIds {
            job: Some(3),
            shard: Some(1),
            lease: Some(7),
            tenant: Some("team".into()),
            worker: Some("w0".into()),
        });
        sink.enter(PhaseId::DrainShard);
        sink.enter(PhaseId::FlattenRebuild);
        sink.exit();
        sink.enter(PhaseId::CompileLower);
        sink.exit();
        sink.exit();
        let spans = recorder.spans();
        assert_eq!(spans.len(), 3);
        let root = spans
            .iter()
            .find(|s| s.phase == PhaseId::DrainShard)
            .unwrap();
        assert_eq!(root.parent, None);
        for child in spans.iter().filter(|s| s.phase != PhaseId::DrainShard) {
            assert_eq!(child.parent, Some(root.id));
            assert!(child.start_ns >= root.start_ns && child.end_ns <= root.end_ns);
        }
        let children_ns: u64 = spans
            .iter()
            .filter(|s| s.parent == Some(root.id))
            .map(Span::duration_ns)
            .sum();
        assert_eq!(root.child_ns, children_ns);
        assert_eq!(root.self_ns(), root.duration_ns() - children_ns);
        assert_eq!(root.ids.job, Some(3));
        assert_eq!(root.ids.tenant.as_deref(), Some("team"));
    }

    #[test]
    fn exit_as_reclassifies_the_open_phase() {
        let recorder = recorder(8);
        let sink = recorder.sink("w0");
        sink.enter(PhaseId::FlattenRebuild);
        sink.exit_as(PhaseId::FlattenPatch);
        assert_eq!(recorder.spans()[0].phase, PhaseId::FlattenPatch);
    }

    /// LCG-driven random nesting: every recorded span must exit at or after
    /// it entered, sit fully inside its parent, and never claim more child
    /// time than its own duration.
    #[test]
    fn random_nesting_preserves_span_invariants() {
        let phases = PhaseId::ALL;
        let mut lcg = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as usize
        };
        let recorder = recorder(4096);
        let sink = recorder.sink("w0");
        let mut depth = 0usize;
        for _ in 0..2000 {
            let enter = depth == 0 || (depth < 12 && next() % 3 != 0);
            if enter {
                sink.enter(phases[next() % phases.len()]);
                depth += 1;
            } else {
                sink.exit();
                depth -= 1;
            }
        }
        while depth > 0 {
            sink.exit();
            depth -= 1;
        }
        let spans = recorder.spans();
        assert!(spans.len() > 100, "the walk closed plenty of spans");
        let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
        for span in &spans {
            assert!(span.end_ns >= span.start_ns, "exit at or after enter");
            assert!(span.child_ns <= span.duration_ns() || span.duration_ns() == 0);
            assert!(span.trace_last >= span.trace_first);
            if let Some(parent) = span.parent {
                let parent = by_id[&parent];
                assert!(
                    parent.start_ns <= span.start_ns && span.end_ns <= parent.end_ns,
                    "child [{}, {}] escapes parent [{}, {}]",
                    span.start_ns,
                    span.end_ns,
                    parent.start_ns,
                    parent.end_ns
                );
            }
        }
        // Completion (seq) order is exit order: strictly increasing end_ns
        // modulo clock resolution, and seqs are dense from 0.
        for (index, span) in spans.iter().enumerate() {
            assert_eq!(span.seq, index as u64);
        }
    }

    #[test]
    fn ring_overflow_drops_oldest_first_and_counts() {
        let recorder = recorder(8);
        let sink = recorder.sink("w0");
        for _ in 0..20 {
            sink.enter(PhaseId::WalAppend);
            sink.exit();
        }
        let drain = recorder.read_since(0);
        assert_eq!(drain.dropped, 12);
        assert_eq!(drain.spans.len(), 8);
        // Oldest-first: the survivors are exactly the newest 8 seqs.
        let seqs: Vec<u64> = drain.spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert_eq!(recorder.dropped(), 12);
    }

    #[test]
    fn read_since_filters_by_completion_seq_across_rings() {
        let recorder = recorder(64);
        let a = recorder.sink("a");
        let b = recorder.sink("b");
        for _ in 0..3 {
            a.enter(PhaseId::WalAppend);
            a.exit();
            b.enter(PhaseId::LeaseRenew);
            b.exit();
        }
        let all = recorder.read_since(0);
        assert_eq!(all.spans.len(), 6);
        assert!(all.spans.windows(2).all(|w| w[0].seq < w[1].seq));
        let tail = recorder.read_since(4);
        assert_eq!(tail.spans.len(), 2);
        assert!(tail.spans.iter().all(|s| s.seq >= 4));
    }

    #[test]
    fn trace_watermark_brackets_the_span() {
        let recorder = recorder(8);
        let mirror = Arc::new(AtomicU64::new(41));
        recorder.link_trace_seq(Arc::clone(&mirror));
        let sink = recorder.sink("w0");
        sink.enter(PhaseId::ShardCommit);
        mirror.store(45, Ordering::Relaxed);
        sink.exit();
        let span = &recorder.spans()[0];
        assert_eq!((span.trace_first, span.trace_last), (41, 45));
    }

    #[test]
    fn span_json_round_trips_through_the_strict_parser() {
        let recorder = recorder(8);
        let sink = recorder.sink("w0");
        sink.set_context(SpanIds {
            job: Some(1),
            shard: Some(2),
            lease: Some(3),
            tenant: Some("t".into()),
            worker: Some("w0".into()),
        });
        sink.enter(PhaseId::PartitionSearch);
        sink.exit();
        let span = &recorder.spans()[0];
        let parsed = JsonValue::parse(&span.to_json().to_line()).unwrap();
        assert_eq!(
            parsed.get("phase").unwrap().as_str(),
            Some("partition_search")
        );
        assert_eq!(parsed.get("job").unwrap().as_u64(), Some(1));
        assert_eq!(
            PhaseId::from_name(parsed.get("phase").unwrap().as_str().unwrap()),
            Some(PhaseId::PartitionSearch)
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn synthetic_span(
        seq: u64,
        id: u64,
        parent: Option<u64>,
        phase: PhaseId,
        start_ns: u64,
        end_ns: u64,
        child_ns: u64,
        job: Option<u64>,
        lease: Option<u64>,
    ) -> Span {
        Span {
            seq,
            id,
            parent,
            phase,
            start_ns,
            end_ns,
            child_ns,
            trace_first: 0,
            trace_last: 0,
            ids: SpanIds {
                job,
                shard: None,
                lease,
                tenant: None,
                worker: None,
            },
        }
    }

    #[test]
    fn profile_folds_stacks_and_attributes_self_time() {
        // drain[0,100]{ flatten[10,30], search[40,90] }, plus a bare commit.
        let spans = vec![
            synthetic_span(
                0,
                1,
                Some(0),
                PhaseId::FlattenPatch,
                10,
                30,
                0,
                Some(0),
                Some(1),
            ),
            synthetic_span(
                1,
                2,
                Some(0),
                PhaseId::PartitionSearch,
                40,
                90,
                0,
                Some(0),
                Some(1),
            ),
            synthetic_span(
                2,
                0,
                None,
                PhaseId::DrainShard,
                0,
                100,
                70,
                Some(0),
                Some(1),
            ),
            synthetic_span(
                3,
                3,
                None,
                PhaseId::ShardCommit,
                100,
                110,
                0,
                Some(0),
                Some(1),
            ),
        ];
        let profile = Profile::from_spans(&spans, 5);
        assert_eq!(profile.dropped, 5);
        let drain = profile
            .phases
            .iter()
            .find(|p| p.phase == PhaseId::DrainShard)
            .unwrap();
        assert_eq!((drain.count, drain.total_ns, drain.self_ns), (1, 100, 30));
        assert_eq!(profile.total_self_ns(), 30 + 20 + 50 + 10);
        let folded: BTreeMap<&str, u64> = profile
            .folded
            .iter()
            .map(|(stack, ns)| (stack.as_str(), *ns))
            .collect();
        assert_eq!(folded["drain_shard"], 30);
        assert_eq!(folded["drain_shard;flatten_patch"], 20);
        assert_eq!(folded["drain_shard;partition_search"], 50);
        assert_eq!(folded["shard_commit"], 10);
    }

    #[test]
    fn critical_path_chains_backwards_to_the_straggler() {
        // Two "waves" of drains on job 0: [0,50] and [10,60] overlap, then
        // [70,200] runs after both — the path is one early drain plus the
        // straggler, and the wall clock spans first enter to last exit.
        let spans = vec![
            synthetic_span(0, 0, None, PhaseId::DrainShard, 0, 50, 0, Some(0), Some(10)),
            synthetic_span(
                1,
                1,
                None,
                PhaseId::DrainShard,
                10,
                60,
                0,
                Some(0),
                Some(11),
            ),
            synthetic_span(
                2,
                2,
                None,
                PhaseId::DrainShard,
                70,
                200,
                0,
                Some(0),
                Some(12),
            ),
        ];
        let profile = Profile::from_spans(&spans, 0);
        assert_eq!(profile.critical_paths.len(), 1);
        let path = &profile.critical_paths[0];
        assert_eq!(path.job, 0);
        assert_eq!(path.wall_ns, 200);
        assert_eq!(path.straggler.as_ref().unwrap().lease, Some(12));
        let leases: Vec<Option<u64>> = path.steps.iter().map(|s| s.lease).collect();
        assert_eq!(leases, vec![Some(11), Some(12)]);
    }

    #[test]
    fn chrome_trace_emits_metadata_and_complete_events() {
        let recorder = recorder(16);
        let sink = recorder.sink("w0");
        sink.set_context(SpanIds {
            job: Some(0),
            shard: Some(2),
            lease: Some(9),
            tenant: Some("team-a".into()),
            worker: Some("w0".into()),
        });
        sink.enter(PhaseId::DrainShard);
        sink.enter(PhaseId::FlattenRebuild);
        sink.exit();
        sink.exit();
        let trace = chrome_trace(&recorder.spans());
        let parsed = JsonValue::parse(&trace.to_line()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for event in &complete {
            let args = event.get("args").unwrap();
            assert_eq!(args.get("job").unwrap().as_str(), Some("job:0"));
            assert_eq!(args.get("shard").unwrap().as_str(), Some("shard:0/2"));
            assert_eq!(args.get("lease").unwrap().as_str(), Some("lease:9"));
            assert_eq!(args.get("tenant").unwrap().as_str(), Some("tenant:team-a"));
            assert_eq!(args.get("worker").unwrap().as_str(), Some("worker:w0"));
        }
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(JsonValue::as_str)
            .collect();
        assert!(names.contains(&"tenant:team-a"));
        assert!(names.contains(&"worker:w0"));
    }
}
