//! Lock-free metrics: atomic counters/gauges and log-linear bounded-error
//! histograms, organized in a [`MetricsRegistry`] with static metric ids and
//! per-tenant label handles.
//!
//! Everything on the record path is a handful of `Relaxed` atomic operations
//! — no locks, no allocation. The only lock in the module guards the
//! tenant-label table, and it is taken exactly once per tenant (at submit
//! time) to hand out an [`Arc<TenantMetrics>`] handle; the hot paths then go
//! through the handle. A registry can be constructed *disabled*
//! ([`MetricsRegistry::disabled`]), in which case every record call is a
//! single branch and nothing else — that stubbed mode is what the `obs`
//! bench section compares against to gate instrumentation overhead.
//!
//! # Histogram layout
//!
//! [`Histogram`] is log-linear with [`GROUPS`] = 32 sub-buckets per octave:
//! values below 32 get one exact bucket each; every value `v ≥ 32` lands in
//! the bucket `[(32+s)·2^e, (32+s+1)·2^e)` for `v`'s octave, so a bucket's
//! width is at most `1/32` of its lower bound. Quantiles report the bucket's
//! **upper** bound (clamped to the exact tracked maximum), which pins the
//! error bound tested against the exact sorted-sample oracle:
//! `exact ≤ approx ≤ exact + exact/32` (exact in the linear region). The
//! range is bounded at `2^42` (≈ 73 minutes in nanoseconds); larger values
//! saturate into one overflow bucket and quantiles falling there report the
//! tracked maximum.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spi_model::json::JsonValue;

/// Sub-buckets per octave; the histogram's relative-error denominator.
pub const GROUPS: u64 = 32;
/// log2([`GROUPS`]).
const GROUP_BITS: u32 = 5;
/// Values at or above `2^MAX_EXP` saturate into the overflow bucket.
const MAX_EXP: u32 = 42;
/// Linear region (one bucket per value) + 32 buckets per octave for
/// exponents `5..MAX_EXP`, + 1 saturation bucket.
const BUCKETS: usize = (MAX_EXP - GROUP_BITS + 1) as usize * GROUPS as usize + 1;

/// Largest value the histogram resolves without saturating.
pub const HISTOGRAM_BOUND: u64 = 1 << MAX_EXP;

/// Index of the bucket holding `value`.
fn bucket_index(value: u64) -> usize {
    if value < GROUPS {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    if exp >= MAX_EXP {
        return BUCKETS - 1;
    }
    let shift = exp - GROUP_BITS;
    ((shift as u64 + 1) * GROUPS + ((value >> shift) - GROUPS)) as usize
}

/// Inclusive upper bound of bucket `index` (the value a quantile landing in
/// the bucket reports). The saturation bucket has no finite bound; callers
/// clamp to the tracked maximum.
fn bucket_high(index: usize) -> u64 {
    if index < GROUPS as usize {
        return index as u64;
    }
    let octave = (index as u64) >> GROUP_BITS;
    let sub = index as u64 & (GROUPS - 1);
    let shift = (octave - 1) as u32;
    ((GROUPS + sub) << shift) + (1u64 << shift) - 1
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current cumulative count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (bytes outstanding, entries resident, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-linear bounded-error histogram (see the module docs for the bucket
/// layout and the error bound).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; a few `Relaxed` atomics.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, unaffected by bucketing).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The nearest-rank `pct` quantile (0–100), reported as the containing
    /// bucket's upper bound clamped to the exact maximum: never below the
    /// exact quantile, never more than `1/32` of it above (exact below 32
    /// and at `pct == 100`). Returns 0 on an empty histogram.
    pub fn quantile(&self, pct: u32) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let max = self.max();
        if pct >= 100 {
            return max;
        }
        let rank = ((u128::from(count) * u128::from(pct)).div_ceil(100) as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                if index == BUCKETS - 1 {
                    return max;
                }
                return bucket_high(index).min(max);
            }
        }
        max
    }

    /// Folds `other`'s observations into `self`, bucket by bucket. Merging
    /// is associative and commutative: any merge order yields bit-identical
    /// counts, sum, max and therefore quantiles.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The canonical JSON summary: count, sum, p50/p90/p99 and the exact max.
    pub fn summary(&self) -> JsonValue {
        JsonValue::object([
            ("count", JsonValue::Int(self.count() as i128)),
            ("sum", JsonValue::Int(self.sum() as i128)),
            ("p50", JsonValue::Int(self.quantile(50) as i128)),
            ("p90", JsonValue::Int(self.quantile(90) as i128)),
            ("p99", JsonValue::Int(self.quantile(99) as i128)),
            ("max", JsonValue::Int(self.max() as i128)),
        ])
    }
}

/// Static counter ids: one per instrumented event across the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // The names *are* the documentation; see `name()`.
pub enum CounterId {
    WfqEnqueues,
    WfqDequeues,
    LeaseGrants,
    LeaseRenews,
    LeaseExpiries,
    LeaseAbandons,
    HedgesIssued,
    HedgeWins,
    ShardCommits,
    EvalVariants,
    FlattenPatches,
    FlattenRebuilds,
    FlattenFallbacks,
    CacheHits,
    CacheMisses,
    CacheEvictions,
    WalAppends,
    WalAppendBytes,
    WalCompactions,
}

impl CounterId {
    /// Every counter id, in canonical (declaration) order.
    pub const ALL: [CounterId; 19] = [
        CounterId::WfqEnqueues,
        CounterId::WfqDequeues,
        CounterId::LeaseGrants,
        CounterId::LeaseRenews,
        CounterId::LeaseExpiries,
        CounterId::LeaseAbandons,
        CounterId::HedgesIssued,
        CounterId::HedgeWins,
        CounterId::ShardCommits,
        CounterId::EvalVariants,
        CounterId::FlattenPatches,
        CounterId::FlattenRebuilds,
        CounterId::FlattenFallbacks,
        CounterId::CacheHits,
        CounterId::CacheMisses,
        CounterId::CacheEvictions,
        CounterId::WalAppends,
        CounterId::WalAppendBytes,
        CounterId::WalCompactions,
    ];

    /// The stable wire name of this counter.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::WfqEnqueues => "wfq.enqueues",
            CounterId::WfqDequeues => "wfq.dequeues",
            CounterId::LeaseGrants => "lease.grants",
            CounterId::LeaseRenews => "lease.renews",
            CounterId::LeaseExpiries => "lease.expiries",
            CounterId::LeaseAbandons => "lease.abandons",
            CounterId::HedgesIssued => "lease.hedges_issued",
            CounterId::HedgeWins => "lease.hedge_wins",
            CounterId::ShardCommits => "shard.commits",
            CounterId::EvalVariants => "eval.variants",
            CounterId::FlattenPatches => "flatten.patches",
            CounterId::FlattenRebuilds => "flatten.rebuilds",
            CounterId::FlattenFallbacks => "flatten.fallbacks",
            CounterId::CacheHits => "cache.hits",
            CounterId::CacheMisses => "cache.misses",
            CounterId::CacheEvictions => "cache.evictions",
            CounterId::WalAppends => "wal.appends",
            CounterId::WalAppendBytes => "wal.append_bytes",
            CounterId::WalCompactions => "wal.compactions",
        }
    }
}

/// Static gauge ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // The names *are* the documentation; see `name()`.
pub enum GaugeId {
    WalLogBytes,
    CacheEntries,
    CacheBytes,
}

impl GaugeId {
    /// Every gauge id, in canonical (declaration) order.
    pub const ALL: [GaugeId; 3] = [
        GaugeId::WalLogBytes,
        GaugeId::CacheEntries,
        GaugeId::CacheBytes,
    ];

    /// The stable wire name of this gauge.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::WalLogBytes => "wal.log_bytes",
            GaugeId::CacheEntries => "cache.entries",
            GaugeId::CacheBytes => "cache.bytes",
        }
    }
}

/// Static histogram ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // The names *are* the documentation; see `name()`.
pub enum HistogramId {
    ShardEvalNs,
    BatchEvalNs,
    FlattenPatchedProcesses,
}

impl HistogramId {
    /// Every histogram id, in canonical (declaration) order.
    pub const ALL: [HistogramId; 3] = [
        HistogramId::ShardEvalNs,
        HistogramId::BatchEvalNs,
        HistogramId::FlattenPatchedProcesses,
    ];

    /// The stable wire name of this histogram.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::ShardEvalNs => "shard.eval_ns",
            HistogramId::BatchEvalNs => "batch.eval_ns",
            HistogramId::FlattenPatchedProcesses => "flatten.patched_processes",
        }
    }
}

/// Per-tenant metric bundle, handed out once as an `Arc` handle (the one
/// lock acquisition) and then updated lock-free on the hot path.
#[derive(Debug)]
pub struct TenantMetrics {
    enabled: bool,
    /// Shards dispatched to workers for this tenant.
    service: Counter,
    /// Shards enqueued into the fair scheduler for this tenant.
    enqueues: Counter,
    /// Shards currently queued (pending dispatch).
    backlog: Gauge,
    /// How far the tenant's WFQ finish tag trails the scheduler's virtual
    /// time — a persistently growing lag on a backlogged tenant is the
    /// starvation signature the watchdog looks for.
    vtime_lag: Gauge,
}

impl TenantMetrics {
    fn new(enabled: bool) -> TenantMetrics {
        TenantMetrics {
            enabled,
            service: Counter::default(),
            enqueues: Counter::default(),
            backlog: Gauge::default(),
            vtime_lag: Gauge::default(),
        }
    }

    /// Counts one shard dispatch for this tenant.
    pub fn add_service(&self) {
        if self.enabled {
            self.service.add(1);
        }
    }

    /// Counts one shard enqueue for this tenant.
    pub fn add_enqueue(&self) {
        if self.enabled {
            self.enqueues.add(1);
        }
    }

    /// Updates the tenant's queue depth and virtual-time lag.
    pub fn observe_queue(&self, backlog: u64, vtime_lag: u64) {
        if self.enabled {
            self.backlog.set(backlog);
            self.vtime_lag.set(vtime_lag);
        }
    }

    /// Cumulative shard dispatches.
    pub fn service(&self) -> u64 {
        self.service.get()
    }

    /// Cumulative shard enqueues.
    pub fn enqueues(&self) -> u64 {
        self.enqueues.get()
    }

    /// Currently queued shards.
    pub fn backlog(&self) -> u64 {
        self.backlog.get()
    }

    /// Current virtual-time lag behind the scheduler clock.
    pub fn vtime_lag(&self) -> u64 {
        self.vtime_lag.get()
    }
}

/// The process-wide metric registry: static counters/gauges/histograms plus
/// a `(tenant)` label table. All record paths are lock-free; construction
/// with [`MetricsRegistry::disabled`] turns every record call into a single
/// branch (the instrumentation-stubbed mode the `obs` bench compares).
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: [Counter; CounterId::ALL.len()],
    gauges: [Gauge; GaugeId::ALL.len()],
    histograms: [Histogram; HistogramId::ALL.len()],
    tenants: Mutex<BTreeMap<String, Arc<TenantMetrics>>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    fn build(enabled: bool) -> MetricsRegistry {
        MetricsRegistry {
            enabled,
            counters: std::array::from_fn(|_| Counter::default()),
            gauges: std::array::from_fn(|_| Gauge::default()),
            histograms: std::array::from_fn(|_| Histogram::new()),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// A live registry: every record call lands.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::build(true)
    }

    /// A stubbed registry: every record call is one branch and nothing else.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::build(false)
    }

    /// Whether record calls land.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to a static counter.
    pub fn add(&self, id: CounterId, delta: u64) {
        if self.enabled {
            self.counters[id as usize].add(delta);
        }
    }

    /// The current value of a static counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].get()
    }

    /// Sets a static gauge.
    pub fn set_gauge(&self, id: GaugeId, value: u64) {
        if self.enabled {
            self.gauges[id as usize].set(value);
        }
    }

    /// The current value of a static gauge.
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize].get()
    }

    /// Records one observation into a static histogram.
    pub fn record(&self, id: HistogramId, value: u64) {
        if self.enabled {
            self.histograms[id as usize].record(value);
        }
    }

    /// Read access to a static histogram.
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id as usize]
    }

    /// The label handle for `tenant`, created on first use. This is the one
    /// lock in the registry; call it off the hot path (at submit) and keep
    /// the returned `Arc`.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantMetrics> {
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Arc::new(TenantMetrics::new(self.enabled)))
            .clone()
    }

    /// The cumulative dispatch count for `tenant` (0 if never seen) — the
    /// progress signal the stall watchdog compares between sweeps.
    pub fn tenant_service(&self, tenant: &str) -> u64 {
        self.tenants
            .lock()
            .expect("tenant table poisoned")
            .get(tenant)
            .map_or(0, |handle| handle.service())
    }

    /// The full registry as canonical JSON: cumulative counters, gauge
    /// levels, histogram summaries (p50/p90/p99/max) and per-tenant rows,
    /// each section in a fixed declaration (or sorted-name) order.
    pub fn snapshot(&self) -> JsonValue {
        let counters = CounterId::ALL
            .iter()
            .map(|id| {
                (
                    id.name().to_string(),
                    JsonValue::Int(self.counter(*id) as i128),
                )
            })
            .collect();
        let gauges = GaugeId::ALL
            .iter()
            .map(|id| {
                (
                    id.name().to_string(),
                    JsonValue::Int(self.gauge(*id) as i128),
                )
            })
            .collect();
        let histograms = HistogramId::ALL
            .iter()
            .map(|id| (id.name().to_string(), self.histogram(*id).summary()))
            .collect();
        let tenants = self
            .tenants
            .lock()
            .expect("tenant table poisoned")
            .iter()
            .map(|(name, handle)| {
                (
                    name.clone(),
                    JsonValue::object([
                        ("service", JsonValue::Int(handle.service() as i128)),
                        ("enqueues", JsonValue::Int(handle.enqueues() as i128)),
                        ("backlog", JsonValue::Int(handle.backlog() as i128)),
                        ("vtime_lag", JsonValue::Int(handle.vtime_lag() as i128)),
                    ]),
                )
            })
            .collect();
        JsonValue::object([
            ("counters", JsonValue::Object(counters)),
            ("gauges", JsonValue::Object(gauges)),
            ("histograms", JsonValue::Object(histograms)),
            ("tenants", JsonValue::Object(tenants)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let histogram = Histogram::new();
        for v in 0..GROUPS {
            histogram.record(v);
        }
        for pct in [1, 25, 50, 75, 100] {
            let rank = ((GROUPS * pct).div_ceil(100)).max(1);
            assert_eq!(histogram.quantile(pct as u32), rank - 1, "pct {pct}");
        }
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        // Every bucket's high is one less than the next bucket's low, i.e.
        // bucket_index(high) == index and bucket_index(high + 1) == index+1.
        for index in 0..BUCKETS - 1 {
            let high = bucket_high(index);
            assert_eq!(bucket_index(high), index, "high of {index}");
            assert_eq!(bucket_index(high + 1), index + 1, "next after {index}");
        }
        assert_eq!(bucket_index(HISTOGRAM_BOUND), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_is_upper_bounded_by_max() {
        let histogram = Histogram::new();
        histogram.record(1000);
        histogram.record(1001);
        assert_eq!(histogram.quantile(100), 1001);
        assert!(histogram.quantile(50) >= 1000);
        assert!(histogram.quantile(50) <= 1001);
    }

    #[test]
    fn saturation_clamps_to_tracked_max() {
        let histogram = Histogram::new();
        histogram.record(HISTOGRAM_BOUND + 12345);
        histogram.record(u64::MAX);
        assert_eq!(histogram.count(), 2);
        assert_eq!(histogram.quantile(50), u64::MAX);
        assert_eq!(histogram.quantile(100), u64::MAX);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = MetricsRegistry::disabled();
        registry.add(CounterId::CacheHits, 3);
        registry.set_gauge(GaugeId::WalLogBytes, 99);
        registry.record(HistogramId::ShardEvalNs, 5);
        let tenant = registry.tenant("t");
        tenant.add_service();
        tenant.observe_queue(4, 5);
        assert_eq!(registry.counter(CounterId::CacheHits), 0);
        assert_eq!(registry.gauge(GaugeId::WalLogBytes), 0);
        assert_eq!(registry.histogram(HistogramId::ShardEvalNs).count(), 0);
        assert_eq!(tenant.service(), 0);
        assert_eq!(tenant.backlog(), 0);
    }

    #[test]
    fn snapshot_is_canonical_and_complete() {
        let registry = MetricsRegistry::new();
        registry.add(CounterId::CacheHits, 2);
        registry.set_gauge(GaugeId::CacheEntries, 1);
        registry.record(HistogramId::ShardEvalNs, 500);
        registry.tenant("b").add_service();
        registry.tenant("a").add_enqueue();
        let snapshot = registry.snapshot();
        let counters = snapshot.require("counters").unwrap();
        for id in CounterId::ALL {
            assert!(counters.get(id.name()).is_some(), "missing {}", id.name());
        }
        assert_eq!(counters.require("cache.hits").unwrap().as_u64(), Some(2));
        let tenants = snapshot.require("tenants").unwrap();
        match tenants {
            JsonValue::Object(members) => {
                let names: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(names, ["a", "b"], "tenants sorted by name");
            }
            _ => panic!("tenants must be an object"),
        }
        // The snapshot line is canonical: re-snapshotting an unchanged
        // registry yields the identical line.
        assert_eq!(snapshot.to_line(), registry.snapshot().to_line());
    }
}
