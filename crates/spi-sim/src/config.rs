//! Simulation configuration.

use serde::{Deserialize, Serialize};

use spi_model::TimeValue;

/// Which bound of an interval parameter the simulator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BoundModel {
    /// Use the lower bound (optimistic latency, minimal data amounts).
    Lower,
    /// Use the upper bound (pessimistic latency, maximal data amounts).
    #[default]
    Upper,
}

impl BoundModel {
    /// Picks the configured bound from an interval.
    pub fn pick(self, interval: spi_model::Interval) -> u64 {
        match self {
            BoundModel::Lower => interval.lo(),
            BoundModel::Upper => interval.hi(),
        }
    }
}

/// What happens when a token is produced on a full bounded channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Abort the simulation with [`crate::SimError::ChannelOverflow`].
    #[default]
    Error,
    /// Silently drop the newly produced token (counted in the statistics).
    DropNewest,
    /// Drop the oldest queued token to make room (counted in the statistics).
    DropOldest,
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation stops once the clock would pass this horizon.
    pub horizon: TimeValue,
    /// Upper bound on the number of executions of any single process (guards against
    /// runaway sources in models without environment pacing).
    pub max_executions_per_process: u64,
    /// Which latency bound to use for execution times.
    pub latency_model: BoundModel,
    /// Which bound to use for consumption/production amounts.
    pub rate_model: BoundModel,
    /// Behaviour on bounded-channel overflow.
    pub overflow_policy: OverflowPolicy,
    /// Record a full event trace (disable for long benchmark runs).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: 100_000,
            max_executions_per_process: 10_000,
            latency_model: BoundModel::Upper,
            rate_model: BoundModel::Lower,
            overflow_policy: OverflowPolicy::Error,
            record_trace: true,
        }
    }
}

impl SimConfig {
    /// Creates the default configuration with the given horizon.
    pub fn with_horizon(horizon: TimeValue) -> Self {
        SimConfig {
            horizon,
            ..Default::default()
        }
    }

    /// Sets the per-process execution cap, returning `self` for chaining.
    pub fn max_executions(mut self, max: u64) -> Self {
        self.max_executions_per_process = max;
        self
    }

    /// Disables trace recording (keeps only aggregate statistics).
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::Interval;

    #[test]
    fn bound_model_picks_the_right_end() {
        let i = Interval::new(3, 5).unwrap();
        assert_eq!(BoundModel::Lower.pick(i), 3);
        assert_eq!(BoundModel::Upper.pick(i), 5);
    }

    #[test]
    fn default_configuration_is_reasonable() {
        let config = SimConfig::default();
        assert!(config.horizon > 0);
        assert!(config.max_executions_per_process > 0);
        assert_eq!(config.overflow_policy, OverflowPolicy::Error);
        assert!(config.record_trace);
    }

    #[test]
    fn builder_style_setters() {
        let config = SimConfig::with_horizon(500)
            .max_executions(3)
            .without_trace();
        assert_eq!(config.horizon, 500);
        assert_eq!(config.max_executions_per_process, 3);
        assert!(!config.record_trace);
    }
}
