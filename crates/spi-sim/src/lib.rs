//! # spi-sim
//!
//! A discrete-event simulator for SPI models ([`spi_model`]) extended with function
//! variants ([`spi_variants`]). The simulator provides the operational semantics that
//! the DAC'99 paper assumes informally:
//!
//! * data-driven **activation**: a process starts when one of its activation rules is
//!   enabled by the available tokens and their virtual mode tags;
//! * **mode execution** with interval latencies (worst- or best-case, configurable);
//! * token **production** with mode tags, FIFO queues (destructive read) and registers
//!   (destructive write);
//! * **reconfiguration steps**: when configuration annotations are attached (produced by
//!   [`spi_variants::VariantSystem::abstract_interface`]), switching between modes of
//!   different configurations inserts the reconfiguration latency and is accounted in
//!   the statistics — this is how the reconfigurable video system of Figure 4 is
//!   exercised end-to-end;
//! * external **injections** model environment stimuli (user requests, frame arrivals).
//!
//! See [`Simulator`] for a complete example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod state;
pub mod trace;

pub use config::{BoundModel, OverflowPolicy, SimConfig};
pub use engine::Simulator;
pub use error::SimError;
pub use state::{ChannelState, ChannelStates};
pub use trace::{SimReport, SimStats, TraceEvent};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
