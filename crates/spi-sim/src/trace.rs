//! Event traces and aggregate statistics of a simulation run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use spi_model::{ChannelId, ModeId, ProcessId, TimeValue};

/// A single trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A process started executing in a mode.
    Started {
        /// Simulation time of the start.
        time: TimeValue,
        /// Executing process.
        process: ProcessId,
        /// Activated mode.
        mode: ModeId,
    },
    /// A process completed an execution and produced its output tokens.
    Completed {
        /// Simulation time of the completion.
        time: TimeValue,
        /// Completing process.
        process: ProcessId,
        /// Mode the execution ran in.
        mode: ModeId,
    },
    /// A reconfiguration step was inserted before an execution.
    Reconfigured {
        /// Simulation time at which the reconfiguration started.
        time: TimeValue,
        /// Reconfigured process.
        process: ProcessId,
        /// Previous configuration index, if the process was configured before.
        from: Option<usize>,
        /// Newly selected configuration index.
        to: usize,
        /// Reconfiguration latency added to the execution.
        latency: TimeValue,
    },
    /// An externally injected token arrived on a channel.
    Injected {
        /// Simulation time of the injection.
        time: TimeValue,
        /// Target channel.
        channel: ChannelId,
    },
    /// A token was dropped because of the overflow policy.
    Dropped {
        /// Simulation time of the drop.
        time: TimeValue,
        /// Channel on which the overflow occurred.
        channel: ChannelId,
    },
}

impl TraceEvent {
    /// Simulation time of the event.
    pub fn time(&self) -> TimeValue {
        match self {
            TraceEvent::Started { time, .. }
            | TraceEvent::Completed { time, .. }
            | TraceEvent::Reconfigured { time, .. }
            | TraceEvent::Injected { time, .. }
            | TraceEvent::Dropped { time, .. } => *time,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Started {
                time,
                process,
                mode,
            } => {
                write!(f, "[{time}] {process} starts in {mode}")
            }
            TraceEvent::Completed {
                time,
                process,
                mode,
            } => {
                write!(f, "[{time}] {process} completes {mode}")
            }
            TraceEvent::Reconfigured {
                time,
                process,
                from,
                to,
                latency,
            } => match from {
                Some(from) => write!(
                    f,
                    "[{time}] {process} reconfigures conf{from} -> conf{to} (+{latency})"
                ),
                None => write!(f, "[{time}] {process} configures conf{to} (+{latency})"),
            },
            TraceEvent::Injected { time, channel } => {
                write!(f, "[{time}] injection on {channel}")
            }
            TraceEvent::Dropped { time, channel } => {
                write!(f, "[{time}] token dropped on {channel}")
            }
        }
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Executions per process.
    pub executions: BTreeMap<ProcessId, u64>,
    /// Executions per (process, mode).
    pub mode_executions: BTreeMap<(ProcessId, ModeId), u64>,
    /// Tokens produced per channel.
    pub tokens_produced: BTreeMap<ChannelId, u64>,
    /// Tokens consumed per channel.
    pub tokens_consumed: BTreeMap<ChannelId, u64>,
    /// Number of proper reconfigurations (configuration changes after the first).
    pub reconfigurations: u64,
    /// Total time spent in configuration/reconfiguration steps.
    pub reconfiguration_latency: TimeValue,
    /// Tokens dropped by the overflow policy.
    pub dropped_tokens: u64,
    /// Time of the last event.
    pub makespan: TimeValue,
}

impl SimStats {
    /// Total executions over all processes.
    pub fn total_executions(&self) -> u64 {
        self.executions.values().sum()
    }

    /// Executions of one process.
    pub fn executions_of(&self, process: ProcessId) -> u64 {
        self.executions.get(&process).copied().unwrap_or(0)
    }

    /// Tokens produced on one channel.
    pub fn produced_on(&self, channel: ChannelId) -> u64 {
        self.tokens_produced.get(&channel).copied().unwrap_or(0)
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "executions: {} total over {} processes, makespan {}",
            self.total_executions(),
            self.executions.len(),
            self.makespan
        )?;
        writeln!(
            f,
            "reconfigurations: {} (latency {}), dropped tokens: {}",
            self.reconfigurations, self.reconfiguration_latency, self.dropped_tokens
        )
    }
}

/// The result of a simulation run: statistics plus (optionally) the full trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Ordered event trace (empty when trace recording is disabled).
    pub trace: Vec<TraceEvent>,
    /// Simulation time at which the run stopped.
    pub end_time: TimeValue,
    /// Whether the run stopped because the horizon was reached (as opposed to quiescence).
    pub hit_horizon: bool,
    /// Tokens left on each channel when the run stopped.
    pub final_tokens: BTreeMap<ChannelId, u64>,
}

impl SimReport {
    /// Events of a given process in trace order.
    pub fn events_of(&self, process: ProcessId) -> Vec<&TraceEvent> {
        self.trace
            .iter()
            .filter(|e| match e {
                TraceEvent::Started { process: p, .. }
                | TraceEvent::Completed { process: p, .. }
                | TraceEvent::Reconfigured { process: p, .. } => *p == process,
                _ => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_time_accessor() {
        let e = TraceEvent::Started {
            time: 42,
            process: ProcessId::new(0),
            mode: ModeId::new(1),
        };
        assert_eq!(e.time(), 42);
        assert!(e.to_string().contains("[42]"));
    }

    #[test]
    fn stats_accessors_default_to_zero() {
        let stats = SimStats::default();
        assert_eq!(stats.total_executions(), 0);
        assert_eq!(stats.executions_of(ProcessId::new(3)), 0);
        assert_eq!(stats.produced_on(ChannelId::new(1)), 0);
    }

    #[test]
    fn report_filters_events_by_process() {
        let report = SimReport {
            trace: vec![
                TraceEvent::Started {
                    time: 0,
                    process: ProcessId::new(0),
                    mode: ModeId::new(0),
                },
                TraceEvent::Injected {
                    time: 1,
                    channel: ChannelId::new(0),
                },
                TraceEvent::Completed {
                    time: 2,
                    process: ProcessId::new(1),
                    mode: ModeId::new(0),
                },
            ],
            ..Default::default()
        };
        assert_eq!(report.events_of(ProcessId::new(0)).len(), 1);
        assert_eq!(report.events_of(ProcessId::new(1)).len(), 1);
        assert_eq!(report.events_of(ProcessId::new(9)).len(), 0);
    }
}
