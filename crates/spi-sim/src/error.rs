//! Error type of the simulator.

use std::fmt;

use spi_model::{ChannelId, ModelError, ProcessId};

/// Error raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An error bubbled up from the model layer.
    Model(ModelError),
    /// A token was produced on a full bounded channel and the overflow policy is
    /// [`crate::OverflowPolicy::Error`].
    ChannelOverflow {
        /// The channel that overflowed.
        channel: ChannelId,
        /// The process that produced the token.
        producer: ProcessId,
        /// Simulation time of the overflow.
        time: u64,
    },
    /// A process activated a mode but the declared consumption exceeds the available
    /// tokens — the model (or its activation function) is inconsistent.
    InsufficientTokens {
        /// The consuming process.
        process: ProcessId,
        /// The channel with too few tokens.
        channel: ChannelId,
        /// Tokens required by the activated mode.
        required: u64,
        /// Tokens actually available.
        available: u64,
    },
    /// An injection or query referenced a channel that does not exist.
    UnknownChannel(ChannelId),
    /// Generic configuration error with a human-readable explanation.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::ChannelOverflow {
                channel,
                producer,
                time,
            } => write!(
                f,
                "channel {channel} overflowed at time {time} (producer {producer})"
            ),
            SimError::InsufficientTokens {
                process,
                channel,
                required,
                available,
            } => write!(
                f,
                "process {process} activated a mode requiring {required} tokens on {channel} but only {available} are available"
            ),
            SimError::UnknownChannel(channel) => write!(f, "unknown channel {channel}"),
            SimError::Config(msg) => write!(f, "invalid simulation configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let err: SimError = ModelError::CyclicGraph.into();
        assert!(matches!(err, SimError::Model(_)));
        let overflow = SimError::ChannelOverflow {
            channel: ChannelId::new(1),
            producer: ProcessId::new(2),
            time: 30,
        };
        let text = overflow.to_string();
        assert!(text.contains("C1") && text.contains("30"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
