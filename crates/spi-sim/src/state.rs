//! Runtime channel state.
//!
//! [`ChannelStates`] holds the token contents of every channel during a simulation and
//! implements [`spi_model::ChannelView`] so that the activation functions and cluster
//! selection rules of the model can be evaluated against live state without any
//! translation.

use std::collections::{BTreeMap, VecDeque};

use spi_model::{ChannelId, ChannelKind, ChannelView, SpiGraph, Tag, Token};

use crate::config::OverflowPolicy;
use crate::error::SimError;

/// Runtime state of one channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelState {
    /// FIFO queue contents (front = first visible token) and optional capacity.
    Queue {
        /// Queued tokens, front first.
        tokens: VecDeque<Token>,
        /// Capacity bound, if any.
        capacity: Option<usize>,
    },
    /// Register contents (the most recently written token, if any).
    Register {
        /// Current register value.
        token: Option<Token>,
    },
}

impl ChannelState {
    fn for_kind(kind: ChannelKind, capacity: Option<usize>) -> Self {
        match kind {
            ChannelKind::Queue => ChannelState::Queue {
                tokens: VecDeque::new(),
                capacity,
            },
            ChannelKind::Register => ChannelState::Register { token: None },
        }
    }

    /// Number of visible tokens.
    pub fn available(&self) -> u64 {
        match self {
            ChannelState::Queue { tokens, .. } => tokens.len() as u64,
            ChannelState::Register { token } => u64::from(token.is_some()),
        }
    }

    /// The first visible token, if any.
    pub fn first(&self) -> Option<&Token> {
        match self {
            ChannelState::Queue { tokens, .. } => tokens.front(),
            ChannelState::Register { token } => token.as_ref(),
        }
    }
}

/// The state of all channels of a graph during simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelStates {
    states: BTreeMap<ChannelId, ChannelState>,
    dropped: u64,
}

impl ChannelStates {
    /// Initialises channel states from a graph, pre-loading declared initial tokens.
    pub fn from_graph(graph: &SpiGraph) -> Self {
        let mut states = BTreeMap::new();
        for channel in graph.channels() {
            let mut state = ChannelState::for_kind(channel.kind(), channel.capacity());
            for token in channel.initial_tokens() {
                // Initial tokens always fit: Channel validated capacity at build time.
                match &mut state {
                    ChannelState::Queue { tokens, .. } => tokens.push_back(token.clone()),
                    ChannelState::Register { token: slot } => *slot = Some(token.clone()),
                }
            }
            states.insert(channel.id(), state);
        }
        ChannelStates { states, dropped: 0 }
    }

    /// State of one channel.
    pub fn state(&self, channel: ChannelId) -> Option<&ChannelState> {
        self.states.get(&channel)
    }

    /// Total number of tokens dropped due to overflow handling so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pushes a token onto a channel, honouring the channel discipline and the
    /// overflow policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownChannel`] for unknown channels. Overflow errors are
    /// signalled by returning `Ok(false)` so the engine can attach producer/time
    /// context; `Ok(true)` means the token was stored (or legitimately overwritten for
    /// registers).
    pub fn push(
        &mut self,
        channel: ChannelId,
        token: Token,
        policy: OverflowPolicy,
    ) -> Result<bool, SimError> {
        let state = self
            .states
            .get_mut(&channel)
            .ok_or(SimError::UnknownChannel(channel))?;
        match state {
            ChannelState::Register { token: slot } => {
                // Destructive write: the previous value is simply replaced.
                *slot = Some(token);
                Ok(true)
            }
            ChannelState::Queue { tokens, capacity } => {
                if let Some(cap) = capacity {
                    if tokens.len() >= *cap {
                        return match policy {
                            OverflowPolicy::Error => Ok(false),
                            OverflowPolicy::DropNewest => {
                                self.dropped += 1;
                                Ok(true)
                            }
                            OverflowPolicy::DropOldest => {
                                tokens.pop_front();
                                tokens.push_back(token);
                                self.dropped += 1;
                                Ok(true)
                            }
                        };
                    }
                }
                tokens.push_back(token);
                Ok(true)
            }
        }
    }

    /// Consumes `count` tokens from a channel (destructive read for queues,
    /// non-destructive read for registers) and returns the tokens read.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownChannel`] for unknown channels. The caller must have
    /// checked availability; requesting more tokens than available is a logic error
    /// reported as [`SimError::InsufficientTokens`] by the engine.
    pub fn consume(&mut self, channel: ChannelId, count: u64) -> Result<Vec<Token>, SimError> {
        let state = self
            .states
            .get_mut(&channel)
            .ok_or(SimError::UnknownChannel(channel))?;
        match state {
            ChannelState::Register { token } => {
                // Register reads are non-destructive; reading yields the current value.
                Ok(token.iter().take(count as usize).cloned().collect())
            }
            ChannelState::Queue { tokens, .. } => {
                let take = count.min(tokens.len() as u64);
                Ok((0..take).filter_map(|_| tokens.pop_front()).collect())
            }
        }
    }

    /// Clears all tokens from a channel and returns how many were discarded (used for
    /// buffer loss on reconfiguration and by valve processes).
    pub fn clear(&mut self, channel: ChannelId) -> Result<u64, SimError> {
        let state = self
            .states
            .get_mut(&channel)
            .ok_or(SimError::UnknownChannel(channel))?;
        Ok(match state {
            ChannelState::Register { token } => {
                let n = u64::from(token.is_some());
                *token = None;
                n
            }
            ChannelState::Queue { tokens, .. } => {
                let n = tokens.len() as u64;
                tokens.clear();
                n
            }
        })
    }
}

impl ChannelView for ChannelStates {
    fn available(&self, channel: ChannelId) -> u64 {
        self.states.get(&channel).map_or(0, ChannelState::available)
    }

    fn first_token_has_tag(&self, channel: ChannelId, tag: &Tag) -> bool {
        self.states
            .get(&channel)
            .and_then(ChannelState::first)
            .is_some_and(|token| token.has_tag(tag))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::{GraphBuilder, Interval};

    fn graph_with_channels() -> (SpiGraph, ChannelId, ChannelId) {
        let mut b = GraphBuilder::new("channels");
        let p = b.process("p").latency(Interval::point(1)).build().unwrap();
        let q = b.channel("q", ChannelKind::Queue).unwrap();
        let r = b.channel("r", ChannelKind::Register).unwrap();
        b.connect_output(p, q, Interval::point(1)).unwrap();
        (b.finish().unwrap(), q, r)
    }

    #[test]
    fn queue_fifo_order_and_destructive_read() {
        let (g, q, _) = graph_with_channels();
        let mut states = ChannelStates::from_graph(&g);
        states
            .push(q, Token::tagged("a"), OverflowPolicy::Error)
            .unwrap();
        states
            .push(q, Token::tagged("b"), OverflowPolicy::Error)
            .unwrap();
        assert_eq!(states.available(q), 2);
        assert!(states.first_token_has_tag(q, &Tag::new("a")));
        let read = states.consume(q, 1).unwrap();
        assert_eq!(read.len(), 1);
        assert!(read[0].has_tag(&Tag::new("a")));
        assert!(states.first_token_has_tag(q, &Tag::new("b")));
    }

    #[test]
    fn register_destructive_write_nondestructive_read() {
        let (g, _, r) = graph_with_channels();
        let mut states = ChannelStates::from_graph(&g);
        states
            .push(r, Token::tagged("V1"), OverflowPolicy::Error)
            .unwrap();
        states
            .push(r, Token::tagged("V2"), OverflowPolicy::Error)
            .unwrap();
        // Destructive write: only the latest value is visible.
        assert_eq!(states.available(r), 1);
        assert!(states.first_token_has_tag(r, &Tag::new("V2")));
        // Non-destructive read: the value stays.
        let read = states.consume(r, 1).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(states.available(r), 1);
    }

    #[test]
    fn clear_discards_tokens() {
        let (g, q, _) = graph_with_channels();
        let mut states = ChannelStates::from_graph(&g);
        states.push(q, Token::new(), OverflowPolicy::Error).unwrap();
        states.push(q, Token::new(), OverflowPolicy::Error).unwrap();
        assert_eq!(states.clear(q).unwrap(), 2);
        assert_eq!(states.available(q), 0);
    }

    #[test]
    fn unknown_channel_is_reported() {
        let (g, _, _) = graph_with_channels();
        let mut states = ChannelStates::from_graph(&g);
        let missing = ChannelId::new(99);
        assert!(matches!(
            states.push(missing, Token::new(), OverflowPolicy::Error),
            Err(SimError::UnknownChannel(_))
        ));
        assert!(matches!(
            states.consume(missing, 1),
            Err(SimError::UnknownChannel(_))
        ));
        assert_eq!(ChannelView::available(&states, missing), 0);
    }

    #[test]
    fn initial_tokens_are_preloaded() {
        let mut b = GraphBuilder::new("init");
        let p = b.process("p").latency(Interval::point(1)).build().unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output(p, c, Interval::point(1)).unwrap();
        let mut g = b.finish().unwrap();
        let replaced = spi_model::Channel::new(c, "c2", ChannelKind::Queue)
            .unwrap()
            .with_initial_tokens(vec![Token::tagged("init")])
            .unwrap();
        g.replace_channel(replaced).unwrap();
        let states = ChannelStates::from_graph(&g);
        assert_eq!(states.available(c), 1);
        assert!(states.first_token_has_tag(c, &Tag::new("init")));
    }
}
