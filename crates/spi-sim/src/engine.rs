//! The discrete-event simulation engine.
//!
//! The engine gives the SPI model (and its variant extensions) an operational
//! semantics: data-driven activation, mode execution with latency, token production with
//! virtual mode tags, and — when configuration annotations are supplied — reconfiguration
//! steps whose latency is added to the execution latency of the first execution in the
//! newly selected configuration, exactly as described in Section 4 of the paper.

use std::collections::BTreeMap;

use spi_model::{ChannelId, ChannelView, ModeId, ProcessId, SpiGraph, TimeValue, Token};
use spi_variants::{ConfigurationMap, ReconfigurationTracker};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::state::ChannelStates;
use crate::trace::{SimReport, SimStats, TraceEvent};

/// An execution in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Running {
    process: ProcessId,
    mode: ModeId,
    finish: TimeValue,
}

/// A scheduled external stimulus.
#[derive(Debug, Clone, PartialEq)]
struct Injection {
    time: TimeValue,
    channel: ChannelId,
    token: Token,
}

/// Discrete-event simulator for SPI graphs with optional variant configurations.
///
/// # Example
///
/// ```rust
/// use spi_model::{ChannelKind, GraphBuilder, Interval};
/// use spi_sim::{SimConfig, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new("pipeline");
/// let src = b.process("src").latency(Interval::point(1)).build()?;
/// let dst = b.process("dst").latency(Interval::point(2)).build()?;
/// let c = b.channel("c", ChannelKind::Queue)?;
/// b.connect_output(src, c, Interval::point(1))?;
/// b.connect_input(c, dst, Interval::point(1))?;
/// let graph = b.finish()?;
///
/// let config = SimConfig::with_horizon(100).max_executions(10);
/// let report = Simulator::new(graph, config).run()?;
/// assert!(report.stats.total_executions() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    graph: SpiGraph,
    config: SimConfig,
    tracker: Option<ReconfigurationTracker>,
    injections: Vec<Injection>,
}

impl Simulator {
    /// Creates a simulator over a validated graph.
    pub fn new(graph: SpiGraph, config: SimConfig) -> Self {
        Simulator {
            graph,
            config,
            tracker: None,
            injections: Vec::new(),
        }
    }

    /// Attaches configuration annotations (from interface abstraction) so that
    /// reconfiguration steps are simulated and accounted.
    pub fn with_configurations(mut self, configurations: ConfigurationMap) -> Self {
        self.tracker = Some(ReconfigurationTracker::new(configurations));
        self
    }

    /// The simulated graph.
    pub fn graph(&self) -> &SpiGraph {
        &self.graph
    }

    /// Schedules an external token injection at `time` on `channel`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownChannel`] if the channel does not exist.
    pub fn inject(
        &mut self,
        time: TimeValue,
        channel: ChannelId,
        token: Token,
    ) -> Result<(), SimError> {
        if self.graph.channel(channel).is_none() {
            return Err(SimError::UnknownChannel(channel));
        }
        self.injections.push(Injection {
            time,
            channel,
            token,
        });
        Ok(())
    }

    /// Schedules an injection on a channel referenced by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if no channel with that name exists.
    pub fn inject_by_name(
        &mut self,
        time: TimeValue,
        channel: &str,
        token: Token,
    ) -> Result<(), SimError> {
        let id = self
            .graph
            .channel_by_name(channel)
            .ok_or_else(|| SimError::Config(format!("unknown channel name `{channel}`")))?
            .id();
        self.inject(time, id, token)
    }

    /// Runs the simulation to quiescence or the configured horizon.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered (channel overflow with the
    /// [`crate::config::OverflowPolicy::Error`] policy, inconsistent token
    /// consumption, or invalid
    /// configuration annotations).
    pub fn run(&mut self) -> Result<SimReport, SimError> {
        let mut states = ChannelStates::from_graph(&self.graph);
        let mut stats = SimStats::default();
        let mut trace = Vec::new();
        let mut running: Vec<Running> = Vec::new();
        let mut executions: BTreeMap<ProcessId, u64> = BTreeMap::new();
        let mut tracker = self.tracker.clone();

        let mut injections = self.injections.clone();
        injections.sort_by_key(|i| i.time);
        let mut next_injection = 0usize;

        let mut now: TimeValue = 0;
        let mut hit_horizon = false;

        loop {
            // 1. Deliver due injections.
            while next_injection < injections.len() && injections[next_injection].time <= now {
                let injection = &injections[next_injection];
                let stored = states.push(
                    injection.channel,
                    injection.token.clone(),
                    self.config.overflow_policy,
                )?;
                if stored {
                    if self.config.record_trace {
                        trace.push(TraceEvent::Injected {
                            time: now,
                            channel: injection.channel,
                        });
                    }
                } else {
                    return Err(SimError::ChannelOverflow {
                        channel: injection.channel,
                        producer: ProcessId::new(u32::MAX),
                        time: now,
                    });
                }
                next_injection += 1;
            }

            // 2. Apply due completions.
            let mut completed: Vec<Running> = running
                .iter()
                .copied()
                .filter(|r| r.finish <= now)
                .collect();
            completed.sort_by_key(|r| (r.finish, r.process));
            running.retain(|r| r.finish > now);
            for done in completed {
                self.apply_completion(&done, now, &mut states, &mut stats, &mut trace)?;
            }

            // 3. Start every process that can start at this instant (fixed point, since
            //    consuming tokens may disable — never enable — other activations at the
            //    same instant, but completing zero-latency work is handled next round).
            loop {
                let mut started_any = false;
                for process_id in self.graph.process_ids() {
                    if running.iter().any(|r| r.process == process_id) {
                        continue;
                    }
                    if executions.get(&process_id).copied().unwrap_or(0)
                        >= self.config.max_executions_per_process
                    {
                        continue;
                    }
                    let process = self.graph.process(process_id).expect("known process");
                    if process.mode_count() == 0 {
                        continue;
                    }
                    let Some(mode_id) = process.activation().select(&states) else {
                        continue;
                    };
                    let mode = process
                        .mode(mode_id)
                        .expect("activation references existing mode");

                    // Check and perform consumption.
                    let mut consumption: Vec<(ChannelId, u64)> = Vec::new();
                    for (channel, rate) in mode.consumptions() {
                        let amount = self.config.rate_model.pick(rate);
                        let available = states.available(channel);
                        if available < amount {
                            return Err(SimError::InsufficientTokens {
                                process: process_id,
                                channel,
                                required: amount,
                                available,
                            });
                        }
                        consumption.push((channel, amount));
                    }
                    for (channel, amount) in &consumption {
                        states.consume(*channel, *amount)?;
                        *stats.tokens_consumed.entry(*channel).or_default() += amount;
                    }

                    // Reconfiguration step, if this execution switches configurations.
                    let mut extra_latency = 0;
                    if let Some(tracker) = tracker.as_mut() {
                        if let Some(event) = tracker.observe(process_id, mode_id) {
                            extra_latency = event.latency;
                            if event.state_lost {
                                stats.reconfigurations += 1;
                            }
                            stats.reconfiguration_latency += event.latency;
                            if self.config.record_trace {
                                trace.push(TraceEvent::Reconfigured {
                                    time: now,
                                    process: process_id,
                                    from: event.from,
                                    to: event.to,
                                    latency: event.latency,
                                });
                            }
                        }
                    }

                    let latency = self.config.latency_model.pick(mode.latency()) + extra_latency;
                    let finish = now.saturating_add(latency);
                    running.push(Running {
                        process: process_id,
                        mode: mode_id,
                        finish,
                    });
                    *executions.entry(process_id).or_default() += 1;
                    *stats.executions.entry(process_id).or_default() += 1;
                    *stats
                        .mode_executions
                        .entry((process_id, mode_id))
                        .or_default() += 1;
                    if self.config.record_trace {
                        trace.push(TraceEvent::Started {
                            time: now,
                            process: process_id,
                            mode: mode_id,
                        });
                    }
                    stats.makespan = stats.makespan.max(now);
                    started_any = true;
                }
                if !started_any {
                    break;
                }
            }

            // 4. Advance time.
            if now >= self.config.horizon {
                hit_horizon = true;
                break;
            }
            let next_completion = running.iter().map(|r| r.finish).min();
            let next_stimulus = injections.get(next_injection).map(|i| i.time);
            let next = match (next_completion, next_stimulus) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break, // quiescent
            };
            if next > self.config.horizon {
                hit_horizon = true;
                now = self.config.horizon;
                break;
            }
            now = next;
        }

        // Flush completions that are due exactly at the stop time.
        let mut leftovers: Vec<Running> = running
            .iter()
            .copied()
            .filter(|r| r.finish <= now)
            .collect();
        leftovers.sort_by_key(|r| (r.finish, r.process));
        for done in leftovers {
            self.apply_completion(&done, done.finish, &mut states, &mut stats, &mut trace)?;
        }

        stats.dropped_tokens = states.dropped();
        let final_tokens = self
            .graph
            .channel_ids()
            .into_iter()
            .map(|c| (c, states.available(c)))
            .collect();
        Ok(SimReport {
            stats,
            trace,
            end_time: now,
            hit_horizon,
            final_tokens,
        })
    }

    fn apply_completion(
        &self,
        done: &Running,
        time: TimeValue,
        states: &mut ChannelStates,
        stats: &mut SimStats,
        trace: &mut Vec<TraceEvent>,
    ) -> Result<(), SimError> {
        let process = self.graph.process(done.process).expect("known process");
        let mode = process.mode(done.mode).expect("known mode");
        for (channel, spec) in mode.productions() {
            let amount = self.config.rate_model.pick(spec.amount);
            for _ in 0..amount {
                let mut token = Token::with_tags(spec.tags.clone());
                token = token.with_sequence(stats.produced_on(channel));
                let stored = states.push(channel, token, self.config.overflow_policy)?;
                if stored {
                    *stats.tokens_produced.entry(channel).or_default() += 1;
                } else {
                    return Err(SimError::ChannelOverflow {
                        channel,
                        producer: done.process,
                        time,
                    });
                }
            }
        }
        if self.config.record_trace {
            trace.push(TraceEvent::Completed {
                time,
                process: done.process,
                mode: done.mode,
            });
        }
        stats.makespan = stats.makespan.max(time);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BoundModel, OverflowPolicy};
    use spi_model::{ChannelKind, GraphBuilder, Interval, ModeSpec, TagSet};

    /// src --1--> c --1--> dst, src capped to 3 executions.
    fn pipeline(max_executions: u64) -> (SpiGraph, ChannelId) {
        let mut b = GraphBuilder::new("pipe");
        let src = b
            .process("src")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let dst = b
            .process("dst")
            .latency(Interval::point(2))
            .build()
            .unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output(src, c, Interval::point(1)).unwrap();
        b.connect_input(c, dst, Interval::point(1)).unwrap();
        let graph = b.finish().unwrap();
        let _ = max_executions;
        (graph, c)
    }

    #[test]
    fn pipeline_executes_and_consumes_everything() {
        let (graph, c) = pipeline(3);
        let config = SimConfig::with_horizon(1_000).max_executions(3);
        let report = Simulator::new(graph.clone(), config).run().unwrap();
        let src = graph.process_by_name("src").unwrap().id();
        let dst = graph.process_by_name("dst").unwrap().id();
        assert_eq!(report.stats.executions_of(src), 3);
        assert_eq!(report.stats.executions_of(dst), 3);
        assert_eq!(report.stats.produced_on(c), 3);
        // All produced tokens were consumed.
        assert_eq!(report.final_tokens[&c], 0);
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn latency_model_controls_makespan() {
        let mut b = GraphBuilder::new("latency");
        let p = b
            .process("p")
            .mode(ModeSpec::new("m", Interval::new(3, 9).unwrap()))
            .build()
            .unwrap();
        let _ = p;
        let graph = b.finish().unwrap();
        let worst = Simulator::new(
            graph.clone(),
            SimConfig::with_horizon(100).max_executions(1),
        )
        .run()
        .unwrap();
        let mut best_config = SimConfig::with_horizon(100).max_executions(1);
        best_config.latency_model = BoundModel::Lower;
        let best = Simulator::new(graph, best_config).run().unwrap();
        assert_eq!(worst.stats.makespan, 9);
        assert_eq!(best.stats.makespan, 3);
    }

    #[test]
    fn tagged_production_reaches_the_reader() {
        let mut b = GraphBuilder::new("tags");
        let src = b
            .process("src")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output_tagged(src, c, Interval::point(1), TagSet::singleton("V1"))
            .unwrap();
        let graph = b.finish().unwrap();
        let report = Simulator::new(graph, SimConfig::with_horizon(10).max_executions(1))
            .run()
            .unwrap();
        assert_eq!(report.stats.produced_on(ChannelId::new(0)), 1);
    }

    #[test]
    fn injections_drive_data_dependent_activation() {
        // A single consumer that only runs when a token arrives on its input.
        let mut b = GraphBuilder::new("inject");
        let sink = b
            .process("sink")
            .latency(Interval::point(2))
            .build()
            .unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_input(c, sink, Interval::point(1)).unwrap();
        let graph = b.finish().unwrap();
        let mut sim = Simulator::new(graph.clone(), SimConfig::with_horizon(100));
        sim.inject_by_name(5, "c", Token::tagged("go")).unwrap();
        sim.inject_by_name(20, "c", Token::tagged("go")).unwrap();
        let report = sim.run().unwrap();
        let sink = graph.process_by_name("sink").unwrap().id();
        assert_eq!(report.stats.executions_of(sink), 2);
        // Second injection at 20, execution latency 2 -> makespan 22.
        assert_eq!(report.stats.makespan, 22);
        assert!(!report.hit_horizon);
    }

    #[test]
    fn unknown_injection_channel_is_rejected() {
        let (graph, _) = pipeline(1);
        let mut sim = Simulator::new(graph, SimConfig::default());
        assert!(matches!(
            sim.inject(0, ChannelId::new(99), Token::new()),
            Err(SimError::UnknownChannel(_))
        ));
        assert!(matches!(
            sim.inject_by_name(0, "ghost", Token::new()),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn horizon_stops_unbounded_sources() {
        let (graph, _) = pipeline(u64::MAX);
        let config = SimConfig {
            horizon: 50,
            max_executions_per_process: u64::MAX,
            ..Default::default()
        };
        let report = Simulator::new(graph, config).run().unwrap();
        assert!(report.hit_horizon);
        assert!(report.stats.makespan <= 50);
    }

    #[test]
    fn mode_selection_follows_tags() {
        // A process with two modes selected by the tag of the first token.
        let mut b = GraphBuilder::new("modes");
        let cin = b.channel("cin", ChannelKind::Queue).unwrap();
        use spi_model::{ActivationFunction, ActivationRule, Predicate};
        let worker = b
            .process("worker")
            .mode(ModeSpec::new("fast", Interval::point(1)).consume(cin, Interval::point(1)))
            .mode(ModeSpec::new("slow", Interval::point(7)).consume(cin, Interval::point(1)))
            .activation(
                ActivationFunction::new()
                    .with_rule(ActivationRule::new(
                        "a_fast",
                        Predicate::min_tokens(cin, 1).and(Predicate::has_tag(cin, "fast")),
                        spi_model::ModeId::new(0),
                    ))
                    .with_rule(ActivationRule::new(
                        "a_slow",
                        Predicate::min_tokens(cin, 1).and(Predicate::has_tag(cin, "slow")),
                        spi_model::ModeId::new(1),
                    )),
            )
            .build()
            .unwrap();
        b.wire_input(cin, worker).unwrap();
        let graph = b.finish().unwrap();
        let worker_id = graph.process_by_name("worker").unwrap().id();

        let mut sim = Simulator::new(graph, SimConfig::with_horizon(100));
        sim.inject_by_name(0, "cin", Token::tagged("slow")).unwrap();
        sim.inject_by_name(10, "cin", Token::tagged("fast"))
            .unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.stats.executions_of(worker_id), 2);
        assert_eq!(
            report.stats.mode_executions[&(worker_id, spi_model::ModeId::new(0))],
            1
        );
        assert_eq!(
            report.stats.mode_executions[&(worker_id, spi_model::ModeId::new(1))],
            1
        );
    }

    #[test]
    fn untagged_token_never_activates_tag_guarded_process() {
        let mut b = GraphBuilder::new("guarded");
        let cin = b.channel("cin", ChannelKind::Queue).unwrap();
        use spi_model::{ActivationFunction, ActivationRule, Predicate};
        let worker = b
            .process("worker")
            .mode(ModeSpec::new("m", Interval::point(1)).consume(cin, Interval::point(1)))
            .activation(ActivationFunction::new().with_rule(ActivationRule::new(
                "a",
                Predicate::min_tokens(cin, 1).and(Predicate::has_tag(cin, "go")),
                spi_model::ModeId::new(0),
            )))
            .build()
            .unwrap();
        b.wire_input(cin, worker).unwrap();
        let graph = b.finish().unwrap();
        let worker_id = graph.process_by_name("worker").unwrap().id();
        let mut sim = Simulator::new(graph, SimConfig::with_horizon(50));
        sim.inject_by_name(0, "cin", Token::new()).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.stats.executions_of(worker_id), 0);
        // The token is still sitting on the channel.
        assert_eq!(report.final_tokens[&cin], 1);
    }

    #[test]
    fn register_overwrites_and_reader_sees_latest() {
        let mut b = GraphBuilder::new("register");
        let reg = b.channel("reg", ChannelKind::Register).unwrap();
        use spi_model::{ActivationFunction, ActivationRule, Predicate};
        let reader = b
            .process("reader")
            .mode(ModeSpec::new("m", Interval::point(1)))
            .activation(ActivationFunction::new().with_rule(ActivationRule::new(
                "a",
                Predicate::has_tag(reg, "latest"),
                spi_model::ModeId::new(0),
            )))
            .build()
            .unwrap();
        b.wire_input(reg, reader).unwrap();
        let graph = b.finish().unwrap();
        let reader_id = graph.process_by_name("reader").unwrap().id();
        let mut sim = Simulator::new(graph, SimConfig::with_horizon(20).max_executions(1));
        sim.inject_by_name(0, "reg", Token::tagged("stale"))
            .unwrap();
        sim.inject_by_name(1, "reg", Token::tagged("latest"))
            .unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.stats.executions_of(reader_id), 1);
        // The register still holds its value (non-destructive read).
        assert_eq!(report.final_tokens[&reg], 1);
    }

    #[test]
    fn reconfiguration_latency_is_added_to_execution() {
        use spi_variants::{Configuration, ConfigurationMap, ConfigurationSet};
        // One process with two tag-selected modes belonging to two configurations.
        let mut b = GraphBuilder::new("reconf");
        let creq = b.channel("creq", ChannelKind::Queue).unwrap();
        use spi_model::{ActivationFunction, ActivationRule, Predicate};
        let pvar = b
            .process("pvar")
            .mode(ModeSpec::new("v1", Interval::point(2)).consume(creq, Interval::point(1)))
            .mode(ModeSpec::new("v2", Interval::point(3)).consume(creq, Interval::point(1)))
            .activation(
                ActivationFunction::new()
                    .with_rule(ActivationRule::new(
                        "a1",
                        Predicate::min_tokens(creq, 1).and(Predicate::has_tag(creq, "V1")),
                        spi_model::ModeId::new(0),
                    ))
                    .with_rule(ActivationRule::new(
                        "a2",
                        Predicate::min_tokens(creq, 1).and(Predicate::has_tag(creq, "V2")),
                        spi_model::ModeId::new(1),
                    )),
            )
            .build()
            .unwrap();
        b.wire_input(creq, pvar).unwrap();
        let graph = b.finish().unwrap();
        let pvar_id = graph.process_by_name("pvar").unwrap().id();

        let set = ConfigurationSet::new()
            .with_configuration(Configuration::new("conf1", [spi_model::ModeId::new(0)], 10))
            .with_configuration(Configuration::new("conf2", [spi_model::ModeId::new(1)], 25));
        let mut map = ConfigurationMap::new();
        map.insert(pvar_id, set);

        let mut sim = Simulator::new(graph, SimConfig::with_horizon(500)).with_configurations(map);
        sim.inject_by_name(0, "creq", Token::tagged("V1")).unwrap();
        sim.inject_by_name(100, "creq", Token::tagged("V2"))
            .unwrap();
        sim.inject_by_name(200, "creq", Token::tagged("V2"))
            .unwrap();
        let report = sim.run().unwrap();

        // Initial configuration (10) + one reconfiguration (25); the third execution
        // stays in conf2 and costs nothing extra.
        assert_eq!(report.stats.reconfigurations, 1);
        assert_eq!(report.stats.reconfiguration_latency, 10 + 25);
        // Execution at t=100 runs for 3 + 25 = 28 time units.
        let completions: Vec<_> = report
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Completed { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        assert!(completions.contains(&(10 + 2)));
        assert!(completions.contains(&(100 + 25 + 3)));
        assert!(completions.contains(&(200 + 3)));
    }

    #[test]
    fn bounded_channel_overflow_policies() {
        let mut b = GraphBuilder::new("overflow");
        let src = b
            .process("src")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output(src, c, Interval::point(1)).unwrap();
        let mut graph = b.finish().unwrap();
        let bounded = spi_model::Channel::new(c, "c_bounded", ChannelKind::Queue)
            .unwrap()
            .with_capacity(2)
            .unwrap();
        graph.replace_channel(bounded).unwrap();

        // Error policy aborts once the queue is full.
        let err = Simulator::new(
            graph.clone(),
            SimConfig::with_horizon(100).max_executions(5),
        )
        .run()
        .unwrap_err();
        assert!(matches!(err, SimError::ChannelOverflow { .. }));

        // Drop policy keeps going and counts the losses.
        let mut config = SimConfig::with_horizon(100).max_executions(5);
        config.overflow_policy = OverflowPolicy::DropOldest;
        let report = Simulator::new(graph, config).run().unwrap();
        assert_eq!(report.stats.dropped_tokens, 3);
        assert_eq!(report.final_tokens[&c], 2);
    }

    #[test]
    fn quiescence_without_work_ends_immediately() {
        let mut b = GraphBuilder::new("idle");
        let cin = b.channel("cin", ChannelKind::Queue).unwrap();
        let sink = b
            .process("sink")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        b.connect_input(cin, sink, Interval::point(1)).unwrap();
        let graph = b.finish().unwrap();
        let report = Simulator::new(graph, SimConfig::with_horizon(100))
            .run()
            .unwrap();
        assert_eq!(report.stats.total_executions(), 0);
        assert_eq!(report.end_time, 0);
        assert!(!report.hit_horizon);
    }
}
