//! Acceptance tests for the chaos harness itself:
//!
//! 1. A seeded corpus passes every oracle (the count is overridable via
//!    `CHAOS_SEEDS` — CI runs 256 in release; the default keeps debug test
//!    runs snappy).
//! 2. An intentionally re-introduced commit-veto bug (`commit_veto_bug`) is
//!    caught by the oracles and the shrinker minimizes the failing plan to a
//!    tiny (≤ 5 events) reproducer whose JSON line round-trips and still
//!    fails on replay.
//! 3. Schedules genuinely exercise the fault space: across the corpus some
//!    runs kill, complete, hedge and cancel.

use spi_chaos::sim::{run_seed, SimConfig};
use spi_chaos::{FaultPlan, Reproducer};
use spi_explore::JobState;

fn corpus_size() -> u64 {
    std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(64)
}

#[test]
fn the_seed_corpus_passes_every_oracle() {
    let config = SimConfig::default();
    let oracle_best = config.serial_oracle();
    let seeds = corpus_size();
    let mut kills = 0u64;
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for seed in 0..seeds {
        let stats = run_seed(&config, seed, oracle_best)
            .unwrap_or_else(|failure| panic!("corpus must be clean, but: {failure}"));
        kills += u64::from(stats.kills);
        match stats.state {
            JobState::Completed => completed += 1,
            JobState::Cancelled => cancelled += 1,
            JobState::Running => unreachable!("runs always end terminal"),
        }
    }
    // The corpus must actually explore the space, not trivially no-op.
    assert!(kills >= seeds / 2, "only {kills} kills over {seeds} seeds");
    assert!(completed > 0, "no schedule completed its job");
    assert!(cancelled > 0, "no schedule exercised cancellation");
}

#[test]
fn the_commit_veto_bug_is_caught_and_minimized_to_a_tiny_reproducer() {
    let config = SimConfig {
        commit_veto_bug: true,
        ..SimConfig::default()
    };
    let oracle_best = config.serial_oracle();
    let failing_seed = (0..256)
        .find(|&seed| run_seed(&config, seed, oracle_best).is_err())
        .expect("256 seeds must surface the re-introduced commit-veto bug");
    let failure = run_seed(&config, failing_seed, oracle_best).unwrap_err();
    assert!(
        failure.violations.iter().any(|v| v.starts_with("census:")),
        "the bug must be caught by the census oracle, got: {failure}"
    );

    let plan = FaultPlan::for_seed(failing_seed);
    let reproducer = Reproducer::minimize(&config, &plan, oracle_best);
    assert!(
        reproducer.events.len() <= 5,
        "shrinker left {} events (plan had {}): {:?}",
        reproducer.events.len(),
        plan.events.len(),
        reproducer.events
    );

    // The printed line is self-contained: parse it back and the failure
    // still reproduces.
    let line = reproducer.to_line();
    let parsed = Reproducer::parse(&line).expect("reproducer line parses");
    assert_eq!(parsed, reproducer);
    let replayed = parsed.replay().expect_err("minimized plan must still fail");
    assert!(
        replayed.violations.iter().any(|v| v.starts_with("census:")),
        "replay must fail the same oracle, got: {replayed}"
    );
}

#[test]
fn the_same_seed_yields_the_same_verdict_and_plan() {
    let config = SimConfig::default();
    let oracle_best = config.serial_oracle();
    assert_eq!(FaultPlan::for_seed(17), FaultPlan::for_seed(17));
    let first = run_seed(&config, 17, oracle_best);
    let second = run_seed(&config, 17, oracle_best);
    match (&first, &second) {
        (Ok(a), Ok(b)) => assert_eq!(a, b),
        (Err(a), Err(b)) => assert_eq!(a, b),
        _ => panic!("same seed diverged: {first:?} vs {second:?}"),
    }
}
