//! The chaos harness CLI.
//!
//! ```text
//! spi-chaos corpus [--seeds N] [--start S] [--bug]
//!     Run the seeded corpus. On the first failing seed, shrink it to a
//!     minimal reproducer, print the replayable JSON line to stdout and
//!     exit 1.
//!
//! spi-chaos replay [LINE]
//!     Replay a reproducer line (argument, or first line of stdin). Exits 1
//!     when the failure still reproduces — replaying a reproducer is
//!     *supposed* to fail; exit 0 means it no longer does.
//!
//! spi-chaos check-census [--combinations N]
//!     Read ndjson status lines from stdin (as printed by the wire `poll` /
//!     `wait` ops) and apply the exactly-once census oracle to each line
//!     that carries a census. Exit 1 on any violation. CI pipes the kill -9
//!     smoke test's output through this.
//! ```

use std::io::{BufRead, Read};
use std::process::ExitCode;

use spi_chaos::sim::{run_seed, SimConfig};
use spi_chaos::{oracle, FaultPlan, Reproducer};
use spi_model::json::JsonValue;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("corpus") => corpus(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("check-census") => check_census(&args[1..]),
        _ => {
            eprintln!("usage: spi-chaos <corpus|replay|check-census> [options]");
            eprintln!("  corpus [--seeds N] [--start S] [--bug]");
            eprintln!("  replay [LINE]            (or the first line of stdin)");
            eprintln!("  check-census [--combinations N]   (ndjson on stdin)");
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|arg| arg == flag)
        .and_then(|at| args.get(at + 1))
        .and_then(|value| value.parse().ok())
}

fn corpus(args: &[String]) -> ExitCode {
    let seeds = flag_value(args, "--seeds").unwrap_or(256);
    let start = flag_value(args, "--start").unwrap_or(0);
    let config = SimConfig {
        commit_veto_bug: args.iter().any(|arg| arg == "--bug"),
        ..SimConfig::default()
    };
    let oracle_best = config.serial_oracle();
    let mut kills = 0u64;
    let mut completed = 0u64;
    for seed in start..start + seeds {
        match run_seed(&config, seed, oracle_best) {
            Ok(stats) => {
                kills += u64::from(stats.kills);
                completed += u64::from(stats.state == spi_explore::JobState::Completed);
            }
            Err(failure) => {
                eprintln!("chaos: {failure}");
                eprintln!("chaos: shrinking seed {seed}…");
                let plan = FaultPlan::for_seed(seed);
                let reproducer = Reproducer::minimize(&config, &plan, oracle_best);
                eprintln!(
                    "chaos: minimized {} events -> {}; reproducer line follows",
                    plan.events.len(),
                    reproducer.events.len()
                );
                println!("{}", reproducer.to_line());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "chaos: {seeds} seeds passed every oracle ({completed} completed jobs, {kills} kills survived)"
    );
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let line = match args.first() {
        Some(line) => line.clone(),
        None => {
            let mut input = String::new();
            if std::io::stdin().read_to_string(&mut input).is_err() || input.trim().is_empty() {
                eprintln!("replay: no reproducer line on argv or stdin");
                return ExitCode::from(2);
            }
            input.lines().next().unwrap_or_default().to_string()
        }
    };
    let reproducer = match Reproducer::parse(&line) {
        Ok(reproducer) => reproducer,
        Err(error) => {
            eprintln!("replay: unparsable reproducer: {error}");
            return ExitCode::from(2);
        }
    };
    match reproducer.replay() {
        Err(failure) => {
            eprintln!("replay: failure reproduces: {failure}");
            ExitCode::FAILURE
        }
        Ok(stats) => {
            eprintln!(
                "replay: plan no longer fails (state {:?}, {} accounted, {} kills)",
                stats.state, stats.accounted, stats.kills
            );
            ExitCode::SUCCESS
        }
    }
}

fn check_census(args: &[String]) -> ExitCode {
    let combinations = flag_value(args, "--combinations");
    let stdin = std::io::stdin();
    let mut checked = 0u64;
    let mut violations = 0u64;
    for (number, line) in stdin.lock().lines().enumerate() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = JsonValue::parse(&line) else {
            eprintln!("check-census: line {}: not JSON", number + 1);
            violations += 1;
            continue;
        };
        // Only status-shaped lines carry a census; skip acks and errors.
        if value.get("state").is_none() || value.get("combinations").is_none() {
            continue;
        }
        checked += 1;
        for violation in oracle::check_wire_census(&value, combinations) {
            eprintln!("check-census: line {}: {violation}", number + 1);
            violations += 1;
        }
    }
    if violations > 0 {
        ExitCode::FAILURE
    } else {
        eprintln!("check-census: {checked} status lines clean");
        ExitCode::SUCCESS
    }
}
