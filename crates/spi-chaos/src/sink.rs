//! The fault-wrapping [`DurabilitySink`] decorator.
//!
//! [`FaultSink`] wraps the in-memory [`MemorySink`] from
//! `spi_explore::durability` and consumes scripted faults armed by the fault
//! plan: append failures (record lost), **torn appends** (record lands but
//! the ack is lost — the registry retries and recovery must deduplicate),
//! and compaction failures. The wrapped [`MemoryStore`] plays the role of
//! the disk: it survives a simulated `kill -9` (the registry is dropped, the
//! store is not) and can have its record tail chopped to model writes that
//! never hit the platter.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use spi_explore::{DurabilitySink, MemorySink, MemoryStore};
use spi_model::json::JsonValue;

/// What happens to the next sink append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// Return an error; the record is lost (a clean write failure).
    Fail,
    /// Return an error but persist the record anyway (ack lost, write
    /// landed). The registry's retry then persists a duplicate the
    /// recovery path must deduplicate.
    Torn,
}

/// The armed-but-not-yet-consumed sink faults, shared between the plan
/// executor (which arms) and the [`FaultSink`] (which consumes). Faults are
/// consumed in FIFO order, one per matching operation.
#[derive(Debug, Default)]
pub struct FaultScript {
    /// Pending append faults.
    pub appends: VecDeque<AppendFault>,
    /// Pending compaction failures.
    pub compacts: u32,
}

/// [`DurabilitySink`] decorator injecting scripted faults over a
/// [`MemorySink`].
pub struct FaultSink {
    inner: MemorySink,
    script: Arc<Mutex<FaultScript>>,
}

impl FaultSink {
    /// A fault-injecting sink persisting into `store` and consuming faults
    /// from `script`.
    pub fn new(store: Arc<Mutex<MemoryStore>>, script: Arc<Mutex<FaultScript>>) -> Self {
        FaultSink {
            inner: MemorySink::new(store),
            script,
        }
    }
}

impl DurabilitySink for FaultSink {
    fn append(&mut self, record: &JsonValue) -> Result<(), String> {
        let fault = self
            .script
            .lock()
            .expect("fault script lock")
            .appends
            .pop_front();
        match fault {
            None => self.inner.append(record),
            Some(AppendFault::Fail) => Err("injected: append failed, record lost".to_string()),
            Some(AppendFault::Torn) => {
                self.inner
                    .append(record)
                    .expect("memory sink append cannot fail");
                Err("injected: append torn — record persisted, ack lost".to_string())
            }
        }
    }

    fn compact(&mut self, snapshot: &JsonValue) -> Result<u64, String> {
        {
            let mut script = self.script.lock().expect("fault script lock");
            if script.compacts > 0 {
                script.compacts -= 1;
                return Err("injected: compaction failed".to_string());
            }
        }
        self.inner.compact(snapshot)
    }

    fn log_bytes(&self) -> u64 {
        self.inner.log_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_appends_persist_despite_the_error() {
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let script = Arc::new(Mutex::new(FaultScript::default()));
        let mut sink = FaultSink::new(Arc::clone(&store), Arc::clone(&script));
        let record = JsonValue::Str("r".to_string());

        script.lock().unwrap().appends.push_back(AppendFault::Fail);
        script.lock().unwrap().appends.push_back(AppendFault::Torn);

        assert!(sink.append(&record).is_err());
        assert_eq!(
            store.lock().unwrap().records.len(),
            0,
            "failed append is lost"
        );
        assert!(sink.append(&record).is_err());
        assert_eq!(store.lock().unwrap().records.len(), 1, "torn append lands");
        assert!(sink.append(&record).is_ok());
        assert_eq!(store.lock().unwrap().records.len(), 2, "script exhausted");
    }

    #[test]
    fn compact_faults_consume_once() {
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let script = Arc::new(Mutex::new(FaultScript::default()));
        let mut sink = FaultSink::new(Arc::clone(&store), Arc::clone(&script));
        script.lock().unwrap().compacts = 1;
        let snapshot = JsonValue::Str("s".to_string());
        assert!(sink.compact(&snapshot).is_err());
        assert!(sink.compact(&snapshot).is_ok());
        assert!(store.lock().unwrap().snapshot.is_some());
    }
}
