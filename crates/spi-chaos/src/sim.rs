//! The deterministic single-process simulation driver.
//!
//! One run builds a [`JobRegistry`] over an in-memory durable store behind a
//! fault-injecting sink, submits one exploration job, executes a
//! [`FaultPlan`] against it — simulated workers crash before and after
//! staging, simulated time jumps past lease deadlines, the sink fails and
//! tears appends, `kill -9` drops the whole registry and recovers it from
//! the (possibly tail-chopped) store — and then drives whatever is left to a
//! terminal state. The five [`oracle`] properties are checked
//! at every kill point and at the end; any violation aborts the run into a
//! [`SimFailure`] that [`shrink`](crate::shrink::shrink) can minimize.
//!
//! Everything is driven from one thread and one logical clock (a base
//! [`Instant`] plus the plan's `Advance` skews), so a `(config, events)`
//! pair replays the same schedule every time.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spi_explore::{
    drain_lease, rebuild_from_recipe, DrainOutcome, ExploreError, FlushResponse, HedgeConfig,
    JobId, JobRegistry, JobSpec, JobState, Lease, MemoryStore, MetricsRegistry, RegistryConfig,
    ShardReport, TaskParamsSpec,
};
use spi_model::json::{JsonError, JsonValue};
use spi_synth::from_flat_graph;
use spi_synth::partition::{optimize_serial_reference, FeasibilityMode};
use spi_workloads::scaling_system;

use crate::fault::{FaultEvent, FaultPlan};
use crate::oracle;
use crate::sink::{AppendFault, FaultScript, FaultSink};

/// Fixed evaluator parameters of the simulated workload (the values the
/// repo's recovery suite uses, so cross-suite results are comparable).
const PROCESSOR_COST: u64 = 15;
/// Seed of the hashed task parameters inside the evaluator (not the fault
/// plan seed).
const PARAMS_SEED: u64 = 42;
/// Step bound on the drive-to-completion loop; exceeding it is itself a
/// reported violation (livelock).
const MAX_DRIVE_STEPS: usize = 10_000;

/// Shape of the simulated world: the workload and the registry tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Interfaces of the scaling workload (`clusters^interfaces` variants).
    pub interfaces: usize,
    /// Cluster choices per interface.
    pub clusters: usize,
    /// Strided shards the job is split into.
    pub shard_count: usize,
    /// Lease timeout of the simulated registry.
    pub lease_timeout: Duration,
    /// Re-introduces the commit-veto bug the harness exists to catch: the
    /// final flush stages its delta with `report_batch` *before* the
    /// write-ahead `complete_shard`, so a vetoed commit leaves the stage
    /// applied and the production retry double-counts it. The acceptance
    /// test flips this on and asserts the oracles catch and the shrinker
    /// minimizes it.
    pub commit_veto_bug: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            interfaces: 4,
            clusters: 2, // 2^4 = 16 variants, 4 per shard
            shard_count: 4,
            lease_timeout: Duration::from_secs(10),
            commit_veto_bug: false,
        }
    }
}

impl SimConfig {
    /// The wire-style recipe the job is submitted with and recovery rebuilds
    /// from after a simulated kill.
    pub fn recipe(&self) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"system":{{"scaling":{{"interfaces":{},"clusters":{}}}}},"evaluator":{{"kind":"partition","processor_cost":{PROCESSOR_COST},"strategy":"exhaustive","mode":"per_application","params":{{"kind":"hashed","seed":{PARAMS_SEED}}}}}}}"#,
            self.interfaces, self.clusters
        ))
        .expect("recipe literal parses")
    }

    /// The serial reference optimum `(index, cost)` for this workload:
    /// flatten every combination in index order, keep the first strict
    /// `(cost, index)` minimum of `optimize_serial_reference`. Every
    /// completed simulated run must reproduce it bit-identically.
    pub fn serial_oracle(&self) -> (usize, u64) {
        let system =
            scaling_system(self.interfaces, self.clusters).expect("simulated workload builds");
        let params = TaskParamsSpec::Hashed { seed: PARAMS_SEED };
        let mut best: Option<(u64, usize)> = None;
        for (index, (_choice, graph)) in system
            .flatten_all()
            .expect("simulated workload flattens")
            .into_iter()
            .enumerate()
        {
            let problem =
                from_flat_graph(&graph, PROCESSOR_COST, |name| Some(params.params_for(name)))
                    .expect("simulated workload derives a problem");
            let result = optimize_serial_reference(&problem, FeasibilityMode::PerApplication)
                .expect("serial reference optimizes");
            let total = result.cost.total();
            if best.is_none_or(|(cost, _)| total < cost) {
                best = Some((total, index));
            }
        }
        let (cost, index) = best.expect("workload has at least one variant");
        (index, cost)
    }

    /// Canonical JSON encoding, for the one-line reproducer.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("interfaces", JsonValue::Int(self.interfaces as i128)),
            ("clusters", JsonValue::Int(self.clusters as i128)),
            ("shards", JsonValue::Int(self.shard_count as i128)),
            (
                "lease_timeout_ms",
                JsonValue::Int(self.lease_timeout.as_millis() as i128),
            ),
            ("bug", JsonValue::Bool(self.commit_veto_bug)),
        ])
    }

    /// Decodes a config from its canonical JSON encoding.
    ///
    /// # Errors
    ///
    /// When any field is missing or mistyped.
    pub fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let field = |key: &str| -> Result<usize, JsonError> {
            value
                .get(key)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| JsonError::new(format!("sim config missing `{key}`")))
        };
        Ok(SimConfig {
            interfaces: field("interfaces")?,
            clusters: field("clusters")?,
            shard_count: field("shards")?,
            lease_timeout: Duration::from_millis(field("lease_timeout_ms")? as u64),
            commit_veto_bug: value
                .get("bug")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
        })
    }
}

/// What a passing run did, for corpus summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Terminal state the job reached.
    pub state: JobState,
    /// Variants accounted (evaluated + pruned + errored) by the terminal
    /// census.
    pub accounted: u64,
    /// Shards committed.
    pub shards_done: usize,
    /// Simulated `kill -9`s survived.
    pub kills: u32,
    /// Registry incarnations (kills + 1).
    pub segments: u32,
}

/// A failing run: which seed and plan step it died at, and every oracle
/// violation found there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimFailure {
    /// The seed the plan came from, when it came from one.
    pub seed: Option<u64>,
    /// Index of the plan event whose checkpoint caught the violation
    /// (`None`: caught at the terminal checkpoint).
    pub step: Option<usize>,
    /// Every violation, in detection order.
    pub violations: Vec<String>,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seed {
            Some(seed) => write!(f, "seed {seed}")?,
            None => write!(f, "hand-built plan")?,
        }
        match self.step {
            Some(step) => write!(f, ", step {step}: ")?,
            None => write!(f, ", terminal checkpoint: ")?,
        }
        write!(f, "{}", self.violations.join("; "))
    }
}

struct Sim {
    config: SimConfig,
    oracle_best: (usize, u64),
    store: Arc<Mutex<MemoryStore>>,
    script: Arc<Mutex<FaultScript>>,
    registry: JobRegistry,
    metrics: Arc<MetricsRegistry>,
    job: JobId,
    now: Instant,
    held: Vec<Lease>,
    violations: Vec<String>,
    kills: u32,
    segments: u32,
}

impl Sim {
    fn new(config: SimConfig, oracle_best: (usize, u64)) -> Result<Sim, SimFailure> {
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let script = Arc::new(Mutex::new(FaultScript::default()));
        let metrics = Arc::new(MetricsRegistry::new());
        let mut registry = JobRegistry::with_config(registry_config(&config));
        registry.set_metrics(Arc::clone(&metrics));
        registry.set_sink(Box::new(FaultSink::new(
            Arc::clone(&store),
            Arc::clone(&script),
        )));
        let recipe = config.recipe();
        let (system, evaluator) = rebuild_from_recipe(&recipe).map_err(|error| SimFailure {
            seed: None,
            step: None,
            violations: vec![format!("setup: recipe rebuild failed: {error}")],
        })?;
        let job = registry
            .submit_with_recipe(
                &system,
                JobSpec {
                    name: "chaos".to_string(),
                    shard_count: config.shard_count,
                    top_k: 1 << 16, // far above any sim space: keep everything
                    tenant: "chaos".to_string(),
                    ..JobSpec::default()
                },
                evaluator,
                Some(recipe),
            )
            .map_err(|error| SimFailure {
                seed: None,
                step: None,
                violations: vec![format!("setup: submit failed: {error}")],
            })?;
        // Compact once at birth so the snapshot always carries the job: a
        // torn tail can then lose shard commits (which recovery re-runs) but
        // never the submission itself.
        registry.compact_store().map_err(|error| SimFailure {
            seed: None,
            step: None,
            violations: vec![format!("setup: initial compaction failed: {error}")],
        })?;
        Ok(Sim {
            config,
            oracle_best,
            store,
            script,
            registry,
            metrics,
            job,
            now: Instant::now(),
            held: Vec::new(),
            violations: Vec::new(),
            kills: 0,
            segments: 1,
        })
    }

    /// Removes and returns the `pick % len`-th held lease.
    fn pick_held(&mut self, pick: u8) -> Option<Lease> {
        if self.held.is_empty() {
            return None;
        }
        let index = usize::from(pick) % self.held.len();
        Some(self.held.remove(index))
    }

    /// A held lease by pick, or a freshly granted one.
    fn pick_or_lease(&mut self, pick: u8) -> Option<Lease> {
        self.pick_held(pick)
            .or_else(|| self.registry.lease_as("sim", self.now))
    }

    /// One flush of a drain, honoring the `commit_veto_bug` knob on the
    /// final (committing) flush.
    fn flush(
        &mut self,
        lease: &Lease,
        delta: ShardReport,
        is_final: bool,
    ) -> spi_explore::Result<()> {
        if !is_final {
            return self.registry.report_batch(lease.lease, delta, self.now);
        }
        if self.config.commit_veto_bug {
            // BUG EMULATION: stage the final delta first, then commit the
            // staged state with an empty delta. A sink veto between the two
            // leaves the stage applied — and the retry re-stages it.
            self.registry.report_batch(lease.lease, delta, self.now)?;
            self.registry
                .complete_shard(lease.lease, ShardReport::default(), self.now)
                .map(|_| ())
        } else {
            self.registry
                .complete_shard(lease.lease, delta, self.now)
                .map(|_| ())
        }
    }

    /// Drains `lease` to completion with the production discipline: a store
    /// error on a flush is retried once with the same delta; a second
    /// failure abandons the lease; a stale lease stops silently (the shard
    /// belongs to someone else now).
    fn drain_commit(&mut self, lease: &Lease, batch: usize) {
        let mut flushes: Vec<(ShardReport, bool)> = Vec::new();
        let outcome = drain_lease(
            lease,
            batch.max(1),
            || false,
            |delta, is_final| {
                flushes.push((delta, is_final));
                FlushResponse::Continue
            },
        );
        if outcome != DrainOutcome::Completed {
            return; // cancelled mid-drain; nothing coherent to flush
        }
        for (delta, is_final) in flushes {
            match self.flush(lease, delta.clone(), is_final) {
                Ok(()) => {}
                Err(ExploreError::StaleLease(_)) => return,
                Err(ExploreError::Store(_)) => match self.flush(lease, delta, is_final) {
                    Ok(()) => {}
                    Err(_) => {
                        self.registry.abandon(lease.lease);
                        return;
                    }
                },
                Err(_) => {
                    self.registry.abandon(lease.lease);
                    return;
                }
            }
        }
    }

    /// Crash-after-stage: reports up to `batches` single-variant batches,
    /// then the worker goes silent forever — the lease is neither committed
    /// nor abandoned and must be reclaimed by expiry.
    fn drain_crash(&mut self, lease: &Lease, batches: u8) {
        let mut partials: Vec<ShardReport> = Vec::new();
        let _ = drain_lease(
            lease,
            1,
            || false,
            |delta, is_final| {
                if !is_final && partials.len() < usize::from(batches) {
                    partials.push(delta);
                    FlushResponse::Continue
                } else {
                    FlushResponse::Stop
                }
            },
        );
        for delta in partials {
            if self
                .registry
                .report_batch(lease.lease, delta, self.now)
                .is_err()
            {
                return; // stale: the silent worker's reports bounce
            }
        }
    }

    /// `kill -9`: oracle-check and drop the current registry, chop the
    /// durable tail, recover a fresh registry from what remains.
    fn kill(&mut self, lose_tail: u8) {
        self.kills += 1;
        self.end_segment(false);
        self.held.clear();
        // Armed-but-unconsumed sink faults die with the process.
        *self.script.lock().expect("fault script lock") = FaultScript::default();
        {
            // The torn tail: the last `lose_tail` records never reached the
            // platter. Any prefix of the record stream is a valid earlier
            // durable state, and the setup compaction keeps the submission
            // itself in the snapshot, out of reach.
            let mut store = self.store.lock().expect("store lock");
            let keep = store.records.len().saturating_sub(usize::from(lose_tail));
            store.records.truncate(keep);
            store.log_bytes = store
                .records
                .iter()
                .map(|record| record.to_line().len() as u64 + 1)
                .sum();
        }
        let mut registry = JobRegistry::with_config(registry_config(&self.config));
        self.metrics = Arc::new(MetricsRegistry::new());
        registry.set_metrics(Arc::clone(&self.metrics));
        let (snapshot, records) = {
            let store = self.store.lock().expect("store lock");
            (store.snapshot.clone(), store.records.clone())
        };
        if let Err(error) = registry.restore(snapshot.as_ref(), &records, &rebuild_from_recipe) {
            self.violations
                .push(format!("recovery: restore failed: {error}"));
        }
        registry.set_sink(Box::new(FaultSink::new(
            Arc::clone(&self.store),
            Arc::clone(&self.script),
        )));
        self.registry = registry;
        self.segments += 1;
    }

    /// Closes one registry incarnation: drains its decision trace and runs
    /// the replay, conservation and waitgraph oracles over it. `drained`
    /// asserts the stronger terminal laws (empty queue, no live leases).
    fn end_segment(&mut self, drained: bool) {
        let drain = self.registry.drain_trace();
        if drain.dropped > 0 {
            self.violations.push(format!(
                "replay: trace ring dropped {} events (raise trace_capacity)",
                drain.dropped
            ));
            return;
        }
        let (report, replay_violations) = oracle::check_replay(&drain.events);
        self.violations.extend(replay_violations);
        self.violations.extend(oracle::check_conservation(
            &drain.events,
            &report,
            &self.metrics,
            drained,
        ));
        self.violations
            .extend(oracle::check_waitgraph(&self.registry.waitgraph()));
    }

    /// Executes one plan event.
    fn apply(&mut self, event: FaultEvent) {
        match event {
            FaultEvent::Lease => {
                if let Some(lease) = self.registry.lease_as("sim", self.now) {
                    self.held.push(lease);
                }
            }
            FaultEvent::DrainCommit { pick, batch } => {
                if let Some(lease) = self.pick_or_lease(pick) {
                    self.drain_commit(&lease, usize::from(batch));
                }
            }
            FaultEvent::DrainCrash { pick, batches } => {
                if let Some(lease) = self.pick_or_lease(pick) {
                    self.drain_crash(&lease, batches);
                }
            }
            FaultEvent::CrashBeforeCommit { pick } => {
                // The worker evaluates and dies before any flush: from the
                // registry's perspective the lease simply goes silent.
                let _ = self.pick_or_lease(pick);
            }
            FaultEvent::Advance { ms } => {
                self.now += Duration::from_millis(u64::from(ms));
            }
            FaultEvent::Expire => {
                self.registry.expire(self.now);
            }
            FaultEvent::Abandon { pick } => {
                if let Some(lease) = self.pick_held(pick) {
                    self.registry.abandon(lease.lease);
                }
            }
            FaultEvent::Cancel => {
                // May be vetoed by an armed sink fault — then the job stays
                // running, which the oracles must tolerate.
                let _ = self.registry.cancel(self.job);
            }
            FaultEvent::FailNextAppend => {
                self.script
                    .lock()
                    .expect("fault script lock")
                    .appends
                    .push_back(AppendFault::Fail);
            }
            FaultEvent::TornNextAppend => {
                self.script
                    .lock()
                    .expect("fault script lock")
                    .appends
                    .push_back(AppendFault::Torn);
            }
            FaultEvent::FailNextCompact => {
                self.script.lock().expect("fault script lock").compacts += 1;
            }
            FaultEvent::Compact => {
                let _ = self.registry.compact_store();
            }
            FaultEvent::Kill { lose_tail } => self.kill(lose_tail),
        }
    }

    /// Drives the survivors to a terminal state: expire, lease, drain,
    /// commit — advancing simulated time whenever no work is grantable.
    fn drive(&mut self) {
        for _ in 0..MAX_DRIVE_STEPS {
            let status = match self.registry.poll(self.job) {
                Ok(status) => status,
                Err(error) => {
                    self.violations.push(format!("drive: poll failed: {error}"));
                    return;
                }
            };
            if status.state.is_terminal() {
                return;
            }
            self.registry.expire(self.now);
            match self
                .held
                .pop()
                .or_else(|| self.registry.lease_as("sim", self.now))
            {
                Some(lease) => self.drain_commit(&lease, 3),
                None => {
                    // Nothing grantable: every remaining shard is under a
                    // lost lease. Jump past the deadline so expiry requeues.
                    self.now += self.config.lease_timeout + Duration::from_millis(1);
                }
            }
        }
        self.violations.push(format!(
            "drive: schedule failed to converge within {MAX_DRIVE_STEPS} steps (livelock)"
        ));
    }

    /// Terminal checkpoint: flush the stale queue, then run every oracle.
    fn finish(mut self) -> Result<SimStats, SimFailure> {
        // One final grant attempt drains stale queue entries (recording
        // their dequeues), so the terminal conservation laws are assertable.
        let _ = self.registry.lease_as("sim", self.now);
        let status = match self.registry.poll(self.job) {
            Ok(status) => status,
            Err(error) => {
                self.violations
                    .push(format!("finish: poll failed: {error}"));
                return Err(self.into_failure(None));
            }
        };
        let census = oracle::check_census(&status, status.combinations);
        self.violations.extend(census);
        self.violations.extend(oracle::check_optimum(
            &status,
            self.oracle_best.0,
            self.oracle_best.1,
        ));
        self.end_segment(true);
        if self.violations.is_empty() {
            Ok(SimStats {
                state: status.state,
                accounted: status.report.accounted(),
                shards_done: status.shards_done,
                kills: self.kills,
                segments: self.segments,
            })
        } else {
            Err(self.into_failure(None))
        }
    }

    fn into_failure(self, step: Option<usize>) -> SimFailure {
        SimFailure {
            seed: None,
            step,
            violations: self.violations,
        }
    }
}

fn registry_config(config: &SimConfig) -> RegistryConfig {
    RegistryConfig {
        lease_timeout: config.lease_timeout,
        // Aggressive speculation: one completed sample is enough and a
        // straggler only has to exceed the median, so schedules routinely
        // carry duplicate hedged leases for the oracles to audit.
        hedge: HedgeConfig {
            enabled: true,
            quantile_pct: 50,
            multiplier_pct: 100,
            min_samples: 1,
            max_hedges: 1,
        },
        // Roomy ring: a dropped event would void the replay oracle.
        trace_capacity: 1 << 16,
        ..RegistryConfig::default()
    }
}

/// Runs one explicit plan. `oracle_best` is the workload's serial optimum
/// (from [`SimConfig::serial_oracle`], computed once per config so corpus
/// runs don't re-derive it per seed).
///
/// # Errors
///
/// A [`SimFailure`] carrying every oracle violation, with the plan step
/// whose checkpoint caught it.
pub fn run_plan(
    config: &SimConfig,
    events: &[FaultEvent],
    oracle_best: (usize, u64),
) -> Result<SimStats, SimFailure> {
    let mut sim = Sim::new(config.clone(), oracle_best)?;
    for (step, &event) in events.iter().enumerate() {
        sim.apply(event);
        if !sim.violations.is_empty() {
            return Err(sim.into_failure(Some(step)));
        }
    }
    sim.drive();
    if !sim.violations.is_empty() {
        return Err(sim.into_failure(None));
    }
    sim.finish()
}

/// Runs the seeded plan for `seed` (see [`FaultPlan::for_seed`]).
///
/// # Errors
///
/// As [`run_plan`], with the failure's `seed` filled in.
pub fn run_seed(
    config: &SimConfig,
    seed: u64,
    oracle_best: (usize, u64),
) -> Result<SimStats, SimFailure> {
    let plan = FaultPlan::for_seed(seed);
    run_plan(config, &plan.events, oracle_best).map_err(|mut failure| {
        failure.seed = Some(seed);
        failure
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_faultless_plan_completes_and_matches_the_serial_oracle() {
        let config = SimConfig::default();
        let oracle_best = config.serial_oracle();
        let stats = run_plan(&config, &[], oracle_best).expect("clean run passes every oracle");
        assert_eq!(stats.state, JobState::Completed);
        assert_eq!(stats.accounted, 16);
        assert_eq!(stats.shards_done, 4);
        assert_eq!(stats.kills, 0);
    }

    #[test]
    fn config_round_trips_through_json() {
        let config = SimConfig {
            commit_veto_bug: true,
            ..SimConfig::default()
        };
        let parsed =
            SimConfig::from_json(&JsonValue::parse(&config.to_json().to_line()).unwrap()).unwrap();
        assert_eq!(parsed, config);
    }
}
