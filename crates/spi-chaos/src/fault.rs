//! Fault plans: the seeded schedule of worker and storage faults one
//! simulation run executes.
//!
//! A [`FaultPlan`] is derived deterministically from a seed through the
//! workspace LCG ([`spi_testutil::Lcg`]), executed by
//! [`run_plan`](crate::sim::run_plan), and — on failure — shrunk by
//! [`shrink`](crate::shrink::shrink) to a minimal reproducer. Every event is
//! JSON round-trippable so a failing plan prints as one replayable line.

use spi_model::json::{JsonError, JsonValue};
use spi_testutil::Lcg;

/// One step of a simulated fault schedule.
///
/// `pick` fields select among the leases currently held by simulated
/// workers (reduced modulo the holder count at execution time, so shrinking
/// a plan never invalidates a pick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// A simulated worker takes one lease and holds it.
    Lease,
    /// A held (or fresh) lease is drained to completion and committed in
    /// `batch`-variant flushes, with the production retry discipline: a
    /// store error on a flush is retried once with the same delta, then the
    /// lease is abandoned.
    DrainCommit {
        /// Which held lease drains (modulo the holder count).
        pick: u8,
        /// Variants per flush.
        batch: u8,
    },
    /// Crash **after stage**: the worker reports up to `batches` partial
    /// batches, then goes silent forever — its staged state is
    /// observational until the lease expires.
    DrainCrash {
        /// Which held lease crashes (modulo the holder count).
        pick: u8,
        /// Partial batches staged before the silence.
        batches: u8,
    },
    /// Crash **before commit**: the worker evaluates its whole shard but
    /// dies before any flush reaches the registry.
    CrashBeforeCommit {
        /// Which held lease crashes (modulo the holder count).
        pick: u8,
    },
    /// Simulated time jumps forward by `ms` milliseconds (this is how lease
    /// expiry and hedge deadlines are reached — the simulation never
    /// sleeps).
    Advance {
        /// Milliseconds of skew.
        ms: u32,
    },
    /// An expiry sweep at the current simulated time.
    Expire,
    /// A held lease is abandoned explicitly (worker-side give-up).
    Abandon {
        /// Which held lease is abandoned (modulo the holder count).
        pick: u8,
    },
    /// The job is cancelled (through the sink — a scripted sink fault can
    /// veto it, which the oracles must tolerate).
    Cancel,
    /// Arms the sink: the next append returns an error and the record is
    /// lost.
    FailNextAppend,
    /// Arms the sink: the next append returns an error but the record
    /// **lands anyway** — the ack was lost, not the write. Recovery must
    /// deduplicate the retried record.
    TornNextAppend,
    /// Arms the sink: the next compaction fails.
    FailNextCompact,
    /// A compaction attempt at the current state.
    Compact,
    /// `kill -9`: the registry (with all held leases and staged state) is
    /// dropped and a fresh one restores from the durable store, minus up to
    /// `lose_tail` record-tail entries (a torn tail — writes that never
    /// reached the platter).
    Kill {
        /// Records chopped off the durable tail before recovery.
        lose_tail: u8,
    },
}

impl FaultEvent {
    /// Canonical JSON encoding (one compact object per event).
    pub fn to_json(&self) -> JsonValue {
        let obj = |fields: Vec<(&str, JsonValue)>| {
            JsonValue::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let num = |n: u64| JsonValue::Int(i128::from(n));
        let tag = |t: &str| ("e", JsonValue::Str(t.to_string()));
        match self {
            FaultEvent::Lease => obj(vec![tag("lease")]),
            FaultEvent::DrainCommit { pick, batch } => obj(vec![
                tag("drain_commit"),
                ("pick", num(u64::from(*pick))),
                ("batch", num(u64::from(*batch))),
            ]),
            FaultEvent::DrainCrash { pick, batches } => obj(vec![
                tag("drain_crash"),
                ("pick", num(u64::from(*pick))),
                ("batches", num(u64::from(*batches))),
            ]),
            FaultEvent::CrashBeforeCommit { pick } => obj(vec![
                tag("crash_before_commit"),
                ("pick", num(u64::from(*pick))),
            ]),
            FaultEvent::Advance { ms } => obj(vec![tag("advance"), ("ms", num(u64::from(*ms)))]),
            FaultEvent::Expire => obj(vec![tag("expire")]),
            FaultEvent::Abandon { pick } => {
                obj(vec![tag("abandon"), ("pick", num(u64::from(*pick)))])
            }
            FaultEvent::Cancel => obj(vec![tag("cancel")]),
            FaultEvent::FailNextAppend => obj(vec![tag("fail_append")]),
            FaultEvent::TornNextAppend => obj(vec![tag("torn_append")]),
            FaultEvent::FailNextCompact => obj(vec![tag("fail_compact")]),
            FaultEvent::Compact => obj(vec![tag("compact")]),
            FaultEvent::Kill { lose_tail } => {
                obj(vec![tag("kill"), ("lose_tail", num(u64::from(*lose_tail)))])
            }
        }
    }

    /// Decodes one event from its canonical JSON encoding.
    ///
    /// # Errors
    ///
    /// When the object has no `e` tag, an unknown tag, or a missing field.
    pub fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let err = |message: &str| JsonError::new(message.to_string());
        let tag = value
            .get("e")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("fault event without an `e` tag"))?;
        let byte = |key: &str| -> Result<u8, JsonError> {
            value
                .get(key)
                .and_then(JsonValue::as_u64)
                .map(|n| (n & 0xff) as u8)
                .ok_or_else(|| err(&format!("fault event `{tag}` missing `{key}`")))
        };
        Ok(match tag {
            "lease" => FaultEvent::Lease,
            "drain_commit" => FaultEvent::DrainCommit {
                pick: byte("pick")?,
                batch: byte("batch")?,
            },
            "drain_crash" => FaultEvent::DrainCrash {
                pick: byte("pick")?,
                batches: byte("batches")?,
            },
            "crash_before_commit" => FaultEvent::CrashBeforeCommit {
                pick: byte("pick")?,
            },
            "advance" => FaultEvent::Advance {
                ms: value
                    .get("ms")
                    .and_then(JsonValue::as_u64)
                    .map(|n| n.min(u64::from(u32::MAX)) as u32)
                    .ok_or_else(|| err("advance without `ms`"))?,
            },
            "expire" => FaultEvent::Expire,
            "abandon" => FaultEvent::Abandon {
                pick: byte("pick")?,
            },
            "cancel" => FaultEvent::Cancel,
            "fail_append" => FaultEvent::FailNextAppend,
            "torn_append" => FaultEvent::TornNextAppend,
            "fail_compact" => FaultEvent::FailNextCompact,
            "compact" => FaultEvent::Compact,
            "kill" => FaultEvent::Kill {
                lose_tail: byte("lose_tail")?,
            },
            other => return Err(err(&format!("unknown fault event `{other}`"))),
        })
    }
}

/// A seeded fault schedule: the events plus the seed they came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was derived from (`None` for hand-built or shrunk
    /// plans).
    pub seed: Option<u64>,
    /// The schedule, executed in order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Derives the schedule for `seed`: 8–31 events drawn from every fault
    /// class, weighted toward lease/drain traffic so most schedules make
    /// forward progress between faults.
    pub fn for_seed(seed: u64) -> Self {
        let mut lcg = Lcg::new(seed);
        let len = 8 + lcg.below(24) as usize;
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            let pick = lcg.below(4) as u8;
            events.push(match lcg.below(24) {
                0..=4 => FaultEvent::Lease,
                5..=9 => FaultEvent::DrainCommit {
                    pick,
                    batch: 1 + lcg.below(3) as u8,
                },
                10..=11 => FaultEvent::DrainCrash {
                    pick,
                    batches: 1 + lcg.below(2) as u8,
                },
                12 => FaultEvent::CrashBeforeCommit { pick },
                13..=14 => FaultEvent::Advance {
                    // Around the simulation's 10 s lease timeout: small skews
                    // that renewals absorb, and past-deadline jumps.
                    ms: [100, 5_000, 11_000, 30_000][lcg.below(4) as usize],
                },
                15 => FaultEvent::Expire,
                16 => FaultEvent::Abandon { pick },
                17 => FaultEvent::FailNextAppend,
                18 => FaultEvent::TornNextAppend,
                19 => FaultEvent::FailNextCompact,
                20 => FaultEvent::Compact,
                21..=22 => FaultEvent::Kill {
                    lose_tail: lcg.below(3) as u8,
                },
                _ => {
                    // Cancel ends the job, so keep it rare enough that most
                    // schedules exercise the full completion path.
                    if lcg.below(4) == 0 {
                        FaultEvent::Cancel
                    } else {
                        FaultEvent::Lease
                    }
                }
            });
        }
        FaultPlan {
            seed: Some(seed),
            events,
        }
    }

    /// The plan's events as a canonical JSON array.
    pub fn events_json(&self) -> JsonValue {
        Self::events_json_of(&self.events)
    }

    /// Encodes any event slice as a canonical JSON array (the reproducer
    /// uses this for minimized plans that no longer belong to a seed).
    pub fn events_json_of(events: &[FaultEvent]) -> JsonValue {
        JsonValue::Array(events.iter().map(FaultEvent::to_json).collect())
    }

    /// Decodes events from a JSON array (the inverse of
    /// [`events_json`](Self::events_json)).
    ///
    /// # Errors
    ///
    /// When the value is not an array or any element fails to decode.
    pub fn events_from_json(value: &JsonValue) -> Result<Vec<FaultEvent>, JsonError> {
        let items = value
            .as_array()
            .ok_or_else(|| JsonError::new("fault plan events must be an array".to_string()))?;
        items.iter().map(FaultEvent::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(FaultPlan::for_seed(7), FaultPlan::for_seed(7));
        assert_ne!(FaultPlan::for_seed(7).events, FaultPlan::for_seed(8).events);
    }

    #[test]
    fn every_event_round_trips_through_json() {
        for seed in 0..64 {
            let plan = FaultPlan::for_seed(seed);
            let encoded = plan.events_json();
            let line = encoded.to_line();
            let parsed = JsonValue::parse(&line).unwrap();
            assert_eq!(FaultPlan::events_from_json(&parsed).unwrap(), plan.events);
        }
    }
}
