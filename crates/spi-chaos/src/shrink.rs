//! Delta-debugging shrinker: bisects a failing fault plan down to a minimal
//! reproducer and packages it as one replayable JSON line.
//!
//! The shrinker is greedy ddmin over the event list: starting with chunks of
//! half the plan, it removes each chunk whose removal still fails the
//! oracles, halving the chunk size whenever a full pass removes nothing,
//! until even single-event removals all pass. Because `pick` fields select
//! modulo the *current* holder count, removing unrelated events never
//! invalidates the survivors.

use spi_model::json::{JsonError, JsonValue};

use crate::fault::{FaultEvent, FaultPlan};
use crate::sim::{run_plan, SimConfig, SimFailure, SimStats};

/// Greedily removes events from `events` while the plan keeps failing the
/// oracles under `config`; returns the (locally) minimal failing plan.
/// A plan that does not fail to begin with is returned unchanged.
pub fn shrink(
    config: &SimConfig,
    events: &[FaultEvent],
    oracle_best: (usize, u64),
) -> Vec<FaultEvent> {
    let fails = |candidate: &[FaultEvent]| run_plan(config, candidate, oracle_best).is_err();
    let mut current = events.to_vec();
    if !fails(&current) {
        return current;
    }
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let mut candidate = current.clone();
            let end = (start + chunk).min(candidate.len());
            candidate.drain(start..end);
            if fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same offset again: the next chunk shifted into place.
            } else {
                start += chunk;
            }
        }
        if !reduced {
            if chunk == 1 {
                return current;
            }
            chunk = (chunk / 2).max(1);
        }
    }
}

/// A self-contained failing case: seed (if any), world config and the
/// (minimized) event list — everything needed to replay the failure, as one
/// JSON line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The seed the original plan came from.
    pub seed: Option<u64>,
    /// The simulated world.
    pub config: SimConfig,
    /// The minimized failing schedule.
    pub events: Vec<FaultEvent>,
}

impl Reproducer {
    /// Shrinks a failing `plan` and packages the result.
    pub fn minimize(config: &SimConfig, plan: &FaultPlan, oracle_best: (usize, u64)) -> Reproducer {
        Reproducer {
            seed: plan.seed,
            config: config.clone(),
            events: shrink(config, &plan.events, oracle_best),
        }
    }

    /// The one-line replayable form:
    /// `{"chaos":1,"seed":…,"config":{…},"events":[…]}`.
    pub fn to_line(&self) -> String {
        JsonValue::object([
            ("chaos", JsonValue::Int(1)),
            (
                "seed",
                match self.seed {
                    Some(seed) => JsonValue::Int(i128::from(seed)),
                    None => JsonValue::Null,
                },
            ),
            ("config", self.config.to_json()),
            ("events", FaultPlan::events_json_of(&self.events)),
        ])
        .to_line()
    }

    /// Parses a reproducer line produced by [`to_line`](Self::to_line).
    ///
    /// # Errors
    ///
    /// When the line is not a `{"chaos":1,…}` object or any part fails to
    /// decode.
    pub fn parse(line: &str) -> Result<Reproducer, JsonError> {
        let value = JsonValue::parse(line.trim())?;
        if value.get("chaos").and_then(JsonValue::as_u64) != Some(1) {
            return Err(JsonError::new(
                "not a chaos reproducer line (missing \"chaos\":1)".to_string(),
            ));
        }
        let config = SimConfig::from_json(
            value
                .get("config")
                .ok_or_else(|| JsonError::new("reproducer missing `config`".to_string()))?,
        )?;
        let events = FaultPlan::events_from_json(
            value
                .get("events")
                .ok_or_else(|| JsonError::new("reproducer missing `events`".to_string()))?,
        )?;
        Ok(Reproducer {
            seed: value.get("seed").and_then(JsonValue::as_u64),
            config,
            events,
        })
    }

    /// Replays the reproducer from scratch (recomputing the serial oracle).
    ///
    /// # Errors
    ///
    /// The same [`SimFailure`] the original run died with, if the failure
    /// still reproduces.
    pub fn replay(&self) -> Result<SimStats, SimFailure> {
        let oracle_best = self.config.serial_oracle();
        run_plan(&self.config, &self.events, oracle_best).map_err(|mut failure| {
            failure.seed = self.seed;
            failure
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducer_lines_round_trip() {
        let reproducer = Reproducer {
            seed: Some(99),
            config: SimConfig {
                commit_veto_bug: true,
                ..SimConfig::default()
            },
            events: vec![
                FaultEvent::FailNextAppend,
                FaultEvent::DrainCommit { pick: 0, batch: 4 },
            ],
        };
        let line = reproducer.to_line();
        assert_eq!(Reproducer::parse(&line).unwrap(), reproducer);
    }

    #[test]
    fn a_passing_plan_is_returned_unchanged() {
        let config = SimConfig::default();
        let oracle_best = config.serial_oracle();
        let events = vec![FaultEvent::Lease, FaultEvent::Expire];
        assert_eq!(shrink(&config, &events, oracle_best), events);
    }
}
