//! Deterministic simulation & fault-injection harness for the exploration
//! service (FoundationDB-style).
//!
//! One simulated run drives a real [`spi_explore::JobRegistry`] from a
//! single thread under a seeded [`FaultPlan`]: workers crash before and
//! after staging, simulated time jumps past lease deadlines, duplicate
//! hedged runners race, the durability sink fails and tears appends, and
//! `kill -9` drops the whole registry mid-schedule to be recovered from a
//! (possibly tail-chopped) store. After every kill and at the end, five
//! property oracles must hold:
//!
//! 1. exactly-once shard census,
//! 2. bit-identical optimum versus the serial reference,
//! 3. clean decision-trace replay ([`spi_store::trace::TraceReplay`]),
//! 4. valid waitgraph snapshot,
//! 5. conservation laws between trace-derived counts and metrics counters.
//!
//! A failing plan is shrunk by greedy delta debugging
//! ([`shrink::shrink`]) to a minimal reproducer and printed as **one
//! replayable JSON line** (see [`shrink::Reproducer`]); the `spi-chaos`
//! binary replays such lines and runs seed corpora in CI.
//!
//! ```text
//! spi-chaos corpus --seeds 256        # run seeds 0..256, shrink any failure
//! spi-chaos replay '{"chaos":1,…}'    # re-run a printed reproducer
//! spi-chaos check-census < out.ndjson # audit wire status lines (kill -9 smoke test)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod oracle;
pub mod shrink;
pub mod sim;
pub mod sink;

pub use fault::{FaultEvent, FaultPlan};
pub use shrink::Reproducer;
pub use sim::{run_plan, run_seed, SimConfig, SimFailure, SimStats};
pub use sink::{AppendFault, FaultScript, FaultSink};
/// The workspace's shared deterministic LCG, re-exported so chaos tests and
/// downstream property suites draw from one generator.
pub use spi_testutil::Lcg;
