//! The five property oracles every simulated schedule must satisfy.
//!
//! Each oracle returns the violations it found (empty ⇔ the property held),
//! so the driver can aggregate them into one [`SimFailure`] instead of
//! panicking at the first anomaly:
//!
//! 1. **Census** ([`check_census`]) — exactly-once accounting: a completed
//!    job accounts every combination exactly once, its top-K is strictly
//!    ordered and duplicate-free.
//! 2. **Optimum** ([`check_optimum`]) — the completed job's best variant is
//!    bit-identical to the serial reference oracle.
//! 3. **Replay** ([`check_replay`]) — the drained decision trace replays
//!    cleanly through [`TraceReplay::check`].
//! 4. **Waitgraph** ([`check_waitgraph`]) — the registry's wait-for graph
//!    passes [`GraphSnapshot::validate`].
//! 5. **Conservation** ([`check_conservation`]) — every granted lease is
//!    accounted for by exactly one fate, and the metrics counters agree
//!    with the trace-derived counts.
//!
//! [`SimFailure`]: crate::sim::SimFailure

use spi_explore::{JobState, JobStatus};
use spi_model::introspect::GraphSnapshot;
use spi_model::json::JsonValue;
use spi_store::metrics::{CounterId, MetricsRegistry};
use spi_store::trace::{ReplayReport, TraceEvent, TraceReplay, TracedEvent};

/// Oracle 1 — exactly-once census over a registry-level [`JobStatus`].
///
/// For a completed job every combination is accounted exactly once and every
/// shard committed; for a cancelled job the partial census must still never
/// over-count. In both cases the top list must be strictly `(cost, index)`
/// ordered with no duplicate index, and the counter split must be coherent.
pub fn check_census(status: &JobStatus, combinations: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let accounted = status.report.accounted();
    match status.state {
        JobState::Completed => {
            if accounted != combinations as u64 {
                violations.push(format!(
                    "census: completed job accounted {accounted} of {combinations} combinations"
                ));
            }
            if status.shards_done != status.shard_count {
                violations.push(format!(
                    "census: completed job committed {} of {} shards",
                    status.shards_done, status.shard_count
                ));
            }
        }
        JobState::Cancelled => {
            if accounted > combinations as u64 {
                violations.push(format!(
                    "census: cancelled job over-counted ({accounted} > {combinations})"
                ));
            }
        }
        JobState::Running => {
            violations.push("census: job is not terminal".to_string());
        }
    }
    if status.state.is_terminal() && status.shards_in_flight != 0 {
        violations.push(format!(
            "census: terminal job still reports {} shards in flight",
            status.shards_in_flight
        ));
    }
    if status.report.feasible > status.report.evaluated {
        violations.push(format!(
            "census: feasible ({}) exceeds evaluated ({})",
            status.report.feasible, status.report.evaluated
        ));
    }
    violations.extend(check_top_order(&status.report.top, status.report.feasible));
    violations
}

/// The top-K ordering half of the census oracle, shared with the wire-level
/// checker: strictly increasing `(cost, index)` keys (which also forbids
/// duplicate indices) and no more entries than feasible variants.
pub fn check_top_order(top: &[spi_explore::BestVariant], feasible: u64) -> Vec<String> {
    let mut violations = Vec::new();
    if top.len() as u64 > feasible {
        violations.push(format!(
            "census: top holds {} entries but only {feasible} variants were feasible",
            top.len()
        ));
    }
    for pair in top.windows(2) {
        if (pair[0].cost, pair[0].index) >= (pair[1].cost, pair[1].index) {
            violations.push(format!(
                "census: top not strictly (cost, index) ordered at index {} \
                 (({}, {}) then ({}, {}))",
                pair[0].index, pair[0].cost, pair[0].index, pair[1].cost, pair[1].index
            ));
        }
    }
    violations
}

/// Oracle 2 — the completed job's optimum is bit-identical to the serial
/// reference `(index, cost)`. Only meaningful for completed jobs; cancelled
/// jobs have no exactness claim to check.
pub fn check_optimum(status: &JobStatus, oracle_index: usize, oracle_cost: u64) -> Vec<String> {
    if status.state != JobState::Completed {
        return Vec::new();
    }
    match status.best() {
        None => vec!["optimum: completed job found no feasible variant".to_string()],
        Some(best) if (best.index, best.cost) != (oracle_index, oracle_cost) => {
            vec![format!(
                "optimum: got (index {}, cost {}), serial oracle says (index {oracle_index}, \
                 cost {oracle_cost})",
                best.index, best.cost
            )]
        }
        Some(_) => Vec::new(),
    }
}

/// Oracle 3 — the drained decision trace replays cleanly. Returns the full
/// [`ReplayReport`] (the conservation oracle consumes its derived counts)
/// along with any violations, each prefixed for attribution.
pub fn check_replay(events: &[TracedEvent]) -> (ReplayReport, Vec<String>) {
    let report = TraceReplay::check(events);
    let violations = report
        .violations
        .iter()
        .map(|violation| format!("replay: {violation}"))
        .collect();
    (report, violations)
}

/// Oracle 4 — the registry's waitgraph snapshot is structurally valid.
pub fn check_waitgraph(snapshot: &GraphSnapshot) -> Vec<String> {
    match snapshot.validate() {
        Ok(()) => Vec::new(),
        Err(message) => vec![format!("waitgraph: {message}")],
    }
}

/// Oracle 5 — conservation laws over one trace segment (one registry
/// incarnation, from birth or restore to kill or quiesce):
///
/// * every granted lease has exactly one fate:
///   `grants = commits + expiries + abandons + retired_by_commit + live`;
/// * dispatches never exceed enqueues, with equality (and no live leases)
///   once the segment is `drained` — terminal job, stale queue flushed;
/// * the metrics counters agree with the trace-derived counts — the two
///   observability planes may not disagree about what happened.
pub fn check_conservation(
    events: &[TracedEvent],
    replay: &ReplayReport,
    metrics: &MetricsRegistry,
    drained: bool,
) -> Vec<String> {
    let mut violations = Vec::new();

    let fates = replay.commits
        + replay.expiries
        + replay.abandons
        + replay.retired_by_commit
        + replay.live_leases;
    if replay.grants != fates {
        violations.push(format!(
            "conservation: {} grants but {fates} fates ({} commits + {} expiries + {} abandons \
             + {} retired-by-commit + {} live)",
            replay.grants,
            replay.commits,
            replay.expiries,
            replay.abandons,
            replay.retired_by_commit,
            replay.live_leases
        ));
    }

    let enqueues = events
        .iter()
        .filter(|traced| matches!(traced.event, TraceEvent::WfqEnqueue { .. }))
        .count() as u64;
    let compactions = events
        .iter()
        .filter(|traced| matches!(traced.event, TraceEvent::WalCompact { .. }))
        .count() as u64;
    if replay.dispatches > enqueues {
        violations.push(format!(
            "conservation: {} dispatches exceed {enqueues} enqueues",
            replay.dispatches
        ));
    }
    if drained {
        if replay.dispatches != enqueues {
            violations.push(format!(
                "conservation: drained segment left {} of {enqueues} enqueues undispatched",
                enqueues - replay.dispatches
            ));
        }
        if replay.live_leases != 0 {
            violations.push(format!(
                "conservation: drained segment left {} leases live",
                replay.live_leases
            ));
        }
    }

    let laws: [(CounterId, u64, &str); 11] = [
        (CounterId::WfqEnqueues, enqueues, "wfq enqueues"),
        (CounterId::WfqDequeues, replay.dispatches, "wfq dequeues"),
        (CounterId::LeaseGrants, replay.grants, "lease grants"),
        (CounterId::LeaseRenews, replay.renews, "lease renews"),
        (CounterId::LeaseExpiries, replay.expiries, "lease expiries"),
        (CounterId::LeaseAbandons, replay.abandons, "lease abandons"),
        (
            CounterId::HedgesIssued,
            replay.hedged_grants,
            "hedges issued",
        ),
        (CounterId::HedgeWins, replay.hedge_wins, "hedge wins"),
        (CounterId::ShardCommits, replay.commits, "shard commits"),
        (
            CounterId::EvalVariants,
            replay.evaluated,
            "evaluated variants",
        ),
        (CounterId::WalCompactions, compactions, "wal compactions"),
    ];
    for (counter, traced, label) in laws {
        let counted = metrics.counter(counter);
        if counted != traced {
            violations.push(format!(
                "conservation: metrics count {counted} {label}, the trace derives {traced}"
            ));
        }
    }
    violations
}

/// The census oracle over a **wire-level** status object (one ndjson line
/// from `poll`/`wait`), for the `spi-chaos check-census` CLI that audits the
/// kill -9 smoke test: same exactly-once and top-ordering laws, read from
/// the JSON fields instead of a [`JobStatus`].
pub fn check_wire_census(status: &JsonValue, expect_combinations: Option<u64>) -> Vec<String> {
    let mut violations = Vec::new();
    let field = |key: &str| status.get(key).and_then(JsonValue::as_u64);
    let (Some(state), Some(combinations)) = (
        status.get("state").and_then(JsonValue::as_str),
        field("combinations"),
    ) else {
        return vec!["census: status line lacks `state`/`combinations`".to_string()];
    };
    if let Some(expected) = expect_combinations {
        if combinations != expected {
            violations.push(format!(
                "census: space holds {combinations} combinations, expected {expected}"
            ));
        }
    }
    let accounted = field("evaluated").unwrap_or(0)
        + field("pruned").unwrap_or(0)
        + field("errors").unwrap_or(0);
    match state {
        "completed" => {
            if accounted != combinations {
                violations.push(format!(
                    "census: completed job accounted {accounted} of {combinations} combinations"
                ));
            }
            if field("shards_done") != field("shards") {
                violations.push(format!(
                    "census: completed job committed {:?} of {:?} shards",
                    field("shards_done"),
                    field("shards")
                ));
            }
        }
        // A non-terminal line (a submit ack, a mid-flight poll) carries a
        // partial census; it must never over-count, but completeness is not
        // yet its law.
        "cancelled" | "running" => {
            if accounted > combinations {
                violations.push(format!(
                    "census: {state} job over-counted ({accounted} > {combinations})"
                ));
            }
        }
        other => violations.push(format!("census: unknown job state `{other}`")),
    }
    if state != "running" {
        if let Some(in_flight) = field("shards_in_flight") {
            if in_flight != 0 {
                violations.push(format!(
                    "census: terminal job still reports {in_flight} shards in flight"
                ));
            }
        }
    }
    if let (Some(top), Some(feasible)) = (
        status.get("top").and_then(JsonValue::as_array),
        field("feasible"),
    ) {
        let mut keys = Vec::new();
        for entry in top {
            match (
                entry.get("cost").and_then(JsonValue::as_u64),
                entry.get("index").and_then(JsonValue::as_u64),
            ) {
                (Some(cost), Some(index)) => keys.push((cost, index)),
                _ => violations.push("census: top entry lacks cost/index".to_string()),
            }
        }
        if keys.len() as u64 > feasible {
            violations.push(format!(
                "census: top holds {} entries but only {feasible} variants were feasible",
                keys.len()
            ));
        }
        for pair in keys.windows(2) {
            if pair[0] >= pair[1] {
                violations.push(format!(
                    "census: top not strictly (cost, index) ordered ({:?} then {:?})",
                    pair[0], pair[1]
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_census_accepts_a_clean_completed_status() {
        let line = r#"{"state":"completed","combinations":16,"evaluated":10,"pruned":6,
            "errors":0,"feasible":4,"shards":4,"shards_done":4,
            "top":[{"cost":5,"index":2},{"cost":7,"index":1}]}"#;
        let status = JsonValue::parse(line).unwrap();
        assert!(check_wire_census(&status, Some(16)).is_empty());
    }

    #[test]
    fn wire_census_rejects_an_over_counted_space() {
        let line = r#"{"state":"completed","combinations":16,"evaluated":12,"pruned":6,
            "errors":0,"feasible":4,"shards":4,"shards_done":4,"top":[]}"#;
        let status = JsonValue::parse(line).unwrap();
        let violations = check_wire_census(&status, None);
        assert!(
            violations.iter().any(|v| v.contains("accounted 18 of 16")),
            "{violations:?}"
        );
    }

    #[test]
    fn wire_census_accepts_a_running_partial_but_rejects_over_count() {
        let running = r#"{"state":"running","combinations":16,"evaluated":4,"pruned":0,
            "errors":0,"feasible":2,"shards":4,"shards_done":1,"top":[]}"#;
        let status = JsonValue::parse(running).unwrap();
        assert!(check_wire_census(&status, Some(16)).is_empty());
        let over = r#"{"state":"running","combinations":16,"evaluated":20,"pruned":0,
            "errors":0,"feasible":2,"shards":4,"shards_done":1,"top":[]}"#;
        let status = JsonValue::parse(over).unwrap();
        assert!(!check_wire_census(&status, Some(16)).is_empty());
    }

    #[test]
    fn wire_census_rejects_disordered_top() {
        let line = r#"{"state":"cancelled","combinations":16,"evaluated":4,"pruned":0,
            "errors":0,"feasible":3,
            "top":[{"cost":7,"index":1},{"cost":5,"index":2}]}"#;
        let status = JsonValue::parse(line).unwrap();
        assert!(!check_wire_census(&status, None).is_empty());
    }
}
