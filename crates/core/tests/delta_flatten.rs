//! Differential suite: [`DeltaFlattener`] must be **bit-identical** to
//! [`Flattener::flatten_at`] — same slabs, same ids, same iteration order,
//! same digests — on every index of randomized variant systems, over full
//! Gray-order walks, shard-strided walks, and after mid-walk resets.
//!
//! Randomization uses a local LCG (seeded, reproducible): the point is many
//! differently-shaped spaces (uneven radices, single-cluster axes, varying
//! cluster depths), not true randomness.

use spi_model::{digest_bytes, ChannelKind, Digest, GraphBuilder, Interval, SpiGraph};
use spi_variants::{Cluster, DeltaFlattener, Flattener, Interface, VariantSystem, VariantType};

/// Minimal deterministic LCG — the shared workspace generator, reproducible
/// across platforms with no external dependency.
use spi_testutil::Lcg;

/// The graph digest the suite pins: the canonical `Display` listing, which
/// walks both slabs in id order and prints every edge endpoint — equal bytes
/// mean equal ids, equal iteration order and equal topology.
fn graph_digest(graph: &SpiGraph) -> Digest {
    digest_bytes(graph.to_string().as_bytes())
}

/// Builds a randomized variant system: 2–4 interfaces, 1–3 clusters each,
/// clusters of 1–3 chained processes, every interface spliced between a
/// common source and sink.
fn random_system(seed: u64) -> VariantSystem {
    let mut rng = Lcg::from_state(seed.wrapping_mul(2).wrapping_add(1));
    let interfaces = rng.range(2, 4);

    let mut b = GraphBuilder::new(format!("rand{seed}"));
    let src = b
        .process(format!("s{seed}/src"))
        .latency(Interval::point(1))
        .build()
        .unwrap();
    for i in 0..interfaces {
        let cin = b
            .channel(format!("s{seed}/in{i}"), ChannelKind::Queue)
            .unwrap();
        let cout = b
            .channel(format!("s{seed}/out{i}"), ChannelKind::Queue)
            .unwrap();
        b.connect_output(src, cin, Interval::point(1)).unwrap();
        let sink = b
            .process(format!("s{seed}/sink{i}"))
            .latency(Interval::point(2))
            .build()
            .unwrap();
        b.connect_input(cout, sink, Interval::point(1)).unwrap();
    }
    let mut system = VariantSystem::new(b.finish().unwrap());

    for i in 0..interfaces {
        let mut interface = Interface::new(format!("s{seed}/if{i}"));
        interface.add_input_port("i");
        interface.add_output_port("o");
        for c in 0..rng.range(1, 3) {
            let stages = rng.range(1, 3);
            let name = format!("v{c}");
            let mut cb = GraphBuilder::new(name.clone());
            let mut prev = None;
            for stage in 0..stages {
                let p = cb
                    .process(format!("P{stage}"))
                    .latency(Interval::point(rng.range(1, 9)))
                    .build()
                    .unwrap();
                if let Some(prev) = prev {
                    let mid = cb.channel(format!("c{stage}"), ChannelKind::Queue).unwrap();
                    cb.connect_output(prev, mid, Interval::point(1)).unwrap();
                    cb.connect_input(mid, p, Interval::point(1)).unwrap();
                }
                prev = Some(p);
            }
            let mut cluster = Cluster::new(&name, cb.finish().unwrap());
            cluster
                .add_input_port("i", "P0", Interval::point(rng.range(1, 3)))
                .unwrap();
            cluster
                .add_output_port(
                    "o",
                    format!("P{}", stages - 1).as_str(),
                    Interval::point(rng.range(1, 3)),
                )
                .unwrap();
            interface.add_cluster(cluster).unwrap();
        }
        let att = system
            .attach_interface(interface, VariantType::Production)
            .unwrap();
        system
            .bind_input(att, "i", format!("s{seed}/in{i}"))
            .unwrap();
        system
            .bind_output(att, "o", format!("s{seed}/out{i}"))
            .unwrap();
    }
    system
}

/// Asserts full bit-identity of the patched graph against a fresh flatten.
fn assert_identical(delta: &SpiGraph, full: &SpiGraph, context: &str) {
    assert_eq!(delta, full, "{context}: graph mismatch");
    assert_eq!(
        graph_digest(delta),
        graph_digest(full),
        "{context}: digest mismatch"
    );
}

#[test]
fn full_gray_walks_are_bit_identical() {
    for seed in 0..12 {
        let system = random_system(seed);
        let flattener = Flattener::new(&system).unwrap();
        let space = flattener.space();
        let mut delta = DeltaFlattener::new(&flattener);
        let mut visited = Vec::new();
        for rank in 0..space.count() {
            let (index, patched) = delta.flatten_gray_rank(rank).unwrap();
            let (_, full) = flattener.flatten_at(index).unwrap();
            assert_identical(patched, &full, &format!("seed {seed} rank {rank}"));
            visited.push(index);
        }
        visited.sort_unstable();
        assert_eq!(
            visited,
            (0..space.count()).collect::<Vec<_>>(),
            "seed {seed}: gray walk must visit every index exactly once"
        );
    }
}

#[test]
fn random_index_jumps_are_bit_identical() {
    for seed in 12..20 {
        let system = random_system(seed);
        let flattener = Flattener::new(&system).unwrap();
        let count = flattener.space().count();
        let mut delta = DeltaFlattener::new(&flattener);
        let mut rng = Lcg::from_state(seed);
        for step in 0..4 * count {
            let index = (rng.next() as usize) % count;
            let patched = delta.flatten_index(index).unwrap();
            let (_, full) = flattener.flatten_at(index).unwrap();
            assert_identical(patched, &full, &format!("seed {seed} step {step}"));
        }
    }
}

#[test]
fn shard_strided_walks_are_bit_identical_and_partition_the_space() {
    for seed in 20..26 {
        let system = random_system(seed);
        let flattener = Flattener::new(&system).unwrap();
        let space = flattener.space();
        let count = space.count();
        for shard_count in [1usize, 2, 3, 5] {
            let mut visited = Vec::new();
            for shard in 0..shard_count {
                // Each shard walks its own Gray-rank arithmetic progression
                // with its own delta flattener — the worker pattern.
                let mut delta = DeltaFlattener::new(&flattener);
                let mut rank = shard;
                while rank < count {
                    let (index, patched) = delta.flatten_gray_rank(rank).unwrap();
                    let (_, full) = flattener.flatten_at(index).unwrap();
                    assert_identical(
                        patched,
                        &full,
                        &format!("seed {seed} shard {shard}/{shard_count} rank {rank}"),
                    );
                    visited.push(index);
                    rank += shard_count;
                }
            }
            visited.sort_unstable();
            assert_eq!(
                visited,
                (0..count).collect::<Vec<_>>(),
                "seed {seed}: {shard_count} shards must partition the space"
            );
        }
    }
}

#[test]
fn mid_walk_resets_do_not_change_results() {
    for seed in 26..32 {
        let system = random_system(seed);
        let flattener = Flattener::new(&system).unwrap();
        let count = flattener.space().count();
        let mut delta = DeltaFlattener::new(&flattener);
        let mut rng = Lcg::from_state(seed ^ 0x5eed);
        for rank in 0..count {
            if rng.next().is_multiple_of(3) {
                delta.reset();
            }
            let (index, patched) = delta.flatten_gray_rank(rank).unwrap();
            let (_, full) = flattener.flatten_at(index).unwrap();
            assert_identical(patched, &full, &format!("seed {seed} rank {rank}"));
        }
    }
}

#[test]
fn patched_graphs_always_validate() {
    let system = random_system(99);
    let flattener = Flattener::new(&system).unwrap();
    let mut delta = DeltaFlattener::new(&flattener);
    for rank in 0..flattener.space().count() {
        let (_, patched) = delta.flatten_gray_rank(rank).unwrap();
        patched.validate().unwrap();
    }
}

/// A slab-integrity refusal mid-walk must self-invalidate the patch state and
/// transparently fall back to a full rebuild — in **every** build profile.
/// Before the preconditions became real errors they were `debug_assert!`s, so
/// a release build walked straight past a corrupted watermark and silently
/// spliced a wrong graph; this test is meaningful precisely when run with
/// `--release` (CI does), where it proves the refusal still fires.
#[test]
fn corrupted_patch_state_falls_back_to_a_full_rebuild() {
    let system = random_system(7);
    let flattener = Flattener::new(&system).unwrap();
    let count = flattener.space().count();
    assert!(count >= 3, "need a walk of at least 3 ranks");
    let mut delta = DeltaFlattener::new(&flattener);

    delta.flatten_gray_rank(0).unwrap();
    assert_eq!(delta.rebuild_fallbacks(), 0);

    // Corrupt the recorded watermarks: the next incremental patch must refuse
    // (instead of corrupting the slabs) and rebuild from the skeleton.
    delta.corrupt_watermarks_for_test();
    for rank in 1..count {
        let (index, patched) = delta.flatten_gray_rank(rank).unwrap();
        let (_, full) = flattener.flatten_at(index).unwrap();
        assert_identical(patched, &full, &format!("rank {rank} after corruption"));
    }
    assert_eq!(
        delta.rebuild_fallbacks(),
        1,
        "exactly the first post-corruption patch falls back; later patches run incrementally again"
    );
}
