//! Cluster selection functions (Definition 3 of the paper).
//!
//! Associated with an interface there may be a **cluster selection function**: a finite
//! set of rules, each mapping an input-token predicate (over the tag sets of the first
//! available tokens on channels of the surrounding system) to one dedicated cluster.
//! Additionally, each (interface, cluster) pair carries a **configuration latency**
//! `t_conf` — the time needed to configure the interface with that cluster — and the
//! interface keeps a `cur` parameter recording the currently selected cluster (stored on
//! [`crate::Interface`]).
//!
//! The paper's Figure 3 example:
//!
//! ```text
//! rho1 : 'V1' in CV.tag  ->  cluster1
//! rho2 : 'V2' in CV.tag  ->  cluster2
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use spi_model::{ChannelId, ChannelView, Predicate, Tag, TimeValue};

/// A single selection rule: predicate → cluster name.
///
/// Rules reference channels of the *surrounding* graph by name; the name is resolved
/// against the common graph when the rule is evaluated or compiled into a
/// [`Predicate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionRule {
    name: String,
    channel: String,
    min_tokens: u64,
    required_tag: Option<Tag>,
    cluster: String,
}

impl SelectionRule {
    /// Rule requiring the first visible token on `channel` to carry `tag`
    /// (the form used throughout the paper).
    pub fn tag_equals(
        name: impl Into<String>,
        channel: impl Into<String>,
        tag: impl Into<Tag>,
        cluster: impl Into<String>,
    ) -> Self {
        SelectionRule {
            name: name.into(),
            channel: channel.into(),
            min_tokens: 1,
            required_tag: Some(tag.into()),
            cluster: cluster.into(),
        }
    }

    /// Rule requiring only token availability on `channel` (no tag condition).
    pub fn token_present(
        name: impl Into<String>,
        channel: impl Into<String>,
        cluster: impl Into<String>,
    ) -> Self {
        SelectionRule {
            name: name.into(),
            channel: channel.into(),
            min_tokens: 1,
            required_tag: None,
            cluster: cluster.into(),
        }
    }

    /// Sets the minimum number of available tokens required (defaults to one).
    pub fn with_min_tokens(mut self, min_tokens: u64) -> Self {
        self.min_tokens = min_tokens;
        self
    }

    /// Rule name (e.g. `rho1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Name of the channel inspected by the predicate.
    pub fn channel(&self) -> &str {
        &self.channel
    }

    /// Minimum number of tokens that must be available.
    pub fn min_tokens(&self) -> u64 {
        self.min_tokens
    }

    /// Tag that the first visible token must carry, if any.
    pub fn required_tag(&self) -> Option<&Tag> {
        self.required_tag.as_ref()
    }

    /// Name of the cluster selected when the predicate holds.
    pub fn cluster(&self) -> &str {
        &self.cluster
    }

    /// Compiles the rule's predicate against a resolved channel id.
    pub fn predicate(&self, channel: ChannelId) -> Predicate {
        let mut predicate = Predicate::min_tokens(channel, self.min_tokens);
        if let Some(tag) = &self.required_tag {
            predicate = predicate.and(Predicate::HasTag {
                channel,
                tag: tag.clone(),
            });
        }
        predicate
    }

    /// Evaluates the rule against channel state, given the resolved channel id.
    pub fn matches<V: ChannelView + ?Sized>(&self, channel: ChannelId, view: &V) -> bool {
        self.predicate(channel).eval(view)
    }
}

impl fmt::Display for SelectionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.required_tag {
            Some(tag) => write!(
                f,
                "{}: {} in {}.tag -> {}",
                self.name, tag, self.channel, self.cluster
            ),
            None => write!(
                f,
                "{}: {}.num >= {} -> {}",
                self.name, self.channel, self.min_tokens, self.cluster
            ),
        }
    }
}

/// The cluster selection function of an interface (Definition 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterSelection {
    rules: Vec<SelectionRule>,
    /// Configuration latency `t_conf` per cluster name.
    configuration_latencies: BTreeMap<String, TimeValue>,
    /// Latency assumed for clusters without an explicit entry.
    default_latency: TimeValue,
}

impl ClusterSelection {
    /// Creates an empty selection function.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule; rules are evaluated in insertion order.
    pub fn with_rule(mut self, rule: SelectionRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Sets the configuration latency `t_conf` for one cluster.
    pub fn with_configuration_latency(
        mut self,
        cluster: impl Into<String>,
        latency: TimeValue,
    ) -> Self {
        self.configuration_latencies.insert(cluster.into(), latency);
        self
    }

    /// Sets the latency assumed for clusters without an explicit entry.
    pub fn with_default_latency(mut self, latency: TimeValue) -> Self {
        self.default_latency = latency;
        self
    }

    /// The rules in evaluation order.
    pub fn rules(&self) -> &[SelectionRule] {
        &self.rules
    }

    /// Returns `true` if no rules were declared.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Configuration latency `t_conf` for the given cluster.
    pub fn configuration_latency(&self, cluster: &str) -> TimeValue {
        self.configuration_latencies
            .get(cluster)
            .copied()
            .unwrap_or(self.default_latency)
    }

    /// Channel names referenced by the rules (deduplicated, sorted).
    pub fn referenced_channels(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.rules.iter().map(|r| r.channel.as_str()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Evaluates the selection function: the first rule whose predicate holds selects
    /// the cluster. `resolve` maps a channel name to its id in the surrounding graph.
    ///
    /// Returns `None` if no rule is enabled or a referenced channel cannot be resolved
    /// (the paper assumes correct models, so this simply means "no selection yet").
    pub fn select<'a, V, F>(&'a self, view: &V, mut resolve: F) -> Option<&'a str>
    where
        V: ChannelView + ?Sized,
        F: FnMut(&str) -> Option<ChannelId>,
    {
        self.rules
            .iter()
            .find(|rule| {
                resolve(&rule.channel)
                    .map(|channel| rule.matches(channel, view))
                    .unwrap_or(false)
            })
            .map(|rule| rule.cluster.as_str())
    }
}

impl fmt::Display for ClusterSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        for (cluster, latency) in &self.configuration_latencies {
            writeln!(f, "t_conf({cluster}) = {latency}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::activation::ChannelSnapshot;

    fn figure3_selection() -> ClusterSelection {
        ClusterSelection::new()
            .with_rule(SelectionRule::tag_equals("rho1", "CV", "V1", "cluster1"))
            .with_rule(SelectionRule::tag_equals("rho2", "CV", "V2", "cluster2"))
            .with_configuration_latency("cluster1", 10)
            .with_configuration_latency("cluster2", 25)
    }

    #[test]
    fn tag_rule_selects_matching_cluster() {
        let selection = figure3_selection();
        let cv = ChannelId::new(3);
        let mut view = ChannelSnapshot::new();
        view.set(cv, 1, vec![Tag::new("V2")]);
        let resolve = |name: &str| (name == "CV").then_some(cv);
        assert_eq!(selection.select(&view, resolve), Some("cluster2"));
    }

    #[test]
    fn no_token_means_no_selection() {
        let selection = figure3_selection();
        let cv = ChannelId::new(3);
        let view = ChannelSnapshot::new();
        assert_eq!(selection.select(&view, |_| Some(cv)), None);
    }

    #[test]
    fn unresolvable_channel_means_no_selection() {
        let selection = figure3_selection();
        let mut view = ChannelSnapshot::new();
        view.set(ChannelId::new(3), 1, vec![Tag::new("V1")]);
        assert_eq!(selection.select(&view, |_| None), None);
    }

    #[test]
    fn configuration_latency_lookup_with_default() {
        let selection = figure3_selection().with_default_latency(7);
        assert_eq!(selection.configuration_latency("cluster1"), 10);
        assert_eq!(selection.configuration_latency("cluster2"), 25);
        assert_eq!(selection.configuration_latency("unknown"), 7);
    }

    #[test]
    fn rule_order_breaks_ambiguity() {
        // A token carrying both tags matches rho1 first.
        let selection = figure3_selection();
        let cv = ChannelId::new(0);
        let mut view = ChannelSnapshot::new();
        view.set(cv, 1, vec![Tag::new("V1"), Tag::new("V2")]);
        assert_eq!(selection.select(&view, |_| Some(cv)), Some("cluster1"));
    }

    #[test]
    fn token_present_rule_ignores_tags() {
        let rule = SelectionRule::token_present("r", "CReq", "any").with_min_tokens(2);
        let c = ChannelId::new(1);
        let mut view = ChannelSnapshot::new();
        view.set(c, 1, vec![]);
        assert!(!rule.matches(c, &view));
        view.set(c, 2, vec![]);
        assert!(rule.matches(c, &view));
    }

    #[test]
    fn display_reads_like_the_paper() {
        let selection = figure3_selection();
        let text = selection.to_string();
        assert!(text.contains("rho1: 'V1' in CV.tag -> cluster1"));
        assert!(text.contains("t_conf(cluster2) = 25"));
    }

    #[test]
    fn referenced_channels_deduplicated() {
        let selection = figure3_selection();
        assert_eq!(selection.referenced_channels(), vec!["CV"]);
    }
}
