//! Operational reconfiguration semantics.
//!
//! Section 4 of the paper describes what happens when the modes of two consecutive
//! executions of an abstracted process were extracted from different clusters: a
//! reconfiguration step is inserted, the old configuration is destroyed (including all
//! internal buffers), `conf_cur` is updated, and the reconfiguration latency is added to
//! the execution latency of that execution. [`ReconfigurationTracker`] implements this
//! bookkeeping over a [`ConfigurationMap`]; the simulator drives it and the synthesis
//! layer uses its accounting to budget reconfiguration overhead.

use serde::{Deserialize, Serialize};
use std::fmt;

use spi_model::{ModeId, ProcessId, TimeValue};

use crate::configuration::ConfigurationMap;

/// A reconfiguration observed between two consecutive executions of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigurationEvent {
    /// The reconfigured process.
    pub process: ProcessId,
    /// Index of the configuration that was active before (`None` for the initial
    /// configuration step).
    pub from: Option<usize>,
    /// Index of the newly selected configuration.
    pub to: usize,
    /// Latency of the reconfiguration step, added to the execution latency.
    pub latency: TimeValue,
    /// Whether internal state (buffered data of the replaced cluster) is lost. This is
    /// `true` for every proper reconfiguration, `false` for the initial configuration.
    pub state_lost: bool,
}

impl fmt::Display for ReconfigurationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(
                f,
                "{}: reconfigure conf{} -> conf{} (t_conf = {})",
                self.process, from, self.to, self.latency
            ),
            None => write!(
                f,
                "{}: initial configuration conf{} (t_conf = {})",
                self.process, self.to, self.latency
            ),
        }
    }
}

/// Tracks `conf_cur` per process and reports reconfiguration steps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconfigurationTracker {
    configurations: ConfigurationMap,
    last_mode: std::collections::BTreeMap<ProcessId, ModeId>,
    events: Vec<ReconfigurationEvent>,
}

impl ReconfigurationTracker {
    /// Creates a tracker over the configuration annotations of a system.
    pub fn new(configurations: ConfigurationMap) -> Self {
        ReconfigurationTracker {
            configurations,
            last_mode: std::collections::BTreeMap::new(),
            events: Vec::new(),
        }
    }

    /// The configuration annotations the tracker operates on.
    pub fn configurations(&self) -> &ConfigurationMap {
        &self.configurations
    }

    /// Records that `process` is about to execute in `mode` and returns the
    /// reconfiguration step required before that execution, if any.
    ///
    /// Processes without configuration annotations never reconfigure.
    pub fn observe(&mut self, process: ProcessId, mode: ModeId) -> Option<ReconfigurationEvent> {
        let set = self.configurations.get_mut(&process)?;
        let previous = self.last_mode.insert(process, mode);
        let (from, to, latency) = set.reconfiguration(previous, mode)?;
        set.set_current(to);
        let event = ReconfigurationEvent {
            process,
            from,
            to,
            latency,
            state_lost: from.is_some(),
        };
        self.events.push(event);
        Some(event)
    }

    /// The current configuration index of a process, if it has been configured.
    pub fn current(&self, process: ProcessId) -> Option<usize> {
        self.configurations.get(&process)?.current()
    }

    /// All reconfiguration events observed so far, in order.
    pub fn events(&self) -> &[ReconfigurationEvent] {
        &self.events
    }

    /// Number of *proper* reconfigurations (excluding initial configuration steps).
    pub fn reconfiguration_count(&self) -> usize {
        self.events.iter().filter(|e| e.state_lost).count()
    }

    /// Total latency spent in configuration and reconfiguration steps.
    pub fn total_latency(&self) -> TimeValue {
        self.events.iter().map(|e| e.latency).sum()
    }

    /// Forgets all history (e.g. when restarting a simulation) but keeps the
    /// configuration definitions.
    pub fn reset(&mut self) {
        self.last_mode.clear();
        self.events.clear();
        for set in self.configurations.values_mut() {
            set.clear_current();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configuration::{Configuration, ConfigurationSet};

    fn tracker() -> (ReconfigurationTracker, ProcessId) {
        let process = ProcessId::new(7);
        let set = ConfigurationSet::new()
            .with_configuration(Configuration::new(
                "conf1",
                [ModeId::new(0), ModeId::new(1)],
                10,
            ))
            .with_configuration(Configuration::new("conf2", [ModeId::new(2)], 25));
        let mut map = ConfigurationMap::new();
        map.insert(process, set);
        (ReconfigurationTracker::new(map), process)
    }

    #[test]
    fn initial_configuration_is_reported_without_state_loss() {
        let (mut tracker, p) = tracker();
        let event = tracker.observe(p, ModeId::new(0)).unwrap();
        assert_eq!(event.from, None);
        assert_eq!(event.to, 0);
        assert_eq!(event.latency, 10);
        assert!(!event.state_lost);
        assert_eq!(tracker.current(p), Some(0));
    }

    #[test]
    fn executions_within_a_configuration_do_not_reconfigure() {
        let (mut tracker, p) = tracker();
        tracker.observe(p, ModeId::new(0));
        assert_eq!(tracker.observe(p, ModeId::new(1)), None);
        assert_eq!(tracker.reconfiguration_count(), 0);
        assert_eq!(tracker.total_latency(), 10);
    }

    #[test]
    fn switching_variants_costs_the_target_latency_and_loses_state() {
        let (mut tracker, p) = tracker();
        tracker.observe(p, ModeId::new(0));
        let event = tracker.observe(p, ModeId::new(2)).unwrap();
        assert_eq!((event.from, event.to, event.latency), (Some(0), 1, 25));
        assert!(event.state_lost);
        let back = tracker.observe(p, ModeId::new(1)).unwrap();
        assert_eq!((back.from, back.to, back.latency), (Some(1), 0, 10));
        assert_eq!(tracker.reconfiguration_count(), 2);
        assert_eq!(tracker.total_latency(), 10 + 25 + 10);
    }

    #[test]
    fn unannotated_processes_never_reconfigure() {
        let (mut tracker, _) = tracker();
        assert_eq!(tracker.observe(ProcessId::new(99), ModeId::new(0)), None);
    }

    #[test]
    fn reset_clears_history_and_current() {
        let (mut tracker, p) = tracker();
        tracker.observe(p, ModeId::new(0));
        tracker.observe(p, ModeId::new(2));
        tracker.reset();
        assert!(tracker.events().is_empty());
        assert_eq!(tracker.current(p), None);
        // After a reset the next observation is an initial configuration again.
        let event = tracker.observe(p, ModeId::new(2)).unwrap();
        assert_eq!(event.from, None);
    }
}
