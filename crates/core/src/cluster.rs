//! Clusters (Definition 1 of the paper).
//!
//! A cluster is a connected subgraph — processes, channels and (possibly) embedded
//! interfaces — that communicates with its surroundings only through **input and output
//! ports**. Clustering adds no functionality; it is the structuring concept that makes a
//! function variant an exchangeable unit: changing a system's variant corresponds to
//! exchanging clusters behind an [`crate::Interface`].
//!
//! The degree restrictions of Definition 1 (out-degree of input ports and in-degree of
//! output ports is at most one) are honoured by binding every port to exactly one
//! embedded process.

use serde::{Deserialize, Serialize};
use std::fmt;

use spi_model::{Interval, LatencyAnalysis, ProcessId, SpiGraph, TagSet};

use crate::error::VariantError;
use crate::Result;

/// Direction of a cluster or interface port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// Data flows from the surrounding system into the cluster.
    Input,
    /// Data flows from the cluster into the surrounding system.
    Output,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortDirection::Input => write!(f, "input"),
            PortDirection::Output => write!(f, "output"),
        }
    }
}

/// A port of a cluster: the point where an external channel is attached when the cluster
/// is instantiated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    name: String,
    direction: PortDirection,
    /// Embedded process that reads (input port) or writes (output port) the external
    /// channel once the cluster is instantiated.
    process: ProcessId,
    /// Tokens consumed/produced at this port per execution of the bound process.
    rate: Interval,
    /// Tags attached to tokens produced at this port (output ports only).
    tags: TagSet,
}

impl Port {
    /// Port name (unique within the cluster).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Port direction.
    pub fn direction(&self) -> PortDirection {
        self.direction
    }

    /// The embedded process bound to the port.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Tokens transferred at this port per execution of the bound process.
    pub fn rate(&self) -> Interval {
        self.rate
    }

    /// Tags attached to tokens produced at this port.
    pub fn tags(&self) -> &TagSet {
        &self.tags
    }
}

/// A cluster: an exchangeable subgraph with ports (Definition 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    name: String,
    graph: SpiGraph,
    ports: Vec<Port>,
}

impl Cluster {
    /// Wraps an SPI graph into a cluster with no ports yet.
    pub fn new(name: impl Into<String>, graph: SpiGraph) -> Self {
        Cluster {
            name: name.into(),
            graph,
            ports: Vec::new(),
        }
    }

    /// Cluster name (unique within its interface).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The embedded SPI graph.
    pub fn graph(&self) -> &SpiGraph {
        &self.graph
    }

    /// Mutable access to the embedded SPI graph.
    pub fn graph_mut(&mut self) -> &mut SpiGraph {
        &mut self.graph
    }

    /// Adds an input port bound to the embedded process named `process`, consuming
    /// `rate` tokens from the external channel per execution of that process.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::DuplicatePort`] if the port name is taken or
    /// [`VariantError::UnknownPortProcess`] if the process does not exist.
    pub fn add_input_port(
        &mut self,
        name: impl Into<String>,
        process: impl AsRef<str>,
        rate: Interval,
    ) -> Result<()> {
        self.add_port(
            name.into(),
            PortDirection::Input,
            process.as_ref(),
            rate,
            TagSet::new(),
        )
    }

    /// Adds an output port bound to the embedded process named `process`, producing
    /// `rate` untagged tokens on the external channel per execution of that process.
    ///
    /// # Errors
    ///
    /// Same as [`add_input_port`](Self::add_input_port).
    pub fn add_output_port(
        &mut self,
        name: impl Into<String>,
        process: impl AsRef<str>,
        rate: Interval,
    ) -> Result<()> {
        self.add_port(
            name.into(),
            PortDirection::Output,
            process.as_ref(),
            rate,
            TagSet::new(),
        )
    }

    /// Adds an output port whose produced tokens carry `tags`.
    ///
    /// # Errors
    ///
    /// Same as [`add_input_port`](Self::add_input_port).
    pub fn add_tagged_output_port(
        &mut self,
        name: impl Into<String>,
        process: impl AsRef<str>,
        rate: Interval,
        tags: TagSet,
    ) -> Result<()> {
        self.add_port(
            name.into(),
            PortDirection::Output,
            process.as_ref(),
            rate,
            tags,
        )
    }

    fn add_port(
        &mut self,
        name: String,
        direction: PortDirection,
        process: &str,
        rate: Interval,
        tags: TagSet,
    ) -> Result<()> {
        if self.ports.iter().any(|p| p.name == name) {
            return Err(VariantError::DuplicatePort(name));
        }
        let process_id = self
            .graph
            .process_by_name(process)
            .ok_or_else(|| VariantError::UnknownPortProcess {
                cluster: self.name.clone(),
                process: process.to_string(),
            })?
            .id();
        self.ports.push(Port {
            name,
            direction,
            process: process_id,
            rate,
            tags,
        });
        Ok(())
    }

    /// All ports in declaration order.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Input ports in declaration order.
    pub fn input_ports(&self) -> impl Iterator<Item = &Port> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Input)
    }

    /// Output ports in declaration order.
    pub fn output_ports(&self) -> impl Iterator<Item = &Port> {
        self.ports
            .iter()
            .filter(|p| p.direction == PortDirection::Output)
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Ordered list of input port names — one half of the cluster's signature.
    pub fn input_signature(&self) -> Vec<&str> {
        self.input_ports().map(|p| p.name.as_str()).collect()
    }

    /// Ordered list of output port names — the other half of the signature.
    pub fn output_signature(&self) -> Vec<&str> {
        self.output_ports().map(|p| p.name.as_str()).collect()
    }

    /// Number of embedded processes.
    pub fn process_count(&self) -> usize {
        self.graph.process_count()
    }

    /// Number of embedded channels.
    pub fn channel_count(&self) -> usize {
        self.graph.channel_count()
    }

    /// Validates the cluster: the embedded graph must validate and every port binding
    /// must reference an existing process.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        self.graph.validate()?;
        for port in &self.ports {
            if self.graph.process(port.process).is_none() {
                return Err(VariantError::UnknownPortProcess {
                    cluster: self.name.clone(),
                    process: port.process.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Estimated execution latency of the cluster: the interval hull over the end-to-end
    /// latencies from every input-port process to every output-port process. When no
    /// such path exists (e.g. a source-only cluster), the conservative fallback is the
    /// interval sum of all embedded process latency hulls.
    ///
    /// This is the latency used by parameter extraction (Section 4 of the paper) when a
    /// cluster is abstracted into one process mode.
    ///
    /// # Errors
    ///
    /// Returns an error if an embedded process has no modes.
    pub fn latency_estimate(&self) -> Result<Interval> {
        let analysis = LatencyAnalysis::new(&self.graph);
        let mut hull: Option<Interval> = None;
        for input in self.input_ports() {
            for output in self.output_ports() {
                if let Ok(interval) = analysis.end_to_end(input.process, output.process) {
                    hull = Some(match hull {
                        None => interval,
                        Some(h) => h.hull(interval),
                    });
                }
            }
        }
        if let Some(hull) = hull {
            return Ok(hull);
        }
        // Fallback: sum of all process latencies (conservative for a sequential cluster).
        let mut total = Interval::zero();
        for process in self.graph.processes() {
            total = total.add(process.latency_hull().map_err(VariantError::Model)?);
        }
        Ok(total)
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster `{}` ({} processes, {} channels, {} ports)",
            self.name,
            self.process_count(),
            self.channel_count(),
            self.ports.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::{ChannelKind, GraphBuilder};

    fn two_stage_cluster() -> Cluster {
        // i -> A -> c -> B -> o
        let mut b = GraphBuilder::new("variant1");
        let a = b.process("A").latency(Interval::point(2)).build().unwrap();
        let z = b
            .process("B")
            .latency(Interval::new(1, 3).unwrap())
            .build()
            .unwrap();
        let c = b.channel("c", ChannelKind::Queue).unwrap();
        b.connect_output(a, c, Interval::point(1)).unwrap();
        b.connect_input(c, z, Interval::point(1)).unwrap();
        let graph = b.finish().unwrap();
        let mut cluster = Cluster::new("variant1", graph);
        cluster
            .add_input_port("i", "A", Interval::point(1))
            .unwrap();
        cluster
            .add_output_port("o", "B", Interval::point(1))
            .unwrap();
        cluster
    }

    #[test]
    fn ports_are_bound_to_processes() {
        let cluster = two_stage_cluster();
        assert_eq!(cluster.ports().len(), 2);
        let i = cluster.port("i").unwrap();
        assert_eq!(i.direction(), PortDirection::Input);
        assert_eq!(cluster.graph().process(i.process()).unwrap().name(), "A");
        assert_eq!(cluster.input_signature(), vec!["i"]);
        assert_eq!(cluster.output_signature(), vec!["o"]);
    }

    #[test]
    fn duplicate_port_names_rejected() {
        let mut cluster = two_stage_cluster();
        let err = cluster
            .add_input_port("i", "A", Interval::point(1))
            .unwrap_err();
        assert!(matches!(err, VariantError::DuplicatePort(_)));
    }

    #[test]
    fn unknown_port_process_rejected() {
        let mut cluster = two_stage_cluster();
        let err = cluster
            .add_output_port("o2", "Missing", Interval::point(1))
            .unwrap_err();
        assert!(matches!(err, VariantError::UnknownPortProcess { .. }));
    }

    #[test]
    fn validate_accepts_well_formed_cluster() {
        assert!(two_stage_cluster().validate().is_ok());
    }

    #[test]
    fn latency_estimate_uses_port_to_port_path() {
        let cluster = two_stage_cluster();
        // A (2) + B ([1,3]) = [3, 5]
        assert_eq!(
            cluster.latency_estimate().unwrap(),
            Interval::new(3, 5).unwrap()
        );
    }

    #[test]
    fn latency_estimate_falls_back_to_sum_without_ports() {
        let mut b = GraphBuilder::new("portless");
        b.process("solo")
            .latency(Interval::point(4))
            .build()
            .unwrap();
        let cluster = Cluster::new("portless", b.finish().unwrap());
        assert_eq!(cluster.latency_estimate().unwrap(), Interval::point(4));
    }

    #[test]
    fn tagged_output_port_carries_tags() {
        let mut cluster = two_stage_cluster();
        cluster
            .add_tagged_output_port(
                "confirm",
                "B",
                Interval::point(1),
                TagSet::singleton("done"),
            )
            .unwrap();
        let port = cluster.port("confirm").unwrap();
        assert_eq!(port.tags().len(), 1);
        assert_eq!(port.rate(), Interval::point(1));
    }
}
