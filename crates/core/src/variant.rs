//! Variant selection types.
//!
//! Function variant selection can occur at different stages of a product's life time
//! (Section 1 and 4 of the paper). The representation is identical for all three types;
//! the type determines which transformations make sense (flattening for production
//! variants, selection-once semantics for run-time variants, abstraction to a process
//! with configurations for dynamic variants) and how synthesis may exploit mutual
//! exclusion.

use serde::{Deserialize, Serialize};
use std::fmt;

/// When and by whom a function variant is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariantType {
    /// Selected by the designer at production time (e.g. by downloading one software
    /// variant into an EPROM). The final product contains a single variant and no
    /// selection capability; the selection is not part of the system function.
    Production,
    /// Selected once at system start-up (boot switches, flash-stored parameters). The
    /// selection mechanism is part of the system, but the variant remains fixed during
    /// operation.
    RunTime,
    /// Selected during operation by a higher-level controller (dynamically
    /// reconfigurable architectures, programmable coprocessors). What appears as a
    /// variant at the subsystem level is a mode at the controller level; switching
    /// incurs a reconfiguration latency.
    Dynamic,
}

impl VariantType {
    /// Returns `true` if the variant can change while the system is running.
    pub fn is_dynamic(self) -> bool {
        matches!(self, VariantType::Dynamic)
    }

    /// Returns `true` if the selection mechanism must be part of the implemented system
    /// (run-time and dynamic variants) as opposed to a pure design-time decision.
    pub fn needs_selection_mechanism(self) -> bool {
        !matches!(self, VariantType::Production)
    }

    /// All variant types, useful for exhaustive sweeps in experiments.
    pub const ALL: [VariantType; 3] = [
        VariantType::Production,
        VariantType::RunTime,
        VariantType::Dynamic,
    ];
}

impl fmt::Display for VariantType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantType::Production => write!(f, "production"),
            VariantType::RunTime => write!(f, "run-time"),
            VariantType::Dynamic => write!(f, "dynamic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_dynamic_changes_at_run_time() {
        assert!(!VariantType::Production.is_dynamic());
        assert!(!VariantType::RunTime.is_dynamic());
        assert!(VariantType::Dynamic.is_dynamic());
    }

    #[test]
    fn production_needs_no_mechanism() {
        assert!(!VariantType::Production.needs_selection_mechanism());
        assert!(VariantType::RunTime.needs_selection_mechanism());
        assert!(VariantType::Dynamic.needs_selection_mechanism());
    }

    #[test]
    fn all_lists_every_type_once() {
        assert_eq!(VariantType::ALL.len(), 3);
        let display: Vec<String> = VariantType::ALL.iter().map(|v| v.to_string()).collect();
        assert_eq!(display, vec!["production", "run-time", "dynamic"]);
    }
}
