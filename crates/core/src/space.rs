//! The variant space of a system: every combination of cluster choices.
//!
//! The variant selections of the different interfaces of a system may be related or
//! independent (Section 1 of the paper). [`VariantSpace`] enumerates the independent
//! cross product; related selections can be expressed by filtering the enumeration.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A complete choice: one cluster name per interface name.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VariantChoice {
    selections: BTreeMap<String, String>,
}

impl VariantChoice {
    /// Creates an empty choice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects `cluster` for `interface`, returning `self` for chaining.
    pub fn with(mut self, interface: impl Into<String>, cluster: impl Into<String>) -> Self {
        self.selections.insert(interface.into(), cluster.into());
        self
    }

    /// Selects `cluster` for `interface`.
    pub fn select(&mut self, interface: impl Into<String>, cluster: impl Into<String>) {
        self.selections.insert(interface.into(), cluster.into());
    }

    /// The cluster chosen for `interface`, if any.
    pub fn cluster_for(&self, interface: &str) -> Option<&str> {
        self.selections.get(interface).map(String::as_str)
    }

    /// Iterates over `(interface, cluster)` pairs in interface-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.selections
            .iter()
            .map(|(i, c)| (i.as_str(), c.as_str()))
    }

    /// Number of interfaces covered by this choice.
    pub fn len(&self) -> usize {
        self.selections.len()
    }

    /// Returns `true` if the choice covers no interface.
    pub fn is_empty(&self) -> bool {
        self.selections.is_empty()
    }
}

impl fmt::Display for VariantChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (index, (interface, cluster)) in self.selections.iter().enumerate() {
            if index > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{interface} = {cluster}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, String)> for VariantChoice {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        VariantChoice {
            selections: iter.into_iter().collect(),
        }
    }
}

/// The cross product of the cluster choices of every interface of a system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantSpace {
    axes: Vec<(String, Vec<String>)>,
}

impl VariantSpace {
    /// Creates a space from `(interface, clusters)` axes.
    pub fn new(axes: Vec<(String, Vec<String>)>) -> Self {
        VariantSpace { axes }
    }

    /// The `(interface, clusters)` axes in attachment order.
    pub fn axes(&self) -> &[(String, Vec<String>)] {
        &self.axes
    }

    /// Number of variant combinations (product of the per-interface counts; an
    /// interface with no clusters contributes a factor of zero).
    pub fn count(&self) -> usize {
        if self.axes.is_empty() {
            return 0;
        }
        self.axes.iter().map(|(_, clusters)| clusters.len()).product()
    }

    /// Enumerates every combination as a [`VariantChoice`] (lexicographic in axis
    /// order).
    pub fn choices(&self) -> Vec<VariantChoice> {
        let mut result = vec![VariantChoice::new()];
        for (interface, clusters) in &self.axes {
            let mut next = Vec::with_capacity(result.len() * clusters.len());
            for partial in &result {
                for cluster in clusters {
                    let mut extended = partial.clone();
                    extended.select(interface.clone(), cluster.clone());
                    next.push(extended);
                }
            }
            result = next;
        }
        if self.axes.is_empty() {
            Vec::new()
        } else {
            result
        }
    }
}

impl fmt::Display for VariantSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (interface, clusters) in &self.axes {
            writeln!(f, "{interface}: {}", clusters.join(" | "))?;
        }
        write!(f, "total combinations: {}", self.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> VariantSpace {
        VariantSpace::new(vec![
            ("if1".into(), vec!["a".into(), "b".into()]),
            ("if2".into(), vec!["x".into(), "y".into(), "z".into()]),
        ])
    }

    #[test]
    fn count_is_product_of_axis_sizes() {
        assert_eq!(space().count(), 6);
        assert_eq!(VariantSpace::default().count(), 0);
    }

    #[test]
    fn choices_enumerate_the_cross_product() {
        let choices = space().choices();
        assert_eq!(choices.len(), 6);
        assert_eq!(choices[0].cluster_for("if1"), Some("a"));
        assert_eq!(choices[0].cluster_for("if2"), Some("x"));
        assert_eq!(choices[5].cluster_for("if1"), Some("b"));
        assert_eq!(choices[5].cluster_for("if2"), Some("z"));
        // All choices are distinct.
        let mut unique = choices.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn empty_space_has_no_choices() {
        assert!(VariantSpace::default().choices().is_empty());
    }

    #[test]
    fn axis_with_no_clusters_collapses_the_space() {
        let space = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into()]),
            ("broken".into(), vec![]),
        ]);
        assert_eq!(space.count(), 0);
        assert!(space.choices().is_empty());
    }

    #[test]
    fn choice_accessors() {
        let choice = VariantChoice::new().with("if1", "a").with("if2", "x");
        assert_eq!(choice.len(), 2);
        assert!(!choice.is_empty());
        assert_eq!(choice.cluster_for("if3"), None);
        assert_eq!(choice.to_string(), "{if1 = a, if2 = x}");
        let pairs: Vec<_> = choice.iter().collect();
        assert_eq!(pairs, vec![("if1", "a"), ("if2", "x")]);
    }
}
