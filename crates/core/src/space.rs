//! The variant space of a system: every combination of cluster choices.
//!
//! The variant selections of the different interfaces of a system may be related or
//! independent (Section 1 of the paper). [`VariantSpace`] describes the independent
//! cross product; related selections can be expressed by filtering the enumeration.
//!
//! The cross product is the object that explodes combinatorially (`k` interfaces of
//! `n` variants each span `n^k` combinations), so the space never materializes it:
//! [`VariantSpace::choices_iter`] walks the product lazily as a mixed-radix counter
//! with `O(interfaces)` state, and [`Iterator::nth`] jumps in `O(interfaces)` time,
//! which makes strided sharding (`iter.skip(s).step_by(k)`) cheap. The eager
//! [`VariantSpace::choices`] survives as a thin `collect()` wrapper for the paper-scale
//! fidelity tests.
//!
//! Interface and cluster names are interned [`Sym`] symbols, so a [`VariantChoice`] is
//! a compact vector of `u32` pairs rather than a string map.

use serde::{Deserialize, Serialize};
use std::fmt;

use spi_model::json::{FromJson, JsonError, JsonResult, JsonValue, ToJson};
use spi_model::Sym;

/// A complete choice: one cluster per interface.
///
/// Stored as interned symbol pairs sorted by interface *name* (matching the
/// historical `BTreeMap<String, String>` iteration order), so equality and
/// lookups never touch string contents beyond the one-time interning.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantChoice {
    /// `(interface, cluster)` symbol pairs, sorted by interface name.
    selections: Vec<(Sym, Sym)>,
}

impl VariantChoice {
    /// Creates an empty choice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects `cluster` for `interface`, returning `self` for chaining.
    pub fn with(mut self, interface: impl AsRef<str>, cluster: impl AsRef<str>) -> Self {
        self.select(interface, cluster);
        self
    }

    /// Selects `cluster` for `interface`.
    pub fn select(&mut self, interface: impl AsRef<str>, cluster: impl AsRef<str>) {
        self.select_syms(
            Sym::intern(interface.as_ref()),
            Sym::intern(cluster.as_ref()),
        );
    }

    /// Selects `cluster` for `interface`, both already interned.
    pub fn select_syms(&mut self, interface: Sym, cluster: Sym) {
        match self.position(interface.as_str()) {
            Ok(index) => self.selections[index].1 = cluster,
            Err(index) => self.selections.insert(index, (interface, cluster)),
        }
    }

    /// Binary-searches the insertion point of `interface` by name.
    fn position(&self, interface: &str) -> Result<usize, usize> {
        self.selections
            .binary_search_by(|(existing, _)| existing.as_str().cmp(interface))
    }

    /// Wraps a selection vector that is already sorted by interface name with no
    /// duplicates — the decode fast path of [`VariantSpace::choice_at`].
    pub(crate) fn from_sorted_pairs(selections: Vec<(Sym, Sym)>) -> Self {
        debug_assert!(
            selections
                .windows(2)
                .all(|w| w[0].0.as_str() < w[1].0.as_str()),
            "selection vector must be strictly sorted by interface name"
        );
        VariantChoice { selections }
    }

    /// The cluster chosen for `interface`, if any.
    pub fn cluster_for(&self, interface: &str) -> Option<&'static str> {
        self.position(interface)
            .ok()
            .map(|index| self.selections[index].1.as_str())
    }

    /// The cluster symbol chosen for `interface`, if any (no string comparison when
    /// the interface symbol is already at hand — used by the flattening hot path).
    pub fn cluster_sym_for(&self, interface: Sym) -> Option<Sym> {
        self.selections
            .iter()
            .find(|(existing, _)| *existing == interface)
            .map(|(_, cluster)| *cluster)
    }

    /// Iterates over `(interface, cluster)` pairs in interface-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.selections
            .iter()
            .map(|(interface, cluster)| (interface.as_str(), cluster.as_str()))
    }

    /// Iterates over `(interface, cluster)` symbol pairs in interface-name order.
    pub fn iter_syms(&self) -> impl Iterator<Item = (Sym, Sym)> + '_ {
        self.selections.iter().copied()
    }

    /// Number of interfaces covered by this choice.
    pub fn len(&self) -> usize {
        self.selections.len()
    }

    /// Returns `true` if the choice covers no interface.
    pub fn is_empty(&self) -> bool {
        self.selections.is_empty()
    }
}

impl PartialOrd for VariantChoice {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VariantChoice {
    /// Lexicographic over the `(interface, cluster)` *name* pairs, matching the
    /// ordering of the historical `BTreeMap<String, String>` representation.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter().cmp(other.iter())
    }
}

impl fmt::Display for VariantChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (index, (interface, cluster)) in self.iter().enumerate() {
            if index > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{interface} = {cluster}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, String)> for VariantChoice {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        let mut choice = VariantChoice::new();
        for (interface, cluster) in iter {
            choice.select(&interface, &cluster);
        }
        choice
    }
}

impl FromIterator<(Sym, Sym)> for VariantChoice {
    fn from_iter<I: IntoIterator<Item = (Sym, Sym)>>(iter: I) -> Self {
        let mut choice = VariantChoice::new();
        for (interface, cluster) in iter {
            choice.select_syms(interface, cluster);
        }
        choice
    }
}

/// Wire form: an object of `{"interface": "cluster"}` members in interface-name
/// order. Symbols cross the boundary as strings (see the `Sym` impls in
/// [`spi_model::json`]) — the raw interner indices are process-local.
impl ToJson for VariantChoice {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(interface, cluster)| (interface.to_string(), JsonValue::string(cluster)))
                .collect(),
        )
    }
}

impl FromJson for VariantChoice {
    fn from_json(value: &JsonValue) -> JsonResult<VariantChoice> {
        let members = value
            .as_object()
            .ok_or_else(|| JsonError::new("expected an object for VariantChoice"))?;
        let mut choice = VariantChoice::new();
        for (interface, cluster) in members {
            let cluster = cluster
                .as_str()
                .ok_or_else(|| JsonError::new("expected a cluster name string"))?;
            choice.select(interface, cluster);
        }
        Ok(choice)
    }
}

/// The cross product of the cluster choices of every interface of a system.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantSpace {
    axes: Vec<(Sym, Vec<Sym>)>,
    /// Axis indices in interface-*name* order, shadowed duplicates removed
    /// (derived from `axes` at construction): lets [`choice_at`](Self::choice_at)
    /// emit the sorted selection vector of a [`VariantChoice`] directly, with no
    /// per-element string comparison or insertion sort on the decode hot path.
    sorted_axes: Vec<u32>,
}

impl VariantSpace {
    /// Creates a space from `(interface, clusters)` axes, interning every name.
    pub fn new(axes: Vec<(String, Vec<String>)>) -> Self {
        Self::from_syms(
            axes.into_iter()
                .map(|(interface, clusters)| {
                    (
                        Sym::intern(&interface),
                        clusters.iter().map(|c| Sym::intern(c)).collect(),
                    )
                })
                .collect(),
        )
    }

    /// Creates a space from already-interned `(interface, clusters)` axes.
    pub fn from_syms(axes: Vec<(Sym, Vec<Sym>)>) -> Self {
        let mut order: Vec<u32> = (0..axes.len() as u32).collect();
        order.sort_by(|&a, &b| {
            axes[a as usize]
                .0
                .as_str()
                .cmp(axes[b as usize].0.as_str())
                .then(a.cmp(&b))
        });
        // Duplicate interface names: the historical map-based choice kept the value
        // of the *last* axis inserted, so earlier same-name axes are shadowed.
        let mut sorted_axes: Vec<u32> = Vec::with_capacity(order.len());
        for index in order {
            match sorted_axes.last_mut() {
                Some(last) if axes[*last as usize].0 == axes[index as usize].0 => *last = index,
                _ => sorted_axes.push(index),
            }
        }
        VariantSpace { axes, sorted_axes }
    }

    /// The `(interface, clusters)` axes in attachment order.
    pub fn axes(&self) -> &[(Sym, Vec<Sym>)] {
        &self.axes
    }

    /// Number of variant combinations (product of the per-interface counts; an
    /// interface with no clusters contributes a factor of zero, and a space with no
    /// axes spans no combination).
    ///
    /// Saturates at `usize::MAX` for spaces too large to index.
    pub fn count(&self) -> usize {
        if self.axes.is_empty() {
            return 0;
        }
        self.axes
            .iter()
            .map(|(_, clusters)| clusters.len())
            .try_fold(1usize, |product, len| product.checked_mul(len))
            .unwrap_or(usize::MAX)
    }

    /// Decodes the combination at `index` (lexicographic in axis order, last axis
    /// varying fastest) in `O(interfaces)` time, without enumerating predecessors.
    pub fn choice_at(&self, index: usize) -> Option<VariantChoice> {
        let mut digits = Vec::new();
        if !self.digits_at(index, &mut digits) {
            return None;
        }
        Some(self.choice_from_digits(&digits))
    }

    /// Decodes the mixed-radix digits (one per axis, in axis order, last axis
    /// least significant) of the combination at lexicographic `index` into
    /// `digits`, reusing its allocation. Returns `false` when the index is out
    /// of range.
    pub(crate) fn digits_at(&self, index: usize, digits: &mut Vec<u32>) -> bool {
        if index >= self.count() {
            return false;
        }
        digits.clear();
        digits.resize(self.axes.len(), 0);
        let mut remainder = index;
        for (digit, (_, clusters)) in digits.iter_mut().zip(&self.axes).rev() {
            *digit = (remainder % clusters.len()) as u32;
            remainder /= clusters.len();
        }
        true
    }

    /// Decodes the digits of the `rank`-th combination of the **reflected
    /// mixed-radix Gray order** into `digits` and returns its canonical
    /// lexicographic index. Consecutive ranks differ in exactly one digit.
    ///
    /// Returns `None` when `rank` is out of range or the space is too large to
    /// index (`count()` saturated).
    pub(crate) fn gray_digits_at(&self, rank: usize, digits: &mut Vec<u32>) -> Option<usize> {
        let total = self.count();
        if rank >= total || total == usize::MAX {
            return None;
        }
        digits.clear();
        digits.resize(self.axes.len(), 0);
        // Standard reflected-Gray decode, most-significant axis first: a level
        // whose decoded digit is odd traverses the levels below it in reverse,
        // which the reflection of `remainder` accounts for.
        let mut remainder = rank;
        let mut suffix = total;
        let mut reflect = false;
        let mut index = 0usize;
        for (digit, (_, clusters)) in digits.iter_mut().zip(&self.axes) {
            let radix = clusters.len();
            suffix /= radix;
            if reflect {
                remainder = radix * suffix - 1 - remainder;
            }
            let value = remainder / suffix;
            remainder %= suffix;
            reflect = value % 2 == 1;
            *digit = value as u32;
            index += value * suffix;
        }
        Some(index)
    }

    /// The canonical lexicographic index of the `rank`-th combination of the
    /// Gray-code order walked by [`choices_delta_iter`](Self::choices_delta_iter):
    /// `choice_at(gray_index_at(rank))` is the choice that walk yields at
    /// `rank`. `O(interfaces)`, so Gray-rank-strided shards can map their ranks
    /// to reportable indices without walking.
    pub fn gray_index_at(&self, rank: usize) -> Option<usize> {
        let mut digits = Vec::new();
        self.gray_digits_at(rank, &mut digits)
    }

    /// Emits the choice for a decoded digit vector in the precomputed name
    /// order — no sorting per choice.
    pub(crate) fn choice_from_digits(&self, digits: &[u32]) -> VariantChoice {
        VariantChoice::from_sorted_pairs(
            self.sorted_axes
                .iter()
                .map(|&axis| {
                    let (interface, clusters) = &self.axes[axis as usize];
                    (*interface, clusters[digits[axis as usize] as usize])
                })
                .collect(),
        )
    }

    /// Lazily enumerates every combination as a [`VariantChoice`], in the same
    /// lexicographic order as the historical eager [`choices`](Self::choices).
    ///
    /// The iterator keeps `O(interfaces)` state — enumerating a `2^20`-combination
    /// space allocates per yielded choice, never for the whole product — and
    /// implements [`ExactSizeIterator`], [`DoubleEndedIterator`] and an
    /// `O(interfaces)` [`Iterator::nth`], so strided shards
    /// (`choices_iter().skip(s).step_by(k)`) skip without decoding intermediate
    /// combinations.
    ///
    /// ```rust
    /// use spi_variants::VariantSpace;
    ///
    /// let space = VariantSpace::new(vec![
    ///     ("if1".into(), vec!["a".into(), "b".into()]),
    ///     ("if2".into(), vec!["x".into(), "y".into(), "z".into()]),
    /// ]);
    /// assert_eq!(space.choices_iter().len(), 6);
    /// let third = space.choices_iter().nth(2).unwrap();
    /// assert_eq!(third.cluster_for("if2"), Some("z"));
    /// // Shard 1 of 2, strided: indices 1, 3, 5.
    /// assert_eq!(space.choices_iter().skip(1).step_by(2).count(), 3);
    /// ```
    pub fn choices_iter(&self) -> ChoicesIter<'_> {
        ChoicesIter {
            space: self,
            next: 0,
            end: self.count(),
        }
    }

    /// Eagerly enumerates every combination (lexicographic in axis order).
    ///
    /// Deprecated in spirit: this materializes the full cross product and is kept as
    /// a thin `collect()` of [`choices_iter`](Self::choices_iter) for the
    /// paper-fidelity tests and small spaces. New code should iterate lazily.
    pub fn choices(&self) -> Vec<VariantChoice> {
        self.choices_iter().collect()
    }

    /// Lazily enumerates every combination in **reflected mixed-radix Gray
    /// order**: consecutive yields change the cluster of exactly one axis. Each
    /// yield is `(index, changed_axis, choice)`, where `index` is the
    /// combination's canonical lexicographic position (what
    /// [`choice_at`](Self::choice_at) and the exploration shards report) and
    /// `changed_axis` is `Some(a)` — an index into [`axes`](Self::axes) — when
    /// the yield differs from the *previously yielded* combination in exactly
    /// that one axis (`None` on the first yield and after a multi-axis
    /// [`Iterator::nth`] jump).
    ///
    /// The walk visits every combination exactly once, `nth` jumps in
    /// `O(interfaces)` time, and shard-striding over **Gray ranks**
    /// (`choices_delta_iter().skip(s).step_by(k)`) partitions the space exactly
    /// like striding [`choices_iter`](Self::choices_iter) over lexicographic
    /// indices does — this is the enumeration behind the delta-flattening path.
    ///
    /// ```rust
    /// use spi_variants::VariantSpace;
    ///
    /// let space = VariantSpace::new(vec![
    ///     ("if1".into(), vec!["a".into(), "b".into()]),
    ///     ("if2".into(), vec!["x".into(), "y".into(), "z".into()]),
    /// ]);
    /// let walk: Vec<_> = space.choices_delta_iter().collect();
    /// assert_eq!(walk.len(), 6);
    /// // Every step past the first changes exactly one axis.
    /// assert!(walk[1..].iter().all(|(_, changed, _)| changed.is_some()));
    /// // The canonical indices cover the space exactly once.
    /// let mut indices: Vec<usize> = walk.iter().map(|(i, _, _)| *i).collect();
    /// indices.sort_unstable();
    /// assert_eq!(indices, (0..6).collect::<Vec<_>>());
    /// ```
    pub fn choices_delta_iter(&self) -> DeltaChoicesIter<'_> {
        let total = self.count();
        DeltaChoicesIter {
            space: self,
            next_rank: 0,
            // A saturated count cannot be Gray-decoded (the suffix products
            // are unrepresentable); such spaces yield nothing, like an empty one.
            end: if total == usize::MAX { 0 } else { total },
            digits: Vec::new(),
            previous: Vec::new(),
        }
    }
}

/// Wire form: an array of `{"interface": ..., "clusters": [...]}` axes in
/// attachment order (axis order is semantic — it fixes the mixed-radix
/// numbering of [`VariantSpace::choice_at`] — so a map representation would
/// lose information).
impl ToJson for VariantSpace {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(
            self.axes
                .iter()
                .map(|(interface, clusters)| {
                    JsonValue::object([
                        ("interface", interface.to_json()),
                        ("clusters", clusters.to_json()),
                    ])
                })
                .collect(),
        )
    }
}

/// Rebuilds the space through [`VariantSpace::from_syms`], so the derived
/// `sorted_axes` decode table is recomputed for the receiving process — it
/// indexes by interned symbol order, which does not survive the trip.
impl FromJson for VariantSpace {
    fn from_json(value: &JsonValue) -> JsonResult<VariantSpace> {
        let axes = value
            .as_array()
            .ok_or_else(|| JsonError::new("expected an array for VariantSpace"))?
            .iter()
            .map(|axis| {
                let interface = Sym::from_json(axis.require("interface")?)?;
                let clusters = Vec::<Sym>::from_json(axis.require("clusters")?)?;
                Ok((interface, clusters))
            })
            .collect::<JsonResult<Vec<_>>>()?;
        Ok(VariantSpace::from_syms(axes))
    }
}

impl fmt::Display for VariantSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (interface, clusters) in &self.axes {
            let names: Vec<&str> = clusters.iter().map(|c| c.as_str()).collect();
            writeln!(f, "{interface}: {}", names.join(" | "))?;
        }
        write!(f, "total combinations: {}", self.count())
    }
}

/// Lazy mixed-radix enumeration of a [`VariantSpace`]; see
/// [`VariantSpace::choices_iter`].
#[derive(Debug, Clone)]
pub struct ChoicesIter<'a> {
    space: &'a VariantSpace,
    /// Index of the next combination to yield.
    next: usize,
    /// One past the last combination to yield.
    end: usize,
}

impl Iterator for ChoicesIter<'_> {
    type Item = VariantChoice;

    fn next(&mut self) -> Option<VariantChoice> {
        if self.next >= self.end {
            return None;
        }
        let choice = self.space.choice_at(self.next);
        self.next += 1;
        choice
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.end - self.next;
        (remaining, Some(remaining))
    }

    fn nth(&mut self, n: usize) -> Option<VariantChoice> {
        self.next = self.next.saturating_add(n).min(self.end);
        self.next()
    }

    fn count(self) -> usize {
        self.end - self.next
    }

    fn last(mut self) -> Option<VariantChoice> {
        self.next_back()
    }
}

impl DoubleEndedIterator for ChoicesIter<'_> {
    fn next_back(&mut self) -> Option<VariantChoice> {
        if self.next >= self.end {
            return None;
        }
        self.end -= 1;
        self.space.choice_at(self.end)
    }
}

impl ExactSizeIterator for ChoicesIter<'_> {}

impl std::iter::FusedIterator for ChoicesIter<'_> {}

/// Lazy Gray-order enumeration of a [`VariantSpace`]; see
/// [`VariantSpace::choices_delta_iter`].
#[derive(Debug, Clone)]
pub struct DeltaChoicesIter<'a> {
    space: &'a VariantSpace,
    /// Gray rank of the next combination to yield.
    next_rank: usize,
    /// One past the last Gray rank to yield.
    end: usize,
    /// Scratch digit buffer, reused across yields.
    digits: Vec<u32>,
    /// Digits of the previously yielded combination (empty before the first
    /// yield), for the `changed_axis` diff.
    previous: Vec<u32>,
}

impl Iterator for DeltaChoicesIter<'_> {
    type Item = (usize, Option<usize>, VariantChoice);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_rank >= self.end {
            return None;
        }
        let index = self
            .space
            .gray_digits_at(self.next_rank, &mut self.digits)
            .expect("rank below count decodes");
        self.next_rank += 1;
        let changed_axis = if self.previous.len() == self.digits.len() {
            let mut differing = self
                .previous
                .iter()
                .zip(&self.digits)
                .enumerate()
                .filter(|(_, (before, after))| before != after)
                .map(|(axis, _)| axis);
            match (differing.next(), differing.next()) {
                (Some(axis), None) => Some(axis),
                _ => None,
            }
        } else {
            None
        };
        self.previous.clone_from(&self.digits);
        Some((
            index,
            changed_axis,
            self.space.choice_from_digits(&self.digits),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.end - self.next_rank;
        (remaining, Some(remaining))
    }

    /// Jumps in `O(interfaces)` (one Gray decode at the target rank); the
    /// subsequent yield diffs against the last *yielded* combination, so its
    /// `changed_axis` is `None` unless the jump happened to change one axis.
    fn nth(&mut self, n: usize) -> Option<Self::Item> {
        self.next_rank = self.next_rank.saturating_add(n).min(self.end);
        self.next()
    }

    fn count(self) -> usize {
        self.end - self.next_rank
    }
}

impl ExactSizeIterator for DeltaChoicesIter<'_> {}

impl std::iter::FusedIterator for DeltaChoicesIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> VariantSpace {
        VariantSpace::new(vec![
            ("if1".into(), vec!["a".into(), "b".into()]),
            ("if2".into(), vec!["x".into(), "y".into(), "z".into()]),
        ])
    }

    #[test]
    fn count_is_product_of_axis_sizes() {
        assert_eq!(space().count(), 6);
        assert_eq!(VariantSpace::default().count(), 0);
    }

    #[test]
    fn choices_enumerate_the_cross_product() {
        let choices = space().choices();
        assert_eq!(choices.len(), 6);
        assert_eq!(choices[0].cluster_for("if1"), Some("a"));
        assert_eq!(choices[0].cluster_for("if2"), Some("x"));
        assert_eq!(choices[5].cluster_for("if1"), Some("b"));
        assert_eq!(choices[5].cluster_for("if2"), Some("z"));
        // All choices are distinct.
        let mut unique = choices.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn lazy_iterator_agrees_with_eager_enumeration() {
        let space = space();
        let eager = space.choices();
        let lazy: Vec<VariantChoice> = space.choices_iter().collect();
        assert_eq!(eager, lazy);
        assert_eq!(space.choices_iter().len(), eager.len());
    }

    #[test]
    fn nth_jumps_without_walking() {
        let space = space();
        let eager = space.choices();
        for start in 0..6 {
            let mut iter = space.choices_iter();
            assert_eq!(iter.nth(start).as_ref(), Some(&eager[start]));
            // The iterator continues right after the jump target.
            if start + 1 < 6 {
                assert_eq!(iter.next().as_ref(), Some(&eager[start + 1]));
            } else {
                assert_eq!(iter.next(), None);
            }
        }
        assert_eq!(space.choices_iter().nth(6), None);
    }

    #[test]
    fn strided_shards_partition_the_space() {
        let space = space();
        let eager = space.choices();
        let shards = 4usize;
        let mut recombined: Vec<VariantChoice> = Vec::new();
        for shard in 0..shards {
            recombined.extend(space.choices_iter().skip(shard).step_by(shards));
        }
        recombined.sort();
        let mut expected = eager.clone();
        expected.sort();
        assert_eq!(recombined, expected);
    }

    #[test]
    fn double_ended_enumeration_reverses() {
        let space = space();
        let mut forward = space.choices();
        forward.reverse();
        let backward: Vec<VariantChoice> = space.choices_iter().rev().collect();
        assert_eq!(forward, backward);
        assert_eq!(space.choices_iter().last(), forward.first().cloned());
    }

    #[test]
    fn empty_space_has_no_choices() {
        assert!(VariantSpace::default().choices().is_empty());
        assert_eq!(VariantSpace::default().choices_iter().count(), 0);
    }

    #[test]
    fn axis_with_no_clusters_collapses_the_space() {
        let space = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into()]),
            ("broken".into(), vec![]),
        ]);
        assert_eq!(space.count(), 0);
        assert!(space.choices().is_empty());
        assert_eq!(space.choices_iter().count(), 0);
        assert_eq!(space.choice_at(0), None);
    }

    #[test]
    fn large_space_is_enumerable_without_materialization() {
        // 2^20 combinations: the eager path would allocate a million choices; the lazy
        // path touches exactly the ones asked for.
        let axes: Vec<(String, Vec<String>)> = (0..20)
            .map(|i| (format!("wide_if{i}"), vec!["a".into(), "b".into()]))
            .collect();
        let space = VariantSpace::new(axes);
        assert_eq!(space.count(), 1 << 20);
        assert_eq!(space.choices_iter().len(), 1 << 20);
        let last = space.choices_iter().nth((1 << 20) - 1).unwrap();
        assert!(last.iter().all(|(_, cluster)| cluster == "b"));
        let first = space.choices_iter().next().unwrap();
        assert!(first.iter().all(|(_, cluster)| cluster == "a"));
    }

    /// Digits of `choice` in axis order, read back through the axis cluster lists.
    fn digits_of(space: &VariantSpace, choice: &VariantChoice) -> Vec<usize> {
        space
            .axes()
            .iter()
            .map(|(interface, clusters)| {
                let chosen = choice.cluster_sym_for(*interface).unwrap();
                clusters.iter().position(|c| *c == chosen).unwrap()
            })
            .collect()
    }

    #[test]
    fn gray_walk_changes_exactly_one_axis_per_step() {
        let space = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into(), "b".into()]),
            ("if2".into(), vec!["x".into(), "y".into(), "z".into()]),
            ("if3".into(), vec!["p".into(), "q".into()]),
        ]);
        let walk: Vec<_> = space.choices_delta_iter().collect();
        assert_eq!(walk.len(), space.count());
        assert_eq!(walk[0].1, None);
        for (rank, window) in walk.windows(2).enumerate() {
            let before = digits_of(&space, &window[0].2);
            let after = digits_of(&space, &window[1].2);
            let differing: Vec<usize> = (0..before.len())
                .filter(|&axis| before[axis] != after[axis])
                .collect();
            assert_eq!(
                differing.len(),
                1,
                "step {rank} -> {} must change exactly one axis",
                rank + 1
            );
            assert_eq!(window[1].1, Some(differing[0]));
        }
    }

    #[test]
    fn gray_walk_is_a_permutation_of_the_lexicographic_order() {
        let space = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into(), "b".into(), "c".into()]),
            ("if2".into(), vec!["x".into(), "y".into()]),
            ("if3".into(), vec!["p".into(), "q".into(), "r".into()]),
        ]);
        let walk: Vec<_> = space.choices_delta_iter().collect();
        let mut indices: Vec<usize> = walk.iter().map(|(index, _, _)| *index).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..space.count()).collect::<Vec<_>>());
        // The reported index really is the choice's lexicographic position.
        for (index, _, choice) in &walk {
            assert_eq!(space.choice_at(*index).as_ref(), Some(choice));
        }
    }

    #[test]
    fn gray_index_at_matches_the_walk() {
        let space = space();
        for (rank, (index, _, _)) in space.choices_delta_iter().enumerate() {
            assert_eq!(space.gray_index_at(rank), Some(index));
        }
        assert_eq!(space.gray_index_at(space.count()), None);
        assert_eq!(VariantSpace::default().gray_index_at(0), None);
    }

    #[test]
    fn gray_nth_jumps_and_resumes_the_walk() {
        let space = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into(), "b".into()]),
            ("if2".into(), vec!["x".into(), "y".into(), "z".into()]),
        ]);
        let walk: Vec<_> = space.choices_delta_iter().collect();
        for start in 0..walk.len() {
            let mut iter = space.choices_delta_iter();
            let jumped = iter.nth(start).unwrap();
            assert_eq!((jumped.0, &jumped.2), (walk[start].0, &walk[start].2));
            // Right after a jump the iterator resumes single-axis stepping.
            if start + 1 < walk.len() {
                let next = iter.next().unwrap();
                assert_eq!(next, walk[start + 1]);
                assert!(next.1.is_some());
            } else {
                assert_eq!(iter.next(), None);
            }
        }
        assert_eq!(space.choices_delta_iter().nth(walk.len()), None);
    }

    #[test]
    fn gray_rank_strided_shards_partition_the_space() {
        let space = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into(), "b".into(), "c".into()]),
            ("if2".into(), vec!["x".into(), "y".into()]),
        ]);
        let shards = 4usize;
        let mut indices: Vec<usize> = Vec::new();
        for shard in 0..shards {
            indices.extend(
                space
                    .choices_delta_iter()
                    .skip(shard)
                    .step_by(shards)
                    .map(|(index, _, _)| index),
            );
        }
        indices.sort_unstable();
        assert_eq!(indices, (0..space.count()).collect::<Vec<_>>());
    }

    #[test]
    fn gray_walk_of_degenerate_spaces_is_empty() {
        assert_eq!(VariantSpace::default().choices_delta_iter().count(), 0);
        let collapsed = VariantSpace::new(vec![
            ("if1".into(), vec!["a".into()]),
            ("broken".into(), vec![]),
        ]);
        assert_eq!(collapsed.choices_delta_iter().count(), 0);
    }

    #[test]
    fn gray_walk_with_shadowed_duplicate_axes_reports_axis_order_changes() {
        // The shadowed first axis still counts in the mixed radix (its digit
        // changes are real steps), but only the last same-name axis shows in
        // the emitted choice — matching `choice_at` exactly.
        let space = VariantSpace::new(vec![
            ("dup".into(), vec!["old1".into(), "old2".into()]),
            ("dup".into(), vec!["new1".into(), "new2".into()]),
        ]);
        let walk: Vec<_> = space.choices_delta_iter().collect();
        assert_eq!(walk.len(), 4);
        for (index, _, choice) in &walk {
            assert_eq!(space.choice_at(*index).as_ref(), Some(choice));
        }
        // A step on the shadowed axis changes no visible selection.
        let shadowed_steps: Vec<_> = walk
            .iter()
            .filter(|(_, changed, _)| *changed == Some(0))
            .collect();
        assert!(!shadowed_steps.is_empty());
    }

    #[test]
    fn choice_accessors() {
        let choice = VariantChoice::new().with("if1", "a").with("if2", "x");
        assert_eq!(choice.len(), 2);
        assert!(!choice.is_empty());
        assert_eq!(choice.cluster_for("if3"), None);
        assert_eq!(choice.to_string(), "{if1 = a, if2 = x}");
        let pairs: Vec<_> = choice.iter().collect();
        assert_eq!(pairs, vec![("if1", "a"), ("if2", "x")]);
    }

    #[test]
    fn select_replaces_existing_interface_entry() {
        let mut choice = VariantChoice::new().with("if1", "a");
        choice.select("if1", "b");
        assert_eq!(choice.len(), 1);
        assert_eq!(choice.cluster_for("if1"), Some("b"));
    }

    #[test]
    fn choice_round_trips_through_json() {
        let choice = VariantChoice::new().with("if1", "a").with("if2", "x");
        let line = choice.to_json().to_line();
        assert_eq!(line, r#"{"if1":"a","if2":"x"}"#);
        let back = VariantChoice::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(back, choice);
        assert!(VariantChoice::from_json(&JsonValue::Int(1)).is_err());
        assert!(VariantChoice::from_json(&JsonValue::parse(r#"{"if1":3}"#).unwrap()).is_err());
    }

    #[test]
    fn space_round_trips_and_rebuilds_the_decode_table() {
        // Axis names deliberately *not* in insertion order, so `sorted_axes`
        // differs from the identity permutation and a missing rebuild on
        // deserialize would decode combinations in the wrong name order.
        let space = VariantSpace::new(vec![
            ("zeta".into(), vec!["z1".into(), "z2".into()]),
            ("alpha".into(), vec!["a1".into(), "a2".into(), "a3".into()]),
        ]);
        let line = space.to_json().to_line();
        let back = VariantSpace::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(back, space);
        assert_eq!(back.count(), space.count());
        for index in 0..space.count() {
            assert_eq!(back.choice_at(index), space.choice_at(index));
        }
        // Second hop is byte-stable (the representation is canonical).
        assert_eq!(back.to_json().to_line(), line);
        assert!(VariantSpace::from_json(&JsonValue::Int(0)).is_err());
    }

    #[test]
    fn space_with_shadowed_duplicate_axes_round_trips() {
        let space = VariantSpace::new(vec![
            ("dup".into(), vec!["old".into()]),
            ("dup".into(), vec!["new1".into(), "new2".into()]),
        ]);
        let back = VariantSpace::from_json(&JsonValue::parse(&space.to_json().to_line()).unwrap())
            .unwrap();
        assert_eq!(back, space);
        for index in 0..space.count() {
            assert_eq!(back.choice_at(index), space.choice_at(index));
        }
    }

    #[test]
    fn sym_accessors_match_string_accessors() {
        let choice = VariantChoice::new().with("if1", "a").with("if2", "x");
        let if1 = Sym::intern("if1");
        assert_eq!(choice.cluster_sym_for(if1).unwrap().as_str(), "a");
        assert_eq!(choice.cluster_sym_for(Sym::intern("ghost")), None);
        let pairs: Vec<(Sym, Sym)> = choice.iter_syms().collect();
        let rebuilt: VariantChoice = pairs.into_iter().collect();
        assert_eq!(rebuilt, choice);
    }
}
