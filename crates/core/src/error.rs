//! Error type of the variants layer.

use std::fmt;

use spi_model::{ModelError, ProcessId};

/// Error raised while building, validating or transforming a variant representation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VariantError {
    /// An error bubbled up from the underlying SPI model layer.
    Model(ModelError),
    /// A cluster port refers to a process that does not exist inside the cluster.
    UnknownPortProcess {
        /// Cluster name.
        cluster: String,
        /// Name of the missing process.
        process: String,
    },
    /// A port name is used twice on the same cluster or interface.
    DuplicatePort(String),
    /// A cluster with the same name is already associated with the interface.
    DuplicateCluster(String),
    /// A cluster does not match the port signature of the interface it is added to.
    SignatureMismatch {
        /// Interface name.
        interface: String,
        /// Offending cluster name.
        cluster: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A referenced interface attachment does not exist.
    UnknownAttachment(usize),
    /// A referenced interface, cluster, port or channel name could not be resolved.
    UnknownName(String),
    /// An interface port is not bound to a channel of the common graph.
    UnboundPort {
        /// Interface name.
        interface: String,
        /// Port name.
        port: String,
    },
    /// A variant choice does not select a cluster for every interface.
    IncompleteChoice(String),
    /// A configuration set does not partition the process's modes.
    InvalidConfigurationSet {
        /// Process the configuration set is attached to.
        process: ProcessId,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A selection rule references a cluster that the interface does not provide.
    UnknownClusterInRule {
        /// Rule name.
        rule: String,
        /// Cluster name the rule maps to.
        cluster: String,
    },
    /// Generic validation failure with a human-readable explanation.
    Validation(String),
}

impl fmt::Display for VariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantError::Model(e) => write!(f, "model error: {e}"),
            VariantError::UnknownPortProcess { cluster, process } => write!(
                f,
                "cluster `{cluster}` binds a port to unknown process `{process}`"
            ),
            VariantError::DuplicatePort(name) => write!(f, "duplicate port name `{name}`"),
            VariantError::DuplicateCluster(name) => {
                write!(f, "duplicate cluster name `{name}`")
            }
            VariantError::SignatureMismatch {
                interface,
                cluster,
                detail,
            } => write!(
                f,
                "cluster `{cluster}` does not match interface `{interface}`: {detail}"
            ),
            VariantError::UnknownAttachment(idx) => {
                write!(f, "unknown interface attachment #{idx}")
            }
            VariantError::UnknownName(name) => write!(f, "unknown name `{name}`"),
            VariantError::UnboundPort { interface, port } => write!(
                f,
                "port `{port}` of interface `{interface}` is not bound to a channel"
            ),
            VariantError::IncompleteChoice(interface) => write!(
                f,
                "variant choice does not select a cluster for interface `{interface}`"
            ),
            VariantError::InvalidConfigurationSet { process, detail } => {
                write!(
                    f,
                    "invalid configuration set on process {process}: {detail}"
                )
            }
            VariantError::UnknownClusterInRule { rule, cluster } => write!(
                f,
                "selection rule `{rule}` maps to unknown cluster `{cluster}`"
            ),
            VariantError::Validation(msg) => write!(f, "validation failed: {msg}"),
        }
    }
}

impl std::error::Error for VariantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VariantError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for VariantError {
    fn from(e: ModelError) -> Self {
        VariantError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_error_converts_and_exposes_source() {
        let err: VariantError = ModelError::CyclicGraph.into();
        assert!(matches!(err, VariantError::Model(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn display_messages_are_specific() {
        let err = VariantError::SignatureMismatch {
            interface: "if1".into(),
            cluster: "c2".into(),
            detail: "missing output port `o`".into(),
        };
        let text = err.to_string();
        assert!(text.contains("if1") && text.contains("c2") && text.contains("`o`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VariantError>();
    }
}
