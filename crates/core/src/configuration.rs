//! Configurations (Definition 4 of the paper).
//!
//! When an interface with its clusters is abstracted into a single SPI process, the
//! process's modes are partitioned into **configurations** — one configuration per
//! function variant — because all modes within one configuration were extracted from the
//! same cluster. Two consecutive executions whose modes belong to different
//! configurations require a **reconfiguration step** whose latency is added to the
//! execution latency; the `conf_cur` parameter records the current configuration.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use spi_model::{ModeId, Process, ProcessId, TimeValue};

use crate::error::VariantError;
use crate::Result;

/// One configuration: the set of modes extracted from one cluster, plus the latency of
/// (re)configuring the process with this configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Configuration {
    name: String,
    modes: BTreeSet<ModeId>,
    reconfiguration_latency: TimeValue,
}

impl Configuration {
    /// Creates a configuration from the modes extracted from one cluster.
    pub fn new(
        name: impl Into<String>,
        modes: impl IntoIterator<Item = ModeId>,
        reconfiguration_latency: TimeValue,
    ) -> Self {
        Configuration {
            name: name.into(),
            modes: modes.into_iter().collect(),
            reconfiguration_latency,
        }
    }

    /// Configuration name (usually the originating cluster's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modes belonging to this configuration.
    pub fn modes(&self) -> impl Iterator<Item = ModeId> + '_ {
        self.modes.iter().copied()
    }

    /// Returns `true` if `mode` belongs to this configuration.
    pub fn contains(&self, mode: ModeId) -> bool {
        self.modes.contains(&mode)
    }

    /// Number of modes in the configuration.
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }

    /// The latency `t_conf` of configuring the process with this configuration.
    pub fn reconfiguration_latency(&self) -> TimeValue {
        self.reconfiguration_latency
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conf `{}` ({} modes, t_conf = {})",
            self.name,
            self.modes.len(),
            self.reconfiguration_latency
        )
    }
}

/// The configuration set `CONF` of a process (Definition 4), plus the `conf_cur`
/// parameter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigurationSet {
    configurations: Vec<Configuration>,
    current: Option<usize>,
}

impl ConfigurationSet {
    /// Creates an empty configuration set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a configuration and returns `self` for chaining.
    pub fn with_configuration(mut self, configuration: Configuration) -> Self {
        self.configurations.push(configuration);
        self
    }

    /// Adds a configuration.
    pub fn push(&mut self, configuration: Configuration) {
        self.configurations.push(configuration);
    }

    /// The configurations in insertion order.
    pub fn configurations(&self) -> &[Configuration] {
        &self.configurations
    }

    /// Number of configurations (= number of function variants of the process).
    pub fn len(&self) -> usize {
        self.configurations.len()
    }

    /// Returns `true` if no configurations are defined.
    pub fn is_empty(&self) -> bool {
        self.configurations.is_empty()
    }

    /// Looks up a configuration by name.
    pub fn configuration(&self, name: &str) -> Option<&Configuration> {
        self.configurations.iter().find(|c| c.name() == name)
    }

    /// Index of the configuration containing `mode`, if any.
    pub fn configuration_of_mode(&self, mode: ModeId) -> Option<usize> {
        self.configurations.iter().position(|c| c.contains(mode))
    }

    /// The `conf_cur` parameter: index of the current configuration.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The current configuration, if any.
    pub fn current_configuration(&self) -> Option<&Configuration> {
        self.current.and_then(|i| self.configurations.get(i))
    }

    /// Updates `conf_cur`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds; use indices obtained from this set.
    pub fn set_current(&mut self, index: usize) {
        assert!(
            index < self.configurations.len(),
            "configuration index {index} out of bounds"
        );
        self.current = Some(index);
    }

    /// Clears `conf_cur` (e.g. after the process was torn down).
    pub fn clear_current(&mut self) {
        self.current = None;
    }

    /// Determines whether executing `next` after `previous` requires a reconfiguration
    /// step, and if so returns `(from, to, latency)` where `latency` is the
    /// reconfiguration latency of the newly selected configuration.
    ///
    /// A `previous` of `None` models the very first execution: the initial configuration
    /// step is also reported (with `from == None` mapped to the same configuration
    /// index), mirroring the configuration latency of Definition 3.
    pub fn reconfiguration(
        &self,
        previous: Option<ModeId>,
        next: ModeId,
    ) -> Option<(Option<usize>, usize, TimeValue)> {
        let to = self.configuration_of_mode(next)?;
        match previous.and_then(|m| self.configuration_of_mode(m)) {
            Some(from) if from == to => None,
            from => Some((from, to, self.configurations[to].reconfiguration_latency())),
        }
    }

    /// Validates the set against the process it annotates:
    ///
    /// * every referenced mode exists on the process;
    /// * configurations are pairwise disjoint (a mode belongs to exactly one variant).
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::InvalidConfigurationSet`] describing the violation.
    pub fn validate_against(&self, process: &Process) -> Result<()> {
        let mut seen: BTreeMap<ModeId, &str> = BTreeMap::new();
        for configuration in &self.configurations {
            for mode in configuration.modes() {
                if process.mode(mode).is_none() {
                    return Err(VariantError::InvalidConfigurationSet {
                        process: process.id(),
                        detail: format!(
                            "configuration `{}` references unknown mode {mode}",
                            configuration.name()
                        ),
                    });
                }
                if let Some(other) = seen.insert(mode, configuration.name()) {
                    return Err(VariantError::InvalidConfigurationSet {
                        process: process.id(),
                        detail: format!(
                            "mode {mode} belongs to both `{other}` and `{}`",
                            configuration.name()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns `true` if every mode of `process` belongs to some configuration.
    pub fn covers_all_modes(&self, process: &Process) -> bool {
        process
            .modes()
            .iter()
            .all(|m| self.configuration_of_mode(m.id()).is_some())
    }
}

impl fmt::Display for ConfigurationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, configuration) in self.configurations.iter().enumerate() {
            let marker = if self.current == Some(index) {
                " (current)"
            } else {
                ""
            };
            writeln!(f, "{configuration}{marker}")?;
        }
        Ok(())
    }
}

/// Per-process configuration annotations of a system (the side table produced by
/// interface abstraction and consumed by the simulator and the synthesis layer).
pub type ConfigurationMap = BTreeMap<ProcessId, ConfigurationSet>;

#[cfg(test)]
mod tests {
    use super::*;
    use spi_model::{Interval, ProcessId};

    fn process_with_modes(n: u32) -> Process {
        let mut p = Process::new(ProcessId::new(0), "PVar");
        for i in 0..n {
            p.add_mode_with(format!("m{i}"), Interval::point(1), |_| {});
        }
        p
    }

    fn set_two_variants() -> ConfigurationSet {
        ConfigurationSet::new()
            .with_configuration(Configuration::new(
                "conf1",
                [ModeId::new(0), ModeId::new(1)],
                10,
            ))
            .with_configuration(Configuration::new("conf2", [ModeId::new(2)], 25))
    }

    #[test]
    fn configuration_of_mode_partitions() {
        let set = set_two_variants();
        assert_eq!(set.configuration_of_mode(ModeId::new(1)), Some(0));
        assert_eq!(set.configuration_of_mode(ModeId::new(2)), Some(1));
        assert_eq!(set.configuration_of_mode(ModeId::new(9)), None);
    }

    #[test]
    fn reconfiguration_within_same_configuration_is_free() {
        let set = set_two_variants();
        assert_eq!(
            set.reconfiguration(Some(ModeId::new(0)), ModeId::new(1)),
            None
        );
    }

    #[test]
    fn reconfiguration_across_configurations_costs_target_latency() {
        let set = set_two_variants();
        assert_eq!(
            set.reconfiguration(Some(ModeId::new(0)), ModeId::new(2)),
            Some((Some(0), 1, 25))
        );
        assert_eq!(
            set.reconfiguration(Some(ModeId::new(2)), ModeId::new(1)),
            Some((Some(1), 0, 10))
        );
    }

    #[test]
    fn first_execution_reports_initial_configuration() {
        let set = set_two_variants();
        assert_eq!(
            set.reconfiguration(None, ModeId::new(2)),
            Some((None, 1, 25))
        );
    }

    #[test]
    fn validate_accepts_partition() {
        let set = set_two_variants();
        let process = process_with_modes(3);
        assert!(set.validate_against(&process).is_ok());
        assert!(set.covers_all_modes(&process));
        let larger = process_with_modes(4);
        assert!(!set.covers_all_modes(&larger));
    }

    #[test]
    fn validate_rejects_unknown_mode() {
        let set = set_two_variants();
        let process = process_with_modes(2); // mode 2 missing
        let err = set.validate_against(&process).unwrap_err();
        assert!(matches!(err, VariantError::InvalidConfigurationSet { .. }));
    }

    #[test]
    fn validate_rejects_overlapping_configurations() {
        let set = ConfigurationSet::new()
            .with_configuration(Configuration::new("a", [ModeId::new(0)], 1))
            .with_configuration(Configuration::new("b", [ModeId::new(0)], 2));
        let err = set.validate_against(&process_with_modes(1)).unwrap_err();
        assert!(matches!(err, VariantError::InvalidConfigurationSet { .. }));
    }

    #[test]
    fn current_configuration_tracking() {
        let mut set = set_two_variants();
        assert_eq!(set.current(), None);
        set.set_current(1);
        assert_eq!(set.current_configuration().unwrap().name(), "conf2");
        set.clear_current();
        assert_eq!(set.current(), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_current_panics_out_of_bounds() {
        let mut set = set_two_variants();
        set.set_current(5);
    }
}
