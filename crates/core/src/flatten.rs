//! Repeated flattening without repeated work: the [`Flattener`].
//!
//! [`VariantSystem::flatten`] is correct but pays per call: it re-resolves every
//! port binding by name, re-checks name uniqueness for every merged node
//! (`O(nodes² )` scans), re-formats every prefixed node name and re-validates the
//! whole result graph. Enumerating a variant space multiplies that by the number
//! of combinations.
//!
//! A [`Flattener`] hoists all of that out of the loop. Building one:
//!
//! * validates the system once (graph, clusters, bindings, selection rules);
//! * clones the common part once into a reusable **skeleton**;
//! * pre-renames every cluster graph with its `"{interface}/{cluster}/"` prefix;
//! * resolves every port binding to a skeleton [`ChannelId`] once;
//! * proves all node-name sets disjoint once, unlocking the unchecked
//!   [`SpiGraph::merge_disjoint`] fast path.
//!
//! Per variant, [`Flattener::flatten`] then only clones the skeleton and splices
//! the chosen pre-renamed clusters into it. The `variant_space` benches measure
//! this at several times the throughput of the legacy clone-per-variant path.
//!
//! ```rust
//! use spi_variants::Flattener;
//! # use spi_model::{ChannelKind, GraphBuilder, Interval};
//! # use spi_variants::{Cluster, Interface, VariantSystem, VariantType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = GraphBuilder::new("doc");
//! # let pa = b.process("PA").latency(Interval::point(1)).build()?;
//! # let cin = b.channel("CIn", ChannelKind::Queue)?;
//! # let cout = b.channel("COut", ChannelKind::Queue)?;
//! # b.connect_output(pa, cin, Interval::point(1))?;
//! # let mut interface = Interface::new("if1");
//! # interface.add_input_port("i");
//! # interface.add_output_port("o");
//! # for name in ["v1", "v2"] {
//! #     let mut cb = GraphBuilder::new(name);
//! #     cb.process("P").latency(Interval::point(2)).build()?;
//! #     let mut cluster = Cluster::new(name, cb.finish()?);
//! #     cluster.add_input_port("i", "P", Interval::point(1))?;
//! #     cluster.add_output_port("o", "P", Interval::point(1))?;
//! #     interface.add_cluster(cluster)?;
//! # }
//! # let mut system = VariantSystem::new(b.finish()?);
//! # let att = system.attach_interface(interface, VariantType::Production)?;
//! # system.bind_input(att, "i", "CIn")?;
//! # system.bind_output(att, "o", "COut")?;
//! let flattener = Flattener::new(&system)?;
//! for choice in flattener.space().choices_iter() {
//!     let graph = flattener.flatten(&choice)?;
//!     assert!(graph.validate().is_ok());
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use spi_model::{ChannelId, Interval, ProcessId, ProductionSpec, SpiGraph, Sym, TagSet};

use crate::cluster::PortDirection;
use crate::error::VariantError;
use crate::space::{VariantChoice, VariantSpace};
use crate::system::VariantSystem;
use crate::Result;

/// Pre-resolved wiring of one cluster port.
#[derive(Debug, Clone)]
struct PortPlan {
    direction: PortDirection,
    /// Channel of the skeleton the port is bound to (ids survive skeleton clones).
    channel: ChannelId,
    /// Process inside the pre-renamed cluster graph that drives the port.
    process: ProcessId,
    rate: Interval,
    tags: TagSet,
}

/// One cluster of one interface, ready to splice.
#[derive(Debug, Clone)]
struct ClusterPlan {
    cluster: Sym,
    /// The cluster graph with `"{interface}/{cluster}/"` already prefixed onto
    /// every node name; splicing is a rename-free disjoint merge.
    renamed: SpiGraph,
    ports: Vec<PortPlan>,
}

/// All clusters of one attached interface.
#[derive(Debug, Clone)]
struct AttachmentPlan {
    interface: Sym,
    clusters: Vec<ClusterPlan>,
}

/// Reusable flattening machine for one [`VariantSystem`]; see the module docs.
#[derive(Debug, Clone)]
pub struct Flattener {
    skeleton: SpiGraph,
    space: VariantSpace,
    plans: Vec<AttachmentPlan>,
}

impl Flattener {
    /// Builds the flattener: validates `system`, clones the common skeleton and
    /// precomputes every splice plan.
    ///
    /// # Errors
    ///
    /// Returns any validation error of the system, or
    /// [`VariantError::Validation`] if node names of different clusters (or of a
    /// cluster and the common part) would collide after prefixing — the same
    /// collisions the checked per-variant merge would report, found once instead
    /// of per combination.
    pub fn new(system: &VariantSystem) -> Result<Self> {
        system.validate()?;
        let skeleton = system.common().clone();

        // Every node name that may appear in a flattened graph, mapped to the
        // attachment that contributes it (usize::MAX = the common part). Only
        // names from *different* origins can co-occur in one combination.
        let mut origins: HashMap<String, usize> = skeleton
            .processes()
            .map(|p| (p.name().to_string(), usize::MAX))
            .chain(
                skeleton
                    .channels()
                    .map(|c| (c.name().to_string(), usize::MAX)),
            )
            .collect();

        let mut plans = Vec::with_capacity(system.attachment_count());
        for (attachment_index, attachment) in system.attachments().iter().enumerate() {
            let interface = attachment.interface();
            let mut clusters = Vec::with_capacity(interface.cluster_count());
            for cluster in interface.clusters() {
                let prefix = format!("{}/{}/", interface.name(), cluster.name());
                let mut renamed = SpiGraph::new(cluster.graph().name());
                let rename_map = renamed.merge(cluster.graph(), &prefix)?;

                for node_name in renamed
                    .processes()
                    .map(|p| p.name())
                    .chain(renamed.channels().map(|c| c.name()))
                {
                    match origins.get(node_name) {
                        Some(&origin) if origin != attachment_index => {
                            return Err(VariantError::Validation(format!(
                                "node name `{node_name}` of cluster `{}` collides with {}",
                                cluster.name(),
                                if origin == usize::MAX {
                                    "the common part".to_string()
                                } else {
                                    format!("interface `{}`", plans_name(system, origin))
                                }
                            )));
                        }
                        _ => {
                            origins.insert(node_name.to_string(), attachment_index);
                        }
                    }
                }

                let mut ports = Vec::with_capacity(cluster.ports().len());
                for port in cluster.ports() {
                    let binding = match port.direction() {
                        PortDirection::Input => attachment.input_binding(port.name()),
                        PortDirection::Output => attachment.output_binding(port.name()),
                    };
                    let Some(channel_name) = binding else {
                        return Err(VariantError::UnboundPort {
                            interface: interface.name().to_string(),
                            port: port.name().to_string(),
                        });
                    };
                    let channel = skeleton
                        .channel_by_name(channel_name)
                        .ok_or_else(|| VariantError::UnknownName(channel_name.to_string()))?
                        .id();
                    let process = rename_map.processes[&port.process()];
                    ports.push(PortPlan {
                        direction: port.direction(),
                        channel,
                        process,
                        rate: port.rate(),
                        tags: port.tags().clone(),
                    });
                }

                clusters.push(ClusterPlan {
                    cluster: Sym::intern(cluster.name()),
                    renamed,
                    ports,
                });
            }
            plans.push(AttachmentPlan {
                interface: Sym::intern(interface.name()),
                clusters,
            });
        }

        Ok(Flattener {
            skeleton,
            space: system.variant_space(),
            plans,
        })
    }

    /// The variant space of the underlying system (cached at construction).
    pub fn space(&self) -> &VariantSpace {
        &self.space
    }

    /// The common-part skeleton every flattened graph starts from.
    pub fn skeleton(&self) -> &SpiGraph {
        &self.skeleton
    }

    /// Flattens one combination into a fresh graph.
    ///
    /// # Errors
    ///
    /// * [`VariantError::IncompleteChoice`] if `choice` misses an interface;
    /// * [`VariantError::UnknownName`] if it names a cluster the interface lacks.
    pub fn flatten(&self, choice: &VariantChoice) -> Result<SpiGraph> {
        let mut graph = SpiGraph::new("");
        self.flatten_into(choice, &mut graph)?;
        Ok(graph)
    }

    /// Flattens one combination into `graph`, replacing its previous contents —
    /// the allocation-reusing form of [`flatten`](Self::flatten) for tight
    /// enumeration loops.
    ///
    /// # Errors
    ///
    /// Same as [`flatten`](Self::flatten).
    pub fn flatten_into(&self, choice: &VariantChoice, graph: &mut SpiGraph) -> Result<()> {
        graph.clone_from(&self.skeleton);
        for plan in &self.plans {
            let cluster = choice.cluster_sym_for(plan.interface).ok_or_else(|| {
                VariantError::IncompleteChoice(plan.interface.as_str().to_string())
            })?;
            let cluster_plan = plan
                .clusters
                .iter()
                .find(|c| c.cluster == cluster)
                .ok_or_else(|| VariantError::UnknownName(cluster.as_str().to_string()))?;
            let map = graph.merge_disjoint(&cluster_plan.renamed);
            for port in &cluster_plan.ports {
                let process = map.processes[&port.process];
                match port.direction {
                    PortDirection::Input => {
                        graph.set_reader(port.channel, process)?;
                        graph
                            .process_mut(process)
                            .expect("process was just merged")
                            .set_default_consumption(port.channel, port.rate);
                    }
                    PortDirection::Output => {
                        graph.set_writer(port.channel, process)?;
                        graph
                            .process_mut(process)
                            .expect("process was just merged")
                            .set_default_production(
                                port.channel,
                                ProductionSpec::tagged(port.rate, port.tags.clone()),
                            );
                    }
                }
            }
        }
        Ok(())
    }

    /// Flattens the combination at `index` of the variant space (mixed-radix
    /// order, matching [`VariantSpace::choice_at`]) — the entry point for
    /// sharded/strided exploration.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::UnknownName`] if `index` is out of range, else as
    /// [`flatten`](Self::flatten).
    pub fn flatten_at(&self, index: usize) -> Result<(VariantChoice, SpiGraph)> {
        let choice = self
            .space
            .choice_at(index)
            .ok_or_else(|| VariantError::UnknownName(format!("variant index {index}")))?;
        let graph = self.flatten(&choice)?;
        Ok((choice, graph))
    }
}

fn plans_name(system: &VariantSystem, attachment_index: usize) -> String {
    system
        .attachments()
        .get(attachment_index)
        .map(|a| a.interface().name().to_string())
        .unwrap_or_else(|| format!("attachment#{attachment_index}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::figure2_like_system;

    #[test]
    fn flattener_matches_legacy_flatten_on_every_choice() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        for choice in system.variant_space().choices_iter() {
            let legacy = system.flatten(&choice).unwrap();
            let fast = flattener.flatten(&choice).unwrap();
            assert_eq!(legacy, fast);
            assert!(fast.validate().is_ok());
        }
    }

    #[test]
    fn flatten_into_reuses_the_buffer() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let mut scratch = SpiGraph::new("");
        let mut counts = Vec::new();
        for choice in flattener.space().choices_iter() {
            flattener.flatten_into(&choice, &mut scratch).unwrap();
            counts.push(scratch.process_count());
        }
        assert_eq!(counts, vec![2 + 2, 2 + 3]);
    }

    #[test]
    fn flatten_at_decodes_the_space_index() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let (choice0, graph0) = flattener.flatten_at(0).unwrap();
        assert_eq!(choice0.cluster_for("interface1"), Some("cluster1"));
        assert_eq!(graph0.process_count(), 4);
        assert!(matches!(
            flattener.flatten_at(99),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn incomplete_and_unknown_choices_are_rejected() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        assert!(matches!(
            flattener.flatten(&VariantChoice::new()),
            Err(VariantError::IncompleteChoice(_))
        ));
        assert!(matches!(
            flattener.flatten(&VariantChoice::new().with("interface1", "ghost")),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn construction_validates_the_system() {
        let mut system = figure2_like_system();
        let id = system.attachment_by_name("interface1").unwrap();
        system.attachment_mut(id).unwrap().clear_bindings_for_test();
        assert!(matches!(
            Flattener::new(&system),
            Err(VariantError::UnboundPort { .. })
        ));
    }
}
