//! Repeated flattening without repeated work: the [`Flattener`].
//!
//! [`VariantSystem::flatten`] is correct but pays per call: it re-resolves every
//! port binding by name, re-checks name uniqueness for every merged node
//! (`O(nodes² )` scans), re-formats every prefixed node name and re-validates the
//! whole result graph. Enumerating a variant space multiplies that by the number
//! of combinations.
//!
//! A [`Flattener`] hoists all of that out of the loop. Building one:
//!
//! * validates the system once (graph, clusters, bindings, selection rules);
//! * clones the common part once into a reusable **skeleton**;
//! * pre-renames every cluster graph with its `"{interface}/{cluster}/"` prefix;
//! * resolves every port binding to a skeleton [`ChannelId`] once;
//! * proves all node-name sets disjoint once, unlocking the unchecked
//!   [`SpiGraph::merge_disjoint`] fast path.
//!
//! Per variant, [`Flattener::flatten`] then only clones the skeleton and splices
//! the chosen pre-renamed clusters into it. The `variant_space` benches measure
//! this at several times the throughput of the legacy clone-per-variant path.
//!
//! ```rust
//! use spi_variants::Flattener;
//! # use spi_model::{ChannelKind, GraphBuilder, Interval};
//! # use spi_variants::{Cluster, Interface, VariantSystem, VariantType};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = GraphBuilder::new("doc");
//! # let pa = b.process("PA").latency(Interval::point(1)).build()?;
//! # let cin = b.channel("CIn", ChannelKind::Queue)?;
//! # let cout = b.channel("COut", ChannelKind::Queue)?;
//! # b.connect_output(pa, cin, Interval::point(1))?;
//! # let mut interface = Interface::new("if1");
//! # interface.add_input_port("i");
//! # interface.add_output_port("o");
//! # for name in ["v1", "v2"] {
//! #     let mut cb = GraphBuilder::new(name);
//! #     cb.process("P").latency(Interval::point(2)).build()?;
//! #     let mut cluster = Cluster::new(name, cb.finish()?);
//! #     cluster.add_input_port("i", "P", Interval::point(1))?;
//! #     cluster.add_output_port("o", "P", Interval::point(1))?;
//! #     interface.add_cluster(cluster)?;
//! # }
//! # let mut system = VariantSystem::new(b.finish()?);
//! # let att = system.attach_interface(interface, VariantType::Production)?;
//! # system.bind_input(att, "i", "CIn")?;
//! # system.bind_output(att, "o", "COut")?;
//! let flattener = Flattener::new(&system)?;
//! for choice in flattener.space().choices_iter() {
//!     let graph = flattener.flatten(&choice)?;
//!     assert!(graph.validate().is_ok());
//! }
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use spi_model::{
    BuildSymHasher, ChannelId, GraphWatermark, Interval, ModelError, ProcessId, ProductionSpec,
    SpiGraph, Sym, TagSet,
};

use crate::cluster::PortDirection;
use crate::error::VariantError;
use crate::space::{VariantChoice, VariantSpace};
use crate::system::VariantSystem;
use crate::Result;

/// Pre-resolved wiring of one cluster port.
#[derive(Debug, Clone)]
struct PortPlan {
    direction: PortDirection,
    /// Channel of the skeleton the port is bound to (ids survive skeleton clones).
    channel: ChannelId,
    /// Process inside the pre-renamed cluster graph that drives the port.
    process: ProcessId,
    rate: Interval,
    tags: TagSet,
}

/// One cluster of one interface, ready to splice.
#[derive(Debug, Clone)]
struct ClusterPlan {
    cluster: Sym,
    /// The cluster graph with `"{interface}/{cluster}/"` already prefixed onto
    /// every node name; splicing is a rename-free disjoint merge.
    renamed: SpiGraph,
    ports: Vec<PortPlan>,
}

/// All clusters of one attached interface.
#[derive(Debug, Clone)]
struct AttachmentPlan {
    interface: Sym,
    clusters: Vec<ClusterPlan>,
    /// Cluster name → position in `clusters`: the `O(1)` axis resolution of
    /// the flattening hot loop (and the digit ↔ plan mapping of the delta
    /// path, whose positions match the variant space's axis cluster order).
    cluster_index: HashMap<Sym, u32, BuildSymHasher>,
}

/// Reusable flattening machine for one [`VariantSystem`]; see the module docs.
#[derive(Debug, Clone)]
pub struct Flattener {
    skeleton: SpiGraph,
    space: VariantSpace,
    plans: Vec<AttachmentPlan>,
}

impl Flattener {
    /// Builds the flattener: validates `system`, clones the common skeleton and
    /// precomputes every splice plan.
    ///
    /// # Errors
    ///
    /// Returns any validation error of the system, or
    /// [`VariantError::Validation`] if node names of different clusters (or of a
    /// cluster and the common part) would collide after prefixing — the same
    /// collisions the checked per-variant merge would report, found once instead
    /// of per combination.
    pub fn new(system: &VariantSystem) -> Result<Self> {
        system.validate()?;
        let skeleton = system.common().clone();

        // Every node name that may appear in a flattened graph, mapped to the
        // attachment that contributes it (usize::MAX = the common part). Only
        // names from *different* origins can co-occur in one combination.
        let mut origins: HashMap<String, usize> = skeleton
            .processes()
            .map(|p| (p.name().to_string(), usize::MAX))
            .chain(
                skeleton
                    .channels()
                    .map(|c| (c.name().to_string(), usize::MAX)),
            )
            .collect();

        let mut plans = Vec::with_capacity(system.attachment_count());
        for (attachment_index, attachment) in system.attachments().iter().enumerate() {
            let interface = attachment.interface();
            let mut clusters = Vec::with_capacity(interface.cluster_count());
            for cluster in interface.clusters() {
                let prefix = format!("{}/{}/", interface.name(), cluster.name());
                let mut renamed = SpiGraph::new(cluster.graph().name());
                let rename_map = renamed.merge(cluster.graph(), &prefix)?;

                for node_name in renamed
                    .processes()
                    .map(|p| p.name())
                    .chain(renamed.channels().map(|c| c.name()))
                {
                    match origins.get(node_name) {
                        Some(&origin) if origin != attachment_index => {
                            return Err(VariantError::Validation(format!(
                                "node name `{node_name}` of cluster `{}` collides with {}",
                                cluster.name(),
                                if origin == usize::MAX {
                                    "the common part".to_string()
                                } else {
                                    format!("interface `{}`", plans_name(system, origin))
                                }
                            )));
                        }
                        _ => {
                            origins.insert(node_name.to_string(), attachment_index);
                        }
                    }
                }

                let mut ports = Vec::with_capacity(cluster.ports().len());
                for port in cluster.ports() {
                    let binding = match port.direction() {
                        PortDirection::Input => attachment.input_binding(port.name()),
                        PortDirection::Output => attachment.output_binding(port.name()),
                    };
                    let Some(channel_name) = binding else {
                        return Err(VariantError::UnboundPort {
                            interface: interface.name().to_string(),
                            port: port.name().to_string(),
                        });
                    };
                    let channel = skeleton
                        .channel_by_name(channel_name)
                        .ok_or_else(|| VariantError::UnknownName(channel_name.to_string()))?
                        .id();
                    let process = rename_map.processes[&port.process()];
                    ports.push(PortPlan {
                        direction: port.direction(),
                        channel,
                        process,
                        rate: port.rate(),
                        tags: port.tags().clone(),
                    });
                }

                clusters.push(ClusterPlan {
                    cluster: Sym::intern(cluster.name()),
                    renamed,
                    ports,
                });
            }
            let cluster_index = clusters
                .iter()
                .enumerate()
                .map(|(position, plan)| (plan.cluster, position as u32))
                .collect();
            plans.push(AttachmentPlan {
                interface: Sym::intern(interface.name()),
                clusters,
                cluster_index,
            });
        }

        Ok(Flattener {
            skeleton,
            space: system.variant_space(),
            plans,
        })
    }

    /// The variant space of the underlying system (cached at construction).
    pub fn space(&self) -> &VariantSpace {
        &self.space
    }

    /// The common-part skeleton every flattened graph starts from.
    pub fn skeleton(&self) -> &SpiGraph {
        &self.skeleton
    }

    /// Flattens one combination into a fresh graph.
    ///
    /// # Errors
    ///
    /// * [`VariantError::IncompleteChoice`] if `choice` misses an interface;
    /// * [`VariantError::UnknownName`] if it names a cluster the interface lacks.
    pub fn flatten(&self, choice: &VariantChoice) -> Result<SpiGraph> {
        let mut graph = SpiGraph::new("");
        self.flatten_into(choice, &mut graph)?;
        Ok(graph)
    }

    /// Flattens one combination into `graph`, replacing its previous contents —
    /// the allocation-reusing form of [`flatten`](Self::flatten) for tight
    /// enumeration loops.
    ///
    /// # Errors
    ///
    /// Same as [`flatten`](Self::flatten).
    pub fn flatten_into(&self, choice: &VariantChoice, graph: &mut SpiGraph) -> Result<()> {
        graph.clone_from(&self.skeleton);
        for plan in &self.plans {
            let cluster = choice.cluster_sym_for(plan.interface).ok_or_else(|| {
                VariantError::IncompleteChoice(plan.interface.as_str().to_string())
            })?;
            let cluster_plan = plan
                .cluster_index
                .get(&cluster)
                .map(|&position| &plan.clusters[position as usize])
                .ok_or_else(|| VariantError::UnknownName(cluster.as_str().to_string()))?;
            let map = graph.merge_disjoint(&cluster_plan.renamed);
            for port in &cluster_plan.ports {
                let process = map.processes[&port.process];
                match port.direction {
                    PortDirection::Input => {
                        graph.set_reader(port.channel, process)?;
                        graph
                            .process_mut(process)
                            .expect("process was just merged")
                            .set_default_consumption(port.channel, port.rate);
                    }
                    PortDirection::Output => {
                        graph.set_writer(port.channel, process)?;
                        graph
                            .process_mut(process)
                            .expect("process was just merged")
                            .set_default_production(
                                port.channel,
                                ProductionSpec::tagged(port.rate, port.tags.clone()),
                            );
                    }
                }
            }
        }
        Ok(())
    }

    /// Flattens the combination at `index` of the variant space (mixed-radix
    /// order, matching [`VariantSpace::choice_at`]) — the entry point for
    /// sharded/strided exploration.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::UnknownName`] if `index` is out of range, else as
    /// [`flatten`](Self::flatten).
    pub fn flatten_at(&self, index: usize) -> Result<(VariantChoice, SpiGraph)> {
        let choice = self
            .space
            .choice_at(index)
            .ok_or_else(|| VariantError::UnknownName(format!("variant index {index}")))?;
        let graph = self.flatten(&choice)?;
        Ok((choice, graph))
    }
}

/// Incremental flattening: patches the previous flat graph instead of
/// rebuilding it — O(changed cluster) amortized over a Gray-order walk.
///
/// The combination digits are spliced in **axis order**: the last axis is the
/// least significant of the mixed radix, so under the Gray-order enumeration of
/// [`VariantSpace::choices_delta_iter`](crate::VariantSpace::choices_delta_iter)
/// the clusters that change most frequently sit last in the slab. Moving from
/// one combination to the next then only has to
///
/// 1. detach the port wirings of the axes at and above the first changed one
///    (they point at skeleton channels *below* the rollback mark, so the
///    truncation alone would leave them dangling),
/// 2. [`truncate_to`](SpiGraph::truncate_to) the changed axis's recorded
///    watermark, undoing exactly the suffix splices, and
/// 3. re-splice the suffix via the offset-shift
///    [`merge_disjoint_shifted`](SpiGraph::merge_disjoint_shifted) append.
///
/// Because the splice order, the appended node content and the port wirings
/// are exactly those of [`Flattener::flatten_into`] on a fresh skeleton clone,
/// the patched graph is **bit-identical** to [`Flattener::flatten_at`] at
/// every index — same slabs, same ids, same iteration order, same digests
/// (pinned by the differential test suite).
///
/// Any flattening error leaves the instance unprimed; the next call falls back
/// to a full rebuild, so errors are never sticky.
#[derive(Debug, Clone)]
pub struct DeltaFlattener<'a> {
    flattener: &'a Flattener,
    /// The current flat graph; matches `digits` when `primed`.
    graph: SpiGraph,
    /// Cluster position currently spliced, per axis.
    digits: Vec<u32>,
    /// Decode scratch for the requested combination.
    target: Vec<u32>,
    /// `watermarks[axis]` is the slab mark just *below* that axis's splice:
    /// truncating to it removes the splices of every axis at or above.
    watermarks: Vec<GraphWatermark>,
    /// False until a combination is fully spliced (and after any error).
    primed: bool,
    /// Patch/rebuild accounting (see [`FlattenStats`]).
    stats: FlattenStats,
}

/// Cumulative patch-vs-rebuild accounting of one [`DeltaFlattener`] — the
/// observability counters behind the `flatten.*` metrics: how often the
/// incremental path actually patched, how often it paid a full skeleton
/// rebuild, and how large the last splice was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlattenStats {
    /// Incremental applies: the previous graph was truncated to a watermark
    /// and only the changed suffix re-spliced (includes no-op applies where
    /// the requested combination was already primed).
    pub patches: u64,
    /// Full applies: the graph was rebuilt from the skeleton (the first
    /// flatten, and every recovery after an error or [`DeltaFlattener::reset`]).
    pub rebuilds: u64,
    /// The subset of `rebuilds` forced by a slab-integrity refusal mid-patch
    /// (see [`DeltaFlattener::rebuild_fallbacks`]).
    pub rebuild_fallbacks: u64,
    /// Processes spliced by the most recent apply — the per-apply sample for
    /// the patched-nodes histogram (0 for a no-op apply, the whole variant's
    /// cluster processes for a rebuild).
    pub last_patched_processes: u64,
}

impl<'a> DeltaFlattener<'a> {
    /// Creates an unprimed delta flattener; the first
    /// [`flatten_index`](Self::flatten_index) pays one full flatten.
    pub fn new(flattener: &'a Flattener) -> Self {
        // The delta path maps mixed-radix digits to cluster plans by
        // *position*; `Flattener::new` builds both the space and the plans
        // from the attachments in order, so the correspondence is structural.
        debug_assert!(flattener.space.axes().iter().zip(&flattener.plans).all(
            |((interface, clusters), plan)| {
                *interface == plan.interface
                    && clusters.len() == plan.clusters.len()
                    && clusters
                        .iter()
                        .zip(&plan.clusters)
                        .all(|(sym, cluster)| *sym == cluster.cluster)
            }
        ));
        debug_assert!(flattener
            .plans
            .iter()
            .flat_map(|plan| &plan.clusters)
            .all(|cluster| cluster.renamed.is_dense()));
        DeltaFlattener {
            flattener,
            graph: SpiGraph::new(""),
            digits: Vec::new(),
            target: Vec::new(),
            watermarks: Vec::new(),
            primed: false,
            stats: FlattenStats::default(),
        }
    }

    /// The underlying shared flattener.
    pub fn flattener(&self) -> &'a Flattener {
        self.flattener
    }

    /// The current flat graph, if a combination is primed.
    pub fn graph(&self) -> Option<&SpiGraph> {
        self.primed.then_some(&self.graph)
    }

    /// Drops the primed state: the next flatten rebuilds from the skeleton.
    /// (The result is unaffected — this only forfeits the incremental credit.)
    pub fn reset(&mut self) {
        self.primed = false;
    }

    /// How many patches were abandoned for a full skeleton rebuild because a
    /// slab operation refused (a [`ModelError::SlabIntegrity`] from
    /// `truncate_to` / `merge_disjoint_shifted`). Nonzero means the
    /// incremental state went bad and was safely discarded — results stayed
    /// correct, only the incremental credit was forfeited.
    pub fn rebuild_fallbacks(&self) -> u64 {
        self.stats.rebuild_fallbacks
    }

    /// Cumulative patch-vs-rebuild accounting since construction.
    pub fn stats(&self) -> FlattenStats {
        self.stats
    }

    /// Test hook: corrupts the recorded watermarks so the next patch attempt
    /// trips the slab-integrity checks and must fall back to a full rebuild.
    /// Exists so the fallback path is testable in *release* builds, where the
    /// old `debug_assert!`-only preconditions silently corrupted the slabs.
    #[doc(hidden)]
    pub fn corrupt_watermarks_for_test(&mut self) {
        for mark in &mut self.watermarks {
            mark.processes = u32::MAX;
            mark.channels = u32::MAX;
        }
    }

    /// Flattens the combination at lexicographic `index` of the variant space
    /// by patching the previous graph, and returns it. Bit-identical to
    /// [`Flattener::flatten_at`] at the same index.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::UnknownName`] if `index` is out of range, else
    /// as [`Flattener::flatten`].
    pub fn flatten_index(&mut self, index: usize) -> Result<&SpiGraph> {
        if !self.flattener.space.digits_at(index, &mut self.target) {
            return Err(VariantError::UnknownName(format!("variant index {index}")));
        }
        self.apply_target()?;
        Ok(&self.graph)
    }

    /// Flattens the `rank`-th combination of the Gray-order walk (see
    /// [`VariantSpace::gray_index_at`](crate::VariantSpace::gray_index_at))
    /// and returns its canonical lexicographic index alongside the graph —
    /// the entry point for Gray-rank-strided shard runs, where consecutive
    /// ranks of a walk change one axis and patch in O(one cluster).
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::UnknownName`] if `rank` is out of range, else
    /// as [`Flattener::flatten`].
    pub fn flatten_gray_rank(&mut self, rank: usize) -> Result<(usize, &SpiGraph)> {
        let Some(index) = self.flattener.space.gray_digits_at(rank, &mut self.target) else {
            return Err(VariantError::UnknownName(format!("gray rank {rank}")));
        };
        self.apply_target()?;
        Ok((index, &self.graph))
    }

    /// Patches `graph` from `digits` to `target`: truncate to the first
    /// changed axis's watermark, re-splice the suffix. A slab-integrity
    /// refusal during an *incremental* patch self-invalidates the instance
    /// and transparently retries as a full skeleton rebuild — the same
    /// recovery `reset` offers, applied automatically, so a corrupted patch
    /// state degrades to slower-but-correct instead of failing the variant.
    fn apply_target(&mut self) -> Result<()> {
        let was_primed = self.primed;
        match self.try_apply_target() {
            Err(VariantError::Model(ModelError::SlabIntegrity(_))) if was_primed => {
                // Discard the incremental state and retry down the
                // full-rebuild path; a failure there is a real error.
                self.primed = false;
                self.stats.rebuild_fallbacks += 1;
                self.try_apply_target()
            }
            outcome => outcome,
        }
    }

    fn try_apply_target(&mut self) -> Result<()> {
        let plans = &self.flattener.plans;
        debug_assert_eq!(self.target.len(), plans.len());
        let was_patch = self.primed;
        let first_changed = if self.primed {
            match (0..plans.len()).find(|&axis| self.digits[axis] != self.target[axis]) {
                // The combination is already spliced.
                None => {
                    self.stats.patches += 1;
                    self.stats.last_patched_processes = 0;
                    return Ok(());
                }
                Some(axis) => axis,
            }
        } else {
            0
        };

        if self.primed {
            // Detach the suffix's port wirings: they live in edge slots of
            // skeleton channels (below every watermark), where truncation
            // cannot reach them.
            for (axis, plan) in plans.iter().enumerate().skip(first_changed) {
                let outgoing = &plan.clusters[self.digits[axis] as usize];
                for port in &outgoing.ports {
                    match port.direction {
                        PortDirection::Input => self.graph.clear_reader(port.channel),
                        PortDirection::Output => self.graph.clear_writer(port.channel),
                    };
                }
            }
            self.graph.truncate_to(self.watermarks[first_changed])?;
        } else {
            self.graph.clone_from(&self.flattener.skeleton);
            self.digits.clear();
            self.digits.resize(plans.len(), 0);
            self.watermarks.clear();
            self.watermarks
                .resize(plans.len(), GraphWatermark::default());
        }

        // Unprimed while splicing: a wiring error must not leave a
        // half-spliced graph claiming to be a combination.
        self.primed = false;
        let mut spliced_processes = 0u64;
        for (axis, plan) in plans.iter().enumerate().skip(first_changed) {
            let digit = self.target[axis];
            let incoming = &plan.clusters[digit as usize];
            spliced_processes += incoming.renamed.process_count() as u64;
            self.watermarks[axis] = self.graph.watermark();
            let (process_offset, _) = self.graph.merge_disjoint_shifted(&incoming.renamed)?;
            for port in &incoming.ports {
                let process = ProcessId::new(process_offset + port.process.index());
                match port.direction {
                    PortDirection::Input => {
                        self.graph.set_reader(port.channel, process)?;
                        self.graph
                            .process_mut(process)
                            .expect("process was just spliced")
                            .set_default_consumption(port.channel, port.rate);
                    }
                    PortDirection::Output => {
                        self.graph.set_writer(port.channel, process)?;
                        self.graph
                            .process_mut(process)
                            .expect("process was just spliced")
                            .set_default_production(
                                port.channel,
                                ProductionSpec::tagged(port.rate, port.tags.clone()),
                            );
                    }
                }
            }
            self.digits[axis] = digit;
        }
        self.primed = true;
        if was_patch {
            self.stats.patches += 1;
        } else {
            self.stats.rebuilds += 1;
        }
        self.stats.last_patched_processes = spliced_processes;
        Ok(())
    }
}

fn plans_name(system: &VariantSystem, attachment_index: usize) -> String {
    system
        .attachments()
        .get(attachment_index)
        .map(|a| a.interface().name().to_string())
        .unwrap_or_else(|| format!("attachment#{attachment_index}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::figure2_like_system;

    #[test]
    fn flattener_matches_legacy_flatten_on_every_choice() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        for choice in system.variant_space().choices_iter() {
            let legacy = system.flatten(&choice).unwrap();
            let fast = flattener.flatten(&choice).unwrap();
            assert_eq!(legacy, fast);
            assert!(fast.validate().is_ok());
        }
    }

    #[test]
    fn flatten_into_reuses_the_buffer() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let mut scratch = SpiGraph::new("");
        let mut counts = Vec::new();
        for choice in flattener.space().choices_iter() {
            flattener.flatten_into(&choice, &mut scratch).unwrap();
            counts.push(scratch.process_count());
        }
        assert_eq!(counts, vec![2 + 2, 2 + 3]);
    }

    #[test]
    fn flatten_at_decodes_the_space_index() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let (choice0, graph0) = flattener.flatten_at(0).unwrap();
        assert_eq!(choice0.cluster_for("interface1"), Some("cluster1"));
        assert_eq!(graph0.process_count(), 4);
        assert!(matches!(
            flattener.flatten_at(99),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn incomplete_and_unknown_choices_are_rejected() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        assert!(matches!(
            flattener.flatten(&VariantChoice::new()),
            Err(VariantError::IncompleteChoice(_))
        ));
        assert!(matches!(
            flattener.flatten(&VariantChoice::new().with("interface1", "ghost")),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn delta_flattener_matches_flatten_at_on_every_index() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let mut delta = DeltaFlattener::new(&flattener);
        for index in 0..flattener.space().count() {
            let (_, full) = flattener.flatten_at(index).unwrap();
            let patched = delta.flatten_index(index).unwrap();
            assert_eq!(patched, &full, "index {index}");
        }
    }

    #[test]
    fn delta_flattener_walks_gray_ranks() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let mut delta = DeltaFlattener::new(&flattener);
        let mut seen = Vec::new();
        for rank in 0..flattener.space().count() {
            let expected_index = flattener.space().gray_index_at(rank).unwrap();
            let (index, patched) = delta.flatten_gray_rank(rank).unwrap();
            assert_eq!(index, expected_index);
            let (_, full) = flattener.flatten_at(index).unwrap();
            assert_eq!(patched, &full);
            seen.push(index);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..flattener.space().count()).collect::<Vec<_>>());
        assert!(matches!(
            delta.flatten_gray_rank(flattener.space().count()),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn delta_flattener_survives_resets_and_rejects_bad_indices() {
        let system = figure2_like_system();
        let flattener = Flattener::new(&system).unwrap();
        let mut delta = DeltaFlattener::new(&flattener);
        assert!(delta.graph().is_none());
        assert!(matches!(
            delta.flatten_index(usize::MAX),
            Err(VariantError::UnknownName(_))
        ));
        delta.flatten_index(1).unwrap();
        assert!(delta.graph().is_some());
        delta.reset();
        assert!(delta.graph().is_none());
        let (_, full) = flattener.flatten_at(1).unwrap();
        assert_eq!(delta.flatten_index(1).unwrap(), &full);
        // Re-requesting the primed combination is a no-op, not a rebuild.
        assert_eq!(delta.flatten_index(1).unwrap(), &full);
    }

    #[test]
    fn construction_validates_the_system() {
        let mut system = figure2_like_system();
        let id = system.attachment_by_name("interface1").unwrap();
        system.attachment_mut(id).unwrap().clear_bindings_for_test();
        assert!(matches!(
            Flattener::new(&system),
            Err(VariantError::UnboundPort { .. })
        ));
    }
}
