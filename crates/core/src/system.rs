//! The complete variant-aware system representation.
//!
//! A [`VariantSystem`] is the paper's "complete modelling": one **common part**
//! (an ordinary SPI graph containing everything that is not variant-dependent) plus a
//! set of **interface attachments**. Each attachment places an [`Interface`] — and with
//! it a set of mutually exclusive clusters — into the common graph by binding the
//! interface's ports to channels of the common graph.
//!
//! Two transformations take the representation back to plain SPI graphs:
//!
//! * [`VariantSystem::flatten`] replaces every interface by one chosen cluster,
//!   producing the single-variant system used for per-application synthesis
//!   (and implicitly for production/run-time variants);
//! * [`VariantSystem::abstract_interface`] (defined in [`crate::extraction`]) replaces
//!   an interface by a single process whose modes are partitioned into configurations —
//!   the representation used for dynamic variants and reconfigurable architectures.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use spi_model::{ChannelId, SpiGraph};

use crate::cluster::{Cluster, PortDirection};
use crate::error::VariantError;
use crate::interface::Interface;
use crate::selection::ClusterSelection;
use crate::space::{VariantChoice, VariantSpace};
use crate::variant::VariantType;
use crate::Result;

/// Identifier of an interface attachment within a [`VariantSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttachmentId(usize);

impl AttachmentId {
    /// Raw index of the attachment.
    pub fn index(self) -> usize {
        self.0
    }

    /// Creates an attachment id from a raw index (test helper; ids are normally
    /// obtained from [`VariantSystem::attach_interface`]).
    #[cfg(test)]
    pub(crate) fn from_raw(index: usize) -> Self {
        AttachmentId(index)
    }
}

impl fmt::Display for AttachmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attachment#{}", self.0)
    }
}

/// An interface placed into the common graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attachment {
    interface: Interface,
    variant_type: VariantType,
    /// Interface input port name → channel name of the common graph feeding it.
    input_bindings: BTreeMap<String, String>,
    /// Interface output port name → channel name of the common graph it writes.
    output_bindings: BTreeMap<String, String>,
}

impl Attachment {
    /// The attached interface.
    pub fn interface(&self) -> &Interface {
        &self.interface
    }

    /// Mutable access to the attached interface.
    pub fn interface_mut(&mut self) -> &mut Interface {
        &mut self.interface
    }

    /// How the variant behind this interface is selected.
    pub fn variant_type(&self) -> VariantType {
        self.variant_type
    }

    /// Channel (by name) bound to the given input port, if bound.
    pub fn input_binding(&self, port: &str) -> Option<&str> {
        self.input_bindings.get(port).map(String::as_str)
    }

    /// Channel (by name) bound to the given output port, if bound.
    pub fn output_binding(&self, port: &str) -> Option<&str> {
        self.output_bindings.get(port).map(String::as_str)
    }

    /// All input bindings as `(port, channel)` pairs.
    pub fn input_bindings(&self) -> impl Iterator<Item = (&str, &str)> {
        self.input_bindings
            .iter()
            .map(|(p, c)| (p.as_str(), c.as_str()))
    }

    /// All output bindings as `(port, channel)` pairs.
    pub fn output_bindings(&self) -> impl Iterator<Item = (&str, &str)> {
        self.output_bindings
            .iter()
            .map(|(p, c)| (p.as_str(), c.as_str()))
    }

    /// Drops every binding (test helper for exercising validation failures).
    #[cfg(test)]
    pub(crate) fn clear_bindings_for_test(&mut self) {
        self.input_bindings.clear();
        self.output_bindings.clear();
    }
}

/// A system with function variants: a common SPI graph plus attached interfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantSystem {
    common: SpiGraph,
    attachments: Vec<Attachment>,
}

impl VariantSystem {
    /// Wraps the common (variant-independent) part of a system.
    pub fn new(common: SpiGraph) -> Self {
        VariantSystem {
            common,
            attachments: Vec::new(),
        }
    }

    /// The common part.
    pub fn common(&self) -> &SpiGraph {
        &self.common
    }

    /// Mutable access to the common part.
    pub fn common_mut(&mut self) -> &mut SpiGraph {
        &mut self.common
    }

    /// Name of the modelled system (the common graph's name).
    pub fn name(&self) -> &str {
        self.common.name()
    }

    /// Attaches an interface (with its clusters) to the system.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::Validation`] if an interface with the same name is
    /// already attached.
    pub fn attach_interface(
        &mut self,
        interface: Interface,
        variant_type: VariantType,
    ) -> Result<AttachmentId> {
        if self
            .attachments
            .iter()
            .any(|a| a.interface.name() == interface.name())
        {
            return Err(VariantError::Validation(format!(
                "interface `{}` is already attached",
                interface.name()
            )));
        }
        self.attachments.push(Attachment {
            interface,
            variant_type,
            input_bindings: BTreeMap::new(),
            output_bindings: BTreeMap::new(),
        });
        Ok(AttachmentId(self.attachments.len() - 1))
    }

    /// Binds an input port of the attached interface to a channel of the common graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the attachment, the port or the channel does not exist.
    pub fn bind_input(
        &mut self,
        attachment: AttachmentId,
        port: impl AsRef<str>,
        channel: impl AsRef<str>,
    ) -> Result<()> {
        self.bind(
            attachment,
            port.as_ref(),
            channel.as_ref(),
            PortDirection::Input,
        )
    }

    /// Binds an output port of the attached interface to a channel of the common graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the attachment, the port or the channel does not exist.
    pub fn bind_output(
        &mut self,
        attachment: AttachmentId,
        port: impl AsRef<str>,
        channel: impl AsRef<str>,
    ) -> Result<()> {
        self.bind(
            attachment,
            port.as_ref(),
            channel.as_ref(),
            PortDirection::Output,
        )
    }

    fn bind(
        &mut self,
        attachment: AttachmentId,
        port: &str,
        channel: &str,
        direction: PortDirection,
    ) -> Result<()> {
        if self.common.channel_by_name(channel).is_none() {
            return Err(VariantError::UnknownName(channel.to_string()));
        }
        let attachment = self
            .attachments
            .get_mut(attachment.0)
            .ok_or(VariantError::UnknownAttachment(attachment.0))?;
        let ports = match direction {
            PortDirection::Input => attachment.interface.input_ports(),
            PortDirection::Output => attachment.interface.output_ports(),
        };
        if !ports.iter().any(|p| p == port) {
            return Err(VariantError::UnknownName(port.to_string()));
        }
        match direction {
            PortDirection::Input => attachment
                .input_bindings
                .insert(port.to_string(), channel.to_string()),
            PortDirection::Output => attachment
                .output_bindings
                .insert(port.to_string(), channel.to_string()),
        };
        Ok(())
    }

    /// Attaches the cluster selection function to the interface of an attachment.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::UnknownAttachment`] for an invalid attachment id.
    pub fn set_selection(
        &mut self,
        attachment: AttachmentId,
        selection: ClusterSelection,
    ) -> Result<()> {
        let attachment = self
            .attachments
            .get_mut(attachment.0)
            .ok_or(VariantError::UnknownAttachment(attachment.0))?;
        attachment.interface.set_selection(selection);
        Ok(())
    }

    /// The attachment with the given id.
    pub fn attachment(&self, id: AttachmentId) -> Option<&Attachment> {
        self.attachments.get(id.0)
    }

    /// Mutable access to an attachment.
    pub fn attachment_mut(&mut self, id: AttachmentId) -> Option<&mut Attachment> {
        self.attachments.get_mut(id.0)
    }

    /// All attachments in attachment order.
    pub fn attachments(&self) -> &[Attachment] {
        &self.attachments
    }

    /// All attachment ids in order.
    pub fn attachment_ids(&self) -> Vec<AttachmentId> {
        (0..self.attachments.len()).map(AttachmentId).collect()
    }

    /// Number of attached interfaces.
    pub fn attachment_count(&self) -> usize {
        self.attachments.len()
    }

    /// Finds an attachment by interface name.
    pub fn attachment_by_name(&self, interface: &str) -> Option<AttachmentId> {
        self.attachments
            .iter()
            .position(|a| a.interface.name() == interface)
            .map(AttachmentId)
    }

    /// The interface of an attachment.
    pub fn interface(&self, id: AttachmentId) -> Option<&Interface> {
        self.attachment(id).map(Attachment::interface)
    }

    /// The variant space spanned by all attached interfaces.
    pub fn variant_space(&self) -> VariantSpace {
        VariantSpace::from_syms(
            self.attachments
                .iter()
                .map(|a| {
                    (
                        spi_model::Sym::intern(a.interface.name()),
                        a.interface
                            .clusters()
                            .iter()
                            .map(|c| spi_model::Sym::intern(c.name()))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Validates the whole representation.
    ///
    /// Checks, in order: the common graph, every interface (clusters, signatures,
    /// selection rules), that every interface port is bound to an existing channel of
    /// the common graph, that bound channels are free in the required direction (an
    /// input-port channel must not already have a reader, an output-port channel must
    /// not already have a writer), and that selection rules reference channels that
    /// exist in the common graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        self.common.validate()?;
        for attachment in &self.attachments {
            let interface = &attachment.interface;
            interface.validate()?;
            for port in interface.input_ports() {
                let channel = attachment.input_bindings.get(port).ok_or_else(|| {
                    VariantError::UnboundPort {
                        interface: interface.name().to_string(),
                        port: port.clone(),
                    }
                })?;
                let channel = self
                    .common
                    .channel_by_name(channel)
                    .ok_or_else(|| VariantError::UnknownName(channel.clone()))?;
                if self.common.reader_of(channel.id()).is_some() {
                    return Err(VariantError::Validation(format!(
                        "channel `{}` bound to input port `{port}` of `{}` already has a reader",
                        channel.name(),
                        interface.name()
                    )));
                }
            }
            for port in interface.output_ports() {
                let channel = attachment.output_bindings.get(port).ok_or_else(|| {
                    VariantError::UnboundPort {
                        interface: interface.name().to_string(),
                        port: port.clone(),
                    }
                })?;
                let channel = self
                    .common
                    .channel_by_name(channel)
                    .ok_or_else(|| VariantError::UnknownName(channel.clone()))?;
                if self.common.writer_of(channel.id()).is_some() {
                    return Err(VariantError::Validation(format!(
                        "channel `{}` bound to output port `{port}` of `{}` already has a writer",
                        channel.name(),
                        interface.name()
                    )));
                }
            }
            if let Some(selection) = interface.selection() {
                for channel in selection.referenced_channels() {
                    if self.common.channel_by_name(channel).is_none() {
                        return Err(VariantError::UnknownName(channel.to_string()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves a channel name of the common graph to its id.
    pub fn resolve_channel(&self, name: &str) -> Option<ChannelId> {
        self.common.channel_by_name(name).map(|c| c.id())
    }

    // --- flattening ---------------------------------------------------------------

    /// Produces the single-variant SPI graph obtained by replacing every interface by
    /// the cluster named in `choice`.
    ///
    /// Merged nodes are prefixed with `"{interface}/{cluster}/"` so that names stay
    /// unique and the provenance of every node remains visible.
    ///
    /// # Errors
    ///
    /// * [`VariantError::IncompleteChoice`] if `choice` misses an interface;
    /// * [`VariantError::UnknownName`] if it names a cluster the interface lacks;
    /// * any validation error of the resulting graph.
    pub fn flatten(&self, choice: &VariantChoice) -> Result<SpiGraph> {
        let mut graph = self.common.clone();
        for attachment in &self.attachments {
            let interface = &attachment.interface;
            let cluster_name = choice
                .cluster_for(interface.name())
                .ok_or_else(|| VariantError::IncompleteChoice(interface.name().to_string()))?;
            let cluster = interface
                .cluster(cluster_name)
                .ok_or_else(|| VariantError::UnknownName(cluster_name.to_string()))?;
            Self::splice_cluster(&mut graph, attachment, cluster)?;
        }
        graph.validate()?;
        Ok(graph)
    }

    /// Flattens every combination of the variant space, pairing each choice with its
    /// single-variant graph.
    ///
    /// Builds a [`crate::Flattener`] once and splices per-variant clusters into the
    /// shared common-graph skeleton, instead of re-cloning and re-validating the full
    /// graph per combination as [`flatten`](Self::flatten) does.
    ///
    /// # Errors
    ///
    /// Propagates validation errors found while building the flattener and the first
    /// per-combination splice error.
    pub fn flatten_all(&self) -> Result<Vec<(VariantChoice, SpiGraph)>> {
        let flattener = crate::flatten::Flattener::new(self)?;
        flattener
            .space()
            .choices_iter()
            .map(|choice| flattener.flatten(&choice).map(|graph| (choice, graph)))
            .collect()
    }

    fn splice_cluster(
        graph: &mut SpiGraph,
        attachment: &Attachment,
        cluster: &Cluster,
    ) -> Result<()> {
        let prefix = format!("{}/{}/", attachment.interface.name(), cluster.name());
        let map = graph.merge(cluster.graph(), &prefix)?;
        for port in cluster.ports() {
            let binding = match port.direction() {
                PortDirection::Input => attachment.input_bindings.get(port.name()),
                PortDirection::Output => attachment.output_bindings.get(port.name()),
            };
            let Some(channel_name) = binding else {
                return Err(VariantError::UnboundPort {
                    interface: attachment.interface.name().to_string(),
                    port: port.name().to_string(),
                });
            };
            let channel = graph
                .channel_by_name(channel_name)
                .ok_or_else(|| VariantError::UnknownName(channel_name.clone()))?
                .id();
            let process = *map
                .processes
                .get(&port.process())
                .ok_or_else(|| VariantError::UnknownName(port.name().to_string()))?;
            match port.direction() {
                PortDirection::Input => {
                    graph.set_reader(channel, process)?;
                    graph
                        .process_mut(process)
                        .expect("process was just merged")
                        .set_default_consumption(channel, port.rate());
                }
                PortDirection::Output => {
                    graph.set_writer(channel, process)?;
                    graph
                        .process_mut(process)
                        .expect("process was just merged")
                        .set_default_production(
                            channel,
                            spi_model::ProductionSpec::tagged(port.rate(), port.tags().clone()),
                        );
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for VariantSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "variant system `{}`: common part with {} processes / {} channels, {} interfaces",
            self.name(),
            self.common.process_count(),
            self.common.channel_count(),
            self.attachments.len()
        )?;
        for attachment in &self.attachments {
            writeln!(
                f,
                "  {} [{}]",
                attachment.interface, attachment.variant_type
            )?;
        }
        write!(f, "variant combinations: {}", self.variant_space().count())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::selection::SelectionRule;
    use spi_model::{ChannelKind, GraphBuilder, Interval};

    /// Builds the Figure 2 style system: common processes PA, PB around interface 1
    /// with two variants.
    pub(crate) fn figure2_like_system() -> VariantSystem {
        // Common part: PA -> C_in -> [interface] -> C_mid -> PB.
        let mut b = GraphBuilder::new("figure2");
        let pa = b.process("PA").latency(Interval::point(2)).build().unwrap();
        let pb = b.process("PB").latency(Interval::point(3)).build().unwrap();
        let c_in = b.channel("C_in", ChannelKind::Queue).unwrap();
        let c_mid = b.channel("C_mid", ChannelKind::Queue).unwrap();
        b.connect_output(pa, c_in, Interval::point(1)).unwrap();
        b.connect_input(c_mid, pb, Interval::point(1)).unwrap();
        let common = b.finish().unwrap();

        let cluster = |name: &str, stages: u64, latency: u64| {
            let mut cb = GraphBuilder::new(name);
            let mut prev = None;
            for stage in 0..stages {
                let p = cb
                    .process(format!("P{stage}"))
                    .latency(Interval::point(latency))
                    .build()
                    .unwrap();
                if let Some(prev) = prev {
                    let c = cb.channel(format!("c{stage}"), ChannelKind::Queue).unwrap();
                    cb.connect_output(prev, c, Interval::point(1)).unwrap();
                    cb.connect_input(c, p, Interval::point(1)).unwrap();
                }
                prev = Some(p);
            }
            let graph = cb.finish().unwrap();
            let mut cluster = Cluster::new(name, graph);
            cluster
                .add_input_port("i", "P0", Interval::point(1))
                .unwrap();
            cluster
                .add_output_port("o", format!("P{}", stages - 1).as_str(), Interval::point(1))
                .unwrap();
            cluster
        };

        let mut interface = Interface::new("interface1");
        interface.add_input_port("i");
        interface.add_output_port("o");
        interface.add_cluster(cluster("cluster1", 2, 4)).unwrap();
        interface.add_cluster(cluster("cluster2", 3, 2)).unwrap();

        let mut system = VariantSystem::new(common);
        let att = system
            .attach_interface(interface, VariantType::Production)
            .unwrap();
        system.bind_input(att, "i", "C_in").unwrap();
        system.bind_output(att, "o", "C_mid").unwrap();
        system
    }

    #[test]
    fn attach_and_query() {
        let system = figure2_like_system();
        assert_eq!(system.attachment_count(), 1);
        let id = system.attachment_by_name("interface1").unwrap();
        assert_eq!(system.interface(id).unwrap().cluster_count(), 2);
        assert_eq!(system.variant_space().count(), 2);
        assert!(system.validate().is_ok());
    }

    #[test]
    fn duplicate_interface_rejected() {
        let mut system = figure2_like_system();
        let err = system
            .attach_interface(Interface::new("interface1"), VariantType::Production)
            .unwrap_err();
        assert!(matches!(err, VariantError::Validation(_)));
    }

    #[test]
    fn binding_unknown_channel_or_port_rejected() {
        let mut system = figure2_like_system();
        let id = system.attachment_by_name("interface1").unwrap();
        assert!(matches!(
            system.bind_input(id, "i", "missing_channel"),
            Err(VariantError::UnknownName(_))
        ));
        assert!(matches!(
            system.bind_input(id, "missing_port", "C_in"),
            Err(VariantError::UnknownName(_))
        ));
        assert!(matches!(
            system.bind_input(AttachmentId(9), "i", "C_in"),
            Err(VariantError::UnknownAttachment(9))
        ));
    }

    #[test]
    fn validate_requires_all_ports_bound() {
        let mut system = figure2_like_system();
        // Re-create without the output binding.
        let id = system.attachment_by_name("interface1").unwrap();
        system.attachment_mut(id).unwrap().output_bindings.clear();
        let err = system.validate().unwrap_err();
        assert!(matches!(err, VariantError::UnboundPort { .. }));
    }

    #[test]
    fn validate_rejects_occupied_channel() {
        let mut system = figure2_like_system();
        // Bind the input port to the channel PB already reads.
        let id = system.attachment_by_name("interface1").unwrap();
        system.bind_input(id, "i", "C_mid").unwrap();
        let err = system.validate().unwrap_err();
        assert!(matches!(err, VariantError::Validation(_)));
    }

    #[test]
    fn flatten_produces_single_variant_graphs() {
        let system = figure2_like_system();
        let choice = VariantChoice::new().with("interface1", "cluster1");
        let app1 = system.flatten(&choice).unwrap();
        // Common processes plus the two cluster processes.
        assert_eq!(app1.process_count(), 2 + 2);
        assert!(app1.process_by_name("interface1/cluster1/P0").is_some());
        // The spliced processes are wired to the attachment channels.
        let c_in = app1.channel_by_name("C_in").unwrap().id();
        let reader = app1.reader_of(c_in).unwrap();
        assert_eq!(
            app1.process(reader).unwrap().name(),
            "interface1/cluster1/P0"
        );
        let c_mid = app1.channel_by_name("C_mid").unwrap().id();
        assert!(app1.writer_of(c_mid).is_some());
        assert!(app1.validate().is_ok());

        let choice2 = VariantChoice::new().with("interface1", "cluster2");
        let app2 = system.flatten(&choice2).unwrap();
        assert_eq!(app2.process_count(), 2 + 3);
    }

    #[test]
    fn flatten_all_enumerates_every_variant() {
        let system = figure2_like_system();
        let all = system.flatten_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_ne!(all[0].1.process_count(), all[1].1.process_count());
    }

    #[test]
    fn flatten_rejects_incomplete_or_wrong_choice() {
        let system = figure2_like_system();
        assert!(matches!(
            system.flatten(&VariantChoice::new()),
            Err(VariantError::IncompleteChoice(_))
        ));
        assert!(matches!(
            system.flatten(&VariantChoice::new().with("interface1", "ghost")),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn selection_rules_are_validated_against_common_channels() {
        let mut system = figure2_like_system();
        let id = system.attachment_by_name("interface1").unwrap();
        system
            .set_selection(
                id,
                ClusterSelection::new().with_rule(SelectionRule::tag_equals(
                    "rho1",
                    "no_such_channel",
                    "V1",
                    "cluster1",
                )),
            )
            .unwrap();
        let err = system.validate().unwrap_err();
        assert!(matches!(err, VariantError::UnknownName(_)));
    }

    #[test]
    fn display_summarises_the_system() {
        let system = figure2_like_system();
        let text = system.to_string();
        assert!(text.contains("variant system `figure2`"));
        assert!(text.contains("variant combinations: 2"));
    }
}
