//! Interfaces (Definition 2 of the paper).
//!
//! An interface is a port signature together with the set of clusters associated with
//! it. Each associated cluster represents exactly one function variant; all clusters
//! must match the interface's input and output ports, otherwise they could not be
//! exchanged for one another.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::cluster::Cluster;
use crate::error::VariantError;
use crate::selection::ClusterSelection;
use crate::Result;

/// An interface: a socket for mutually exclusive function variants (Definition 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    name: String,
    input_ports: Vec<String>,
    output_ports: Vec<String>,
    clusters: Vec<Cluster>,
    selection: Option<ClusterSelection>,
    /// Index of the currently selected cluster (the `cur` parameter of Definition 3).
    current: Option<usize>,
}

impl Interface {
    /// Creates an interface with no ports or clusters yet.
    pub fn new(name: impl Into<String>) -> Self {
        Interface {
            name: name.into(),
            input_ports: Vec::new(),
            output_ports: Vec::new(),
            clusters: Vec::new(),
            selection: None,
            current: None,
        }
    }

    /// Interface name (unique within a [`crate::VariantSystem`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an input port.
    pub fn add_input_port(&mut self, name: impl Into<String>) -> &mut Self {
        self.input_ports.push(name.into());
        self
    }

    /// Declares an output port.
    pub fn add_output_port(&mut self, name: impl Into<String>) -> &mut Self {
        self.output_ports.push(name.into());
        self
    }

    /// Input port names in declaration order.
    pub fn input_ports(&self) -> &[String] {
        &self.input_ports
    }

    /// Output port names in declaration order.
    pub fn output_ports(&self) -> &[String] {
        &self.output_ports
    }

    /// Associates a cluster (one function variant) with the interface.
    ///
    /// # Errors
    ///
    /// * [`VariantError::DuplicateCluster`] if a cluster with the same name exists;
    /// * [`VariantError::SignatureMismatch`] if the cluster's ports do not match the
    ///   interface's ports (Definition 2 requires an exact match).
    pub fn add_cluster(&mut self, cluster: Cluster) -> Result<()> {
        if self.clusters.iter().any(|c| c.name() == cluster.name()) {
            return Err(VariantError::DuplicateCluster(cluster.name().to_string()));
        }
        self.check_signature(&cluster)?;
        self.clusters.push(cluster);
        Ok(())
    }

    fn check_signature(&self, cluster: &Cluster) -> Result<()> {
        let mismatch = |detail: String| {
            Err(VariantError::SignatureMismatch {
                interface: self.name.clone(),
                cluster: cluster.name().to_string(),
                detail,
            })
        };
        for port in &self.input_ports {
            match cluster.port(port) {
                None => return mismatch(format!("missing input port `{port}`")),
                Some(p) if p.direction() != crate::PortDirection::Input => {
                    return mismatch(format!("port `{port}` has the wrong direction"))
                }
                Some(_) => {}
            }
        }
        for port in &self.output_ports {
            match cluster.port(port) {
                None => return mismatch(format!("missing output port `{port}`")),
                Some(p) if p.direction() != crate::PortDirection::Output => {
                    return mismatch(format!("port `{port}` has the wrong direction"))
                }
                Some(_) => {}
            }
        }
        let expected = self.input_ports.len() + self.output_ports.len();
        if cluster.ports().len() != expected {
            return mismatch(format!(
                "cluster has {} ports, interface declares {expected}",
                cluster.ports().len()
            ));
        }
        Ok(())
    }

    /// The associated clusters in association order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of associated clusters (= number of function variants).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Looks up a cluster by name.
    pub fn cluster(&self, name: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.name() == name)
    }

    /// Index of a cluster by name.
    pub fn cluster_index(&self, name: &str) -> Option<usize> {
        self.clusters.iter().position(|c| c.name() == name)
    }

    /// Attaches the cluster selection function (Definition 3).
    pub fn set_selection(&mut self, selection: ClusterSelection) {
        self.selection = Some(selection);
    }

    /// The cluster selection function, if any.
    pub fn selection(&self) -> Option<&ClusterSelection> {
        self.selection.as_ref()
    }

    /// The `cur` parameter: index of the currently selected cluster, if any.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The currently selected cluster, if any.
    pub fn current_cluster(&self) -> Option<&Cluster> {
        self.current.and_then(|i| self.clusters.get(i))
    }

    /// Records a selection (updates the `cur` parameter).
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::UnknownName`] if no cluster with that name exists.
    pub fn select(&mut self, cluster: &str) -> Result<usize> {
        let index = self
            .cluster_index(cluster)
            .ok_or_else(|| VariantError::UnknownName(cluster.to_string()))?;
        self.current = Some(index);
        Ok(index)
    }

    /// Validates the interface: all clusters validate, and the selection function (if
    /// present) only references associated clusters.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        for cluster in &self.clusters {
            cluster.validate()?;
            self.check_signature(cluster)?;
        }
        if let Some(selection) = &self.selection {
            for rule in selection.rules() {
                if self.cluster(rule.cluster()).is_none() {
                    return Err(VariantError::UnknownClusterInRule {
                        rule: rule.name().to_string(),
                        cluster: rule.cluster().to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interface `{}` ({} in, {} out, {} variants)",
            self.name,
            self.input_ports.len(),
            self.output_ports.len(),
            self.clusters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionRule;
    use spi_model::{GraphBuilder, Interval};

    fn simple_cluster(name: &str, latency: u64) -> Cluster {
        let mut b = GraphBuilder::new(name);
        b.process("P")
            .latency(Interval::point(latency))
            .build()
            .unwrap();
        let mut cluster = Cluster::new(name, b.finish().unwrap());
        cluster
            .add_input_port("i", "P", Interval::point(1))
            .unwrap();
        cluster
            .add_output_port("o", "P", Interval::point(1))
            .unwrap();
        cluster
    }

    fn interface_with_two_variants() -> Interface {
        let mut interface = Interface::new("interface1");
        interface.add_input_port("i");
        interface.add_output_port("o");
        interface
            .add_cluster(simple_cluster("cluster1", 2))
            .unwrap();
        interface
            .add_cluster(simple_cluster("cluster2", 5))
            .unwrap();
        interface
    }

    #[test]
    fn clusters_with_matching_signature_are_accepted() {
        let interface = interface_with_two_variants();
        assert_eq!(interface.cluster_count(), 2);
        assert!(interface.validate().is_ok());
    }

    #[test]
    fn duplicate_cluster_names_rejected() {
        let mut interface = interface_with_two_variants();
        let err = interface
            .add_cluster(simple_cluster("cluster1", 9))
            .unwrap_err();
        assert!(matches!(err, VariantError::DuplicateCluster(_)));
    }

    #[test]
    fn signature_mismatch_is_rejected() {
        let mut interface = Interface::new("if");
        interface.add_input_port("i");
        interface.add_output_port("o");
        interface.add_output_port("o2");
        let err = interface.add_cluster(simple_cluster("c", 1)).unwrap_err();
        assert!(matches!(err, VariantError::SignatureMismatch { .. }));
    }

    #[test]
    fn extra_ports_on_cluster_are_rejected() {
        let mut interface = Interface::new("if");
        interface.add_input_port("i");
        // Cluster has ports i and o, interface only declares i.
        let err = interface.add_cluster(simple_cluster("c", 1)).unwrap_err();
        assert!(matches!(err, VariantError::SignatureMismatch { .. }));
    }

    #[test]
    fn wrong_direction_is_rejected() {
        let mut interface = Interface::new("if");
        // Interface declares `o` as an *input* port, the cluster has it as output.
        interface.add_input_port("o");
        interface.add_input_port("i");
        let err = interface.add_cluster(simple_cluster("c", 1)).unwrap_err();
        assert!(matches!(err, VariantError::SignatureMismatch { .. }));
    }

    #[test]
    fn select_updates_cur_parameter() {
        let mut interface = interface_with_two_variants();
        assert_eq!(interface.current(), None);
        let index = interface.select("cluster2").unwrap();
        assert_eq!(index, 1);
        assert_eq!(interface.current(), Some(1));
        assert_eq!(interface.current_cluster().unwrap().name(), "cluster2");
        assert!(matches!(
            interface.select("nope"),
            Err(VariantError::UnknownName(_))
        ));
    }

    #[test]
    fn selection_rules_must_reference_known_clusters() {
        let mut interface = interface_with_two_variants();
        interface.set_selection(
            ClusterSelection::new()
                .with_rule(SelectionRule::tag_equals("rho1", "CV", "V1", "cluster1"))
                .with_rule(SelectionRule::tag_equals("rho9", "CV", "V9", "ghost")),
        );
        let err = interface.validate().unwrap_err();
        assert!(matches!(err, VariantError::UnknownClusterInRule { .. }));
    }
}
