//! # spi-variants
//!
//! The primary contribution of *"Representation of Function Variants for Embedded System
//! Optimization and Synthesis"* (Richter, Ziegenbein, Ernst, Thiele, Teich — DAC 1999):
//! a coherent representation of **function variants** and their **selection mechanisms**
//! on top of the SPI process-network model provided by [`spi_model`].
//!
//! Many embedded systems share a fixed core function and differ only in mutually
//! exclusive **function variants** (multi-standard TV sets, emission-law dependent
//! engine controllers, protocol stacks). This crate adds four constructs to the SPI
//! model, following the paper's Definitions 1–4:
//!
//! | Construct | Type | Paper |
//! |---|---|---|
//! | Cluster | [`Cluster`] | Def. 1 — an exchangeable, connected subgraph with ports |
//! | Interface | [`Interface`] | Def. 2 — a port signature plus the set of associated clusters (one per variant) |
//! | Cluster selection | [`ClusterSelection`] | Def. 3 — tag-predicate rules, configuration latency, `cur` parameter |
//! | Configurations | [`ConfigurationSet`] | Def. 4 — partition of an abstracted process's modes by originating cluster, with reconfiguration latency |
//!
//! The top-level type is [`VariantSystem`]: a common SPI graph plus interfaces attached
//! to it. From a [`VariantSystem`] you can
//!
//! * **flatten** it into one plain [`spi_model::SpiGraph`] per variant combination
//!   ([`VariantSystem::flatten`], [`VariantSpace`]), the representation used by
//!   per-application synthesis and by production/run-time variant selection;
//! * **abstract** an interface into a single process with [`ConfigurationSet`]s
//!   ([`VariantSystem::abstract_interface`]), the representation used for dynamic
//!   variant selection and reconfigurable architectures;
//! * validate the representation (port matching, selection rules, configuration
//!   partitions) and reason about reconfiguration with [`ReconfigurationTracker`].
//!
//! # Example
//!
//! A run-time variant selection in the style of Figure 3 of the paper:
//!
//! ```rust
//! use spi_model::{ChannelKind, GraphBuilder, Interval};
//! use spi_variants::{Cluster, Interface, VariantSystem, VariantType, SelectionRule, ClusterSelection};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Common part: the user process writing the variant-selection token on CV.
//! let mut common = GraphBuilder::new("figure3");
//! let user = common.process("PUser").latency(Interval::point(1)).build()?;
//! let cv = common.channel("CV", ChannelKind::Register)?;
//! let cin = common.channel("CIn", ChannelKind::Queue)?;
//! let cout = common.channel("COut", ChannelKind::Queue)?;
//! common.connect_output(user, cv, Interval::point(1))?;
//! let common = common.finish()?;
//!
//! // Two variants of the processing chain behind interface 1.
//! let cluster = |name: &str, latency: u64| -> Result<Cluster, Box<dyn std::error::Error>> {
//!     let mut b = GraphBuilder::new(name);
//!     let p = b.process("P").latency(Interval::point(latency)).build()?;
//!     let g = b.finish()?;
//!     let mut c = Cluster::new(name, g);
//!     c.add_input_port("i", "P", Interval::point(1))?;
//!     c.add_output_port("o", "P", Interval::point(1))?;
//!     Ok(c)
//! };
//!
//! let mut interface = Interface::new("interface1");
//! interface.add_input_port("i");
//! interface.add_output_port("o");
//! interface.add_cluster(cluster("cluster1", 2)?)?;
//! interface.add_cluster(cluster("cluster2", 5)?)?;
//!
//! let mut system = VariantSystem::new(common);
//! let att = system.attach_interface(interface, VariantType::RunTime)?;
//! system.bind_input(att, "i", "CIn")?;
//! system.bind_output(att, "o", "COut")?;
//! system.set_selection(att, ClusterSelection::new()
//!     .with_rule(SelectionRule::tag_equals("rho1", "CV", "V1", "cluster1"))
//!     .with_rule(SelectionRule::tag_equals("rho2", "CV", "V2", "cluster2")))?;
//! system.validate()?;
//!
//! // Deriving the two applications: one flat SPI graph per variant. The space is
//! // enumerated lazily — `choices_iter` never materializes the cross product.
//! assert_eq!(system.variant_space().count(), 2);
//! let first = system.variant_space().choices_iter().next().unwrap();
//! let app1 = system.flatten(&first)?;
//! assert!(app1.process_by_name("interface1/cluster1/P").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod configuration;
pub mod error;
pub mod extraction;
pub mod flatten;
pub mod interface;
pub mod reconfiguration;
pub mod selection;
pub mod space;
pub mod system;
pub mod variant;

pub use cluster::{Cluster, Port, PortDirection};
pub use configuration::{Configuration, ConfigurationMap, ConfigurationSet};
pub use error::VariantError;
pub use extraction::{AbstractedSystem, ExtractionPolicy};
pub use flatten::{DeltaFlattener, FlattenStats, Flattener};
pub use interface::Interface;
pub use reconfiguration::{ReconfigurationEvent, ReconfigurationTracker};
pub use selection::{ClusterSelection, SelectionRule};
pub use space::{ChoicesIter, DeltaChoicesIter, VariantChoice, VariantSpace};
pub use system::{AttachmentId, VariantSystem};
pub use variant::VariantType;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, VariantError>;
