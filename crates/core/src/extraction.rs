//! Parameter extraction: abstracting an interface and its clusters into one process
//! with configurations (Section 4 of the paper).
//!
//! For dynamic variant selection the paper proposes to abstract clusters to processes
//! and to reuse the process-mode machinery: the set of clusters is mapped to a set of
//! process modes, the cluster selection function becomes part of the activation
//! function, and the originating cluster of each mode is recorded in a
//! [`ConfigurationSet`] so that reconfiguration steps can be detected and their latency
//! accounted for.
//!
//! The extraction of process parameters (latency, consumption/production rates,
//! activation rules) from the cluster contents can be done at different levels of
//! detail; this module offers two [`ExtractionPolicy`] levels:
//!
//! * [`Coarse`](ExtractionPolicy::Coarse) — one mode per cluster; the latency is the
//!   cluster's port-to-port latency hull.
//! * [`PerEntryMode`](ExtractionPolicy::PerEntryMode) — one mode per mode of the
//!   cluster's entry process (the process bound to its first input port), so that a
//!   single cluster may map to several modes, as in the paper's video example.

use std::collections::BTreeMap;
use std::fmt;

use spi_model::{
    ActivationFunction, ActivationRule, Interval, LatencyAnalysis, Predicate, ProcessId,
    ProductionSpec, SpiGraph,
};

use crate::cluster::Cluster;
use crate::configuration::{Configuration, ConfigurationMap, ConfigurationSet};
use crate::error::VariantError;
use crate::system::{AttachmentId, VariantSystem};
use crate::Result;

/// How much detail the extraction keeps when mapping a cluster to process modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtractionPolicy {
    /// One extracted mode per cluster (coarsest abstraction).
    #[default]
    Coarse,
    /// One extracted mode per mode of the cluster's entry process (the process bound to
    /// the cluster's first input port). Falls back to [`Coarse`](Self::Coarse) for
    /// clusters without input ports.
    PerEntryMode,
}

impl fmt::Display for ExtractionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractionPolicy::Coarse => write!(f, "coarse"),
            ExtractionPolicy::PerEntryMode => write!(f, "per-entry-mode"),
        }
    }
}

/// Result of abstracting one interface of a [`VariantSystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractedSystem {
    /// The common graph with the interface replaced by a single process.
    pub graph: SpiGraph,
    /// The abstracted process (named `"{interface}_var"`).
    pub process: ProcessId,
    /// Configuration annotations: one entry for the abstracted process.
    pub configurations: ConfigurationMap,
}

impl AbstractedSystem {
    /// The configuration set of the abstracted process.
    pub fn configuration_set(&self) -> &ConfigurationSet {
        self.configurations
            .get(&self.process)
            .expect("abstracted process always has a configuration set")
    }
}

/// One extracted mode before it is added to the abstracted process.
struct ExtractedMode {
    name: String,
    latency: Interval,
}

fn extract_modes(cluster: &Cluster, policy: ExtractionPolicy) -> Result<Vec<ExtractedMode>> {
    match policy {
        ExtractionPolicy::Coarse => Ok(vec![ExtractedMode {
            name: cluster.name().to_string(),
            latency: cluster.latency_estimate()?,
        }]),
        ExtractionPolicy::PerEntryMode => {
            let Some(entry_port) = cluster.input_ports().next() else {
                return extract_modes(cluster, ExtractionPolicy::Coarse);
            };
            let entry = cluster
                .graph()
                .process(entry_port.process())
                .ok_or_else(|| VariantError::UnknownPortProcess {
                    cluster: cluster.name().to_string(),
                    process: entry_port.process().to_string(),
                })?;
            // Latency of the rest of the cluster (from the entry's successors to the
            // output ports), added to each entry-mode latency.
            let analysis = LatencyAnalysis::new(cluster.graph());
            let mut remainder: Option<Interval> = None;
            for successor in cluster.graph().successors(entry.id()) {
                for output in cluster.output_ports() {
                    if let Ok(interval) = analysis.end_to_end(successor, output.process()) {
                        remainder = Some(match remainder {
                            None => interval,
                            Some(r) => r.hull(interval),
                        });
                    }
                }
            }
            let remainder = remainder.unwrap_or_else(Interval::zero);
            Ok(entry
                .modes()
                .iter()
                .map(|mode| ExtractedMode {
                    name: format!("{}.{}", cluster.name(), mode.name()),
                    latency: mode.latency().add(remainder),
                })
                .collect())
        }
    }
}

impl VariantSystem {
    /// Replaces the interface of `attachment` by a single process `"{interface}_var"`
    /// whose modes are extracted from the interface's clusters, together with the
    /// configuration set recording which modes belong to which variant.
    ///
    /// The activation function of the abstracted process follows the paper's pattern
    ///
    /// ```text
    /// a1 : (CIn.num >= x) && (CV.num >= 1) && ('V1' in CV.tag) -> conf1 mode
    /// a2 : (CIn.num >= y) && (CV.num >= 1) && ('V2' in CV.tag) -> conf2 mode
    /// ```
    ///
    /// where the token requirements `x`, `y` come from the per-port rates of the
    /// respective cluster and the tag conditions come from the interface's cluster
    /// selection function. Channels referenced by selection rules become additional
    /// inputs of the abstracted process.
    ///
    /// Other attachments are left untouched; call this method repeatedly (re-wrapping
    /// the result) to abstract several interfaces.
    ///
    /// # Errors
    ///
    /// Returns an error if the attachment does not exist, a port is unbound, a
    /// referenced channel is missing, or the resulting graph fails validation.
    pub fn abstract_interface(
        &self,
        attachment: AttachmentId,
        policy: ExtractionPolicy,
    ) -> Result<AbstractedSystem> {
        let attachment_ref = self
            .attachment(attachment)
            .ok_or(VariantError::UnknownAttachment(attachment.index()))?;
        let interface = attachment_ref.interface();
        let mut graph = self.common().clone();
        let pvar = graph.new_process(format!("{}_var", interface.name()))?;

        // Wire the abstracted process to the attachment channels.
        let mut input_channels: BTreeMap<String, spi_model::ChannelId> = BTreeMap::new();
        let mut output_channels: BTreeMap<String, spi_model::ChannelId> = BTreeMap::new();
        for port in interface.input_ports() {
            let name =
                attachment_ref
                    .input_binding(port)
                    .ok_or_else(|| VariantError::UnboundPort {
                        interface: interface.name().to_string(),
                        port: port.clone(),
                    })?;
            let id = graph
                .channel_by_name(name)
                .ok_or_else(|| VariantError::UnknownName(name.to_string()))?
                .id();
            graph.set_reader(id, pvar)?;
            input_channels.insert(port.clone(), id);
        }
        for port in interface.output_ports() {
            let name =
                attachment_ref
                    .output_binding(port)
                    .ok_or_else(|| VariantError::UnboundPort {
                        interface: interface.name().to_string(),
                        port: port.clone(),
                    })?;
            let id = graph
                .channel_by_name(name)
                .ok_or_else(|| VariantError::UnknownName(name.to_string()))?
                .id();
            graph.set_writer(id, pvar)?;
            output_channels.insert(port.clone(), id);
        }

        // Channels referenced by the selection function become inputs of the process
        // (they carry the variant-selection tokens, e.g. CV in Figure 3).
        let mut selection_channels: BTreeMap<String, spi_model::ChannelId> = BTreeMap::new();
        if let Some(selection) = interface.selection() {
            for name in selection.referenced_channels() {
                let id = graph
                    .channel_by_name(name)
                    .ok_or_else(|| VariantError::UnknownName(name.to_string()))?
                    .id();
                if graph.reader_of(id) != Some(pvar) {
                    graph.set_reader(id, pvar)?;
                }
                selection_channels.insert(name.to_string(), id);
            }
        }

        // Extract modes cluster by cluster and build the configuration set plus the
        // activation function.
        let mut configuration_set = ConfigurationSet::new();
        let mut activation = ActivationFunction::new();
        for cluster in interface.clusters() {
            let extracted = extract_modes(cluster, policy)?;
            let mut mode_ids = Vec::new();
            for em in extracted {
                let process = graph.process_mut(pvar).expect("abstracted process exists");
                let mode_id = process.add_mode_with(em.name.clone(), em.latency, |mode| {
                    for (port_name, channel) in &input_channels {
                        if let Some(port) = cluster.port(port_name) {
                            mode.set_consumption(*channel, port.rate());
                        }
                    }
                    for (port_name, channel) in &output_channels {
                        if let Some(port) = cluster.port(port_name) {
                            mode.set_production(
                                *channel,
                                ProductionSpec::tagged(port.rate(), port.tags().clone()),
                            );
                        }
                    }
                });
                mode_ids.push(mode_id);

                // Activation rule: token requirements on the data inputs plus the
                // selection predicate for this cluster.
                let mut predicate = Predicate::All(Vec::new());
                for (port_name, channel) in &input_channels {
                    if let Some(port) = cluster.port(port_name) {
                        if port.rate().lo() > 0 {
                            predicate =
                                predicate.and(Predicate::min_tokens(*channel, port.rate().lo()));
                        }
                    }
                }
                if let Some(selection) = interface.selection() {
                    if let Some(rule) = selection
                        .rules()
                        .iter()
                        .find(|rule| rule.cluster() == cluster.name())
                    {
                        let channel = selection_channels
                            .get(rule.channel())
                            .copied()
                            .ok_or_else(|| VariantError::UnknownName(rule.channel().to_string()))?;
                        predicate = predicate.and(rule.predicate(channel));
                    }
                }
                activation.push(ActivationRule::new(
                    format!("a_{}", em.name),
                    predicate,
                    mode_id,
                ));
            }
            let latency = interface
                .selection()
                .map(|s| s.configuration_latency(cluster.name()))
                .unwrap_or(0);
            configuration_set.push(Configuration::new(cluster.name(), mode_ids, latency));
        }

        let process = graph.process_mut(pvar).expect("abstracted process exists");
        process.set_activation(activation);
        configuration_set.validate_against(process)?;

        graph.validate()?;
        let mut configurations = ConfigurationMap::new();
        configurations.insert(pvar, configuration_set);
        Ok(AbstractedSystem {
            graph,
            process: pvar,
            configurations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::interface::Interface;
    use crate::selection::{ClusterSelection, SelectionRule};
    use crate::space::VariantChoice;
    use crate::variant::VariantType;
    use spi_model::activation::ChannelSnapshot;
    use spi_model::{ChannelKind, GraphBuilder, Tag};

    /// Figure 3 style system: PUser writes the selection token on CV; the interface sits
    /// between CIn and COut.
    fn figure3_system(per_mode: bool) -> VariantSystem {
        let mut b = GraphBuilder::new("figure3");
        let user = b
            .process("PUser")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let source = b
            .process("PSrc")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let sink = b
            .process("PSink")
            .latency(Interval::point(1))
            .build()
            .unwrap();
        let cv = b.channel("CV", ChannelKind::Register).unwrap();
        let cin = b.channel("CIn", ChannelKind::Queue).unwrap();
        let cout = b.channel("COut", ChannelKind::Queue).unwrap();
        b.connect_output_tagged(
            user,
            cv,
            Interval::point(1),
            spi_model::TagSet::singleton("V1"),
        )
        .unwrap();
        b.connect_output(source, cin, Interval::point(1)).unwrap();
        b.connect_input(cout, sink, Interval::point(1)).unwrap();
        let common = b.finish().unwrap();

        let make_cluster = |name: &str, modes: &[(u64, u64)], consume: u64| {
            let mut cb = GraphBuilder::new(name);
            let mut pb = cb.process("P");
            for (index, (lo, hi)) in modes.iter().enumerate() {
                pb = pb.mode(spi_model::ModeSpec::new(
                    format!("m{index}"),
                    Interval::new(*lo, *hi).unwrap(),
                ));
            }
            pb.build().unwrap();
            let graph = cb.finish().unwrap();
            let mut cluster = Cluster::new(name, graph);
            cluster
                .add_input_port("i", "P", Interval::point(consume))
                .unwrap();
            cluster
                .add_output_port("o", "P", Interval::point(1))
                .unwrap();
            cluster
        };

        let mut interface = Interface::new("interface1");
        interface.add_input_port("i");
        interface.add_output_port("o");
        let modes1: &[(u64, u64)] = if per_mode {
            &[(2, 2), (4, 4)]
        } else {
            &[(2, 2)]
        };
        let modes2: &[(u64, u64)] = if per_mode {
            &[(5, 5), (6, 6), (7, 7)]
        } else {
            &[(5, 5)]
        };
        interface
            .add_cluster(make_cluster("cluster1", modes1, 1))
            .unwrap();
        interface
            .add_cluster(make_cluster("cluster2", modes2, 3))
            .unwrap();

        let mut system = VariantSystem::new(common);
        let att = system
            .attach_interface(interface, VariantType::Dynamic)
            .unwrap();
        system.bind_input(att, "i", "CIn").unwrap();
        system.bind_output(att, "o", "COut").unwrap();
        system
            .set_selection(
                att,
                ClusterSelection::new()
                    .with_rule(SelectionRule::tag_equals("rho1", "CV", "V1", "cluster1"))
                    .with_rule(SelectionRule::tag_equals("rho2", "CV", "V2", "cluster2"))
                    .with_configuration_latency("cluster1", 10)
                    .with_configuration_latency("cluster2", 25),
            )
            .unwrap();
        system.validate().unwrap();
        system
    }

    #[test]
    fn coarse_abstraction_has_one_mode_per_cluster() {
        let system = figure3_system(false);
        let att = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(att, ExtractionPolicy::Coarse)
            .unwrap();
        let process = abstracted.graph.process(abstracted.process).unwrap();
        assert_eq!(process.name(), "interface1_var");
        assert_eq!(process.mode_count(), 2);
        let set = abstracted.configuration_set();
        assert_eq!(set.len(), 2);
        assert_eq!(set.configuration("cluster1").unwrap().mode_count(), 1);
        assert_eq!(
            set.configuration("cluster1")
                .unwrap()
                .reconfiguration_latency(),
            10
        );
        assert_eq!(
            set.configuration("cluster2")
                .unwrap()
                .reconfiguration_latency(),
            25
        );
        assert!(abstracted.graph.validate().is_ok());
    }

    #[test]
    fn per_entry_mode_maps_one_cluster_to_several_modes() {
        // Mirrors the paper's example: "the extraction process results in two process
        // modes for cluster 1 and three modes for cluster 2".
        let system = figure3_system(true);
        let att = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(att, ExtractionPolicy::PerEntryMode)
            .unwrap();
        let process = abstracted.graph.process(abstracted.process).unwrap();
        assert_eq!(process.mode_count(), 2 + 3);
        let set = abstracted.configuration_set();
        assert_eq!(set.configuration("cluster1").unwrap().mode_count(), 2);
        assert_eq!(set.configuration("cluster2").unwrap().mode_count(), 3);
    }

    #[test]
    fn activation_follows_selection_tag_and_token_requirements() {
        let system = figure3_system(false);
        let att = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(att, ExtractionPolicy::Coarse)
            .unwrap();
        let graph = &abstracted.graph;
        let process = graph.process(abstracted.process).unwrap();
        let cin = graph.channel_by_name("CIn").unwrap().id();
        let cv = graph.channel_by_name("CV").unwrap().id();

        // 'V1' on CV and one token on CIn activates the cluster1 mode (x = 1).
        let mut view = ChannelSnapshot::new();
        view.set(cin, 1, vec![]);
        view.set(cv, 1, vec![Tag::new("V1")]);
        let mode = process.activation().select(&view).unwrap();
        assert_eq!(
            abstracted.configuration_set().configuration_of_mode(mode),
            Some(0)
        );

        // 'V2' needs three tokens on CIn (y = 3): with one token nothing activates.
        view.set(cv, 1, vec![Tag::new("V2")]);
        assert_eq!(process.activation().select(&view), None);
        view.set(cin, 3, vec![]);
        let mode = process.activation().select(&view).unwrap();
        assert_eq!(
            abstracted.configuration_set().configuration_of_mode(mode),
            Some(1)
        );
    }

    #[test]
    fn abstracted_process_reads_selection_channel() {
        let system = figure3_system(false);
        let att = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(att, ExtractionPolicy::Coarse)
            .unwrap();
        let cv = abstracted.graph.channel_by_name("CV").unwrap().id();
        assert_eq!(abstracted.graph.reader_of(cv), Some(abstracted.process));
    }

    #[test]
    fn coarse_latency_matches_cluster_estimate() {
        let system = figure3_system(false);
        let att = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(att, ExtractionPolicy::Coarse)
            .unwrap();
        let process = abstracted.graph.process(abstracted.process).unwrap();
        // cluster1: latency 2, cluster2: latency 5 — hull per mode, not merged.
        let latencies: Vec<Interval> = process.modes().iter().map(|m| m.latency()).collect();
        assert!(latencies.contains(&Interval::point(2)));
        assert!(latencies.contains(&Interval::point(5)));
    }

    #[test]
    fn abstraction_and_flattening_describe_the_same_variants() {
        let system = figure3_system(false);
        // Flattening still works on the same system.
        let flat = system
            .flatten(&VariantChoice::new().with("interface1", "cluster2"))
            .unwrap();
        assert!(flat.process_by_name("interface1/cluster2/P").is_some());
        // And abstraction yields exactly as many configurations as there are variants.
        let att = system.attachment_by_name("interface1").unwrap();
        let abstracted = system
            .abstract_interface(att, ExtractionPolicy::Coarse)
            .unwrap();
        assert_eq!(
            abstracted.configuration_set().len(),
            system.interface(att).unwrap().cluster_count()
        );
    }

    #[test]
    fn unknown_attachment_is_rejected() {
        let system = figure3_system(false);
        let err = system
            .abstract_interface(AttachmentId::from_raw(9), ExtractionPolicy::Coarse)
            .unwrap_err();
        assert!(matches!(err, VariantError::UnknownAttachment(9)));
    }
}
