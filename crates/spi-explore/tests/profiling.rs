//! End-to-end acceptance of the profiling plane on real runs:
//!
//! 1. the **profile** on a completed 8-worker multi-tenant run accounts for
//!    the workers' busy time — summed per-phase self-time lands within 10%
//!    of each busy worker's wall-clock span, the critical path of every job
//!    is non-empty and names a straggler lease, and the folded stacks fold
//!    real phase chains;
//! 2. the **Chrome trace export** round-trips through the strict JSON parser
//!    with every span's ids resolvable against the waitgraph node model
//!    (`job:`/`shard:`/`lease:`/`tenant:`/`worker:` conventions over real
//!    submitted work), and a compiled evaluator contributes nested
//!    `compile_lower`/`partition_search` spans;
//! 3. **quiesce** persists `profile.json` beside `metrics.json` — both
//!    stamped with the `captured_unix_ms`/`uptime_ns` capture header — and
//!    a `--no-spans` service writes no profile and records nothing.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_explore::{
    Evaluation, ExplorationService, FnEvaluator, JobSpec, PartitionEvaluator, PhaseId,
    ServiceConfig, Span,
};
use spi_model::json::JsonValue;
use spi_store::sched::HedgeConfig;
use spi_workloads::scaling_system;

fn slow_evaluator(delay: Duration) -> Arc<dyn spi_explore::Evaluator> {
    Arc::new(FnEvaluator::new(move |index, _choice, _graph| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(Evaluation {
            cost: ((index as u64) * 131) % 251,
            feasible: true,
            detail: String::new(),
        })
    }))
}

/// Waits until `expected` drain spans have landed in the recorder's rings.
/// The final shard commit (which wakes `wait`) happens *inside* the drain,
/// so its enclosing span exits moments after the job turns terminal.
fn settle_spans(service: &ExplorationService, expected: usize) -> Vec<Span> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let spans = service.spans_since(0).spans;
        let drains = spans
            .iter()
            .filter(|span| span.phase == PhaseId::DrainShard)
            .count();
        if drains >= expected {
            return spans;
        }
        assert!(Instant::now() < deadline, "drain spans never landed");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn profile_accounts_for_worker_busy_time_on_a_multi_tenant_run() {
    let service = ExplorationService::start(ServiceConfig {
        workers: 8,
        batch_size: 8,
        hedge: HedgeConfig::disabled(),
        watchdog_interval: None,
        ..ServiceConfig::default()
    });
    let system = scaling_system(6, 2).unwrap(); // 64 variants per job
    let mut jobs = Vec::new();
    for tenant in ["render-farm", "nightly-ci"] {
        let spec = JobSpec {
            name: format!("{tenant}-job"),
            shard_count: 8,
            top_k: 4,
            tenant: tenant.to_string(),
            use_cache: false,
            ..JobSpec::default()
        };
        jobs.push(
            service
                .submit(&system, spec, slow_evaluator(Duration::from_millis(3)))
                .unwrap(),
        );
    }
    for &job in &jobs {
        let status = service.wait(job).unwrap();
        assert_eq!(status.report.accounted(), 64);
    }
    // Hedging off, lease timeout long: exactly one drain per shard.
    let spans = settle_spans(&service, 16);

    // Busy time ground truth: each worker's wall-clock envelope, summed.
    // With a 3ms/variant evaluator the drains dominate each envelope, so
    // summed self-time across phases must land within 10% of it. (Registry
    // phases — commit, WAL — run nested inside drains but record through a
    // different sink; their double-count is part of that 10%.)
    let mut envelopes: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for span in &spans {
        let worker = span.ids.worker.as_deref().expect("span attributed");
        let envelope = envelopes.entry(worker).or_insert((u64::MAX, 0));
        envelope.0 = envelope.0.min(span.start_ns);
        envelope.1 = envelope.1.max(span.end_ns);
    }
    let busy_workers = envelopes.len();
    assert!(
        (2..=8).contains(&busy_workers),
        "16 shards across 8 workers: {busy_workers}"
    );
    let busy_ns: u64 = envelopes.values().map(|(start, end)| end - start).sum();

    let profile = service.profile();
    assert_eq!(profile.dropped, 0);
    let self_ns = profile.total_self_ns();
    let ratio = self_ns as f64 / busy_ns as f64;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "self {self_ns}ns vs busy {busy_ns}ns across {busy_workers} workers (ratio {ratio:.3})"
    );

    // One critical path per completed job, chaining real steps back from the
    // job's last commit; the straggler is its final step.
    assert_eq!(profile.critical_paths.len(), jobs.len());
    for path in &profile.critical_paths {
        assert!(!path.steps.is_empty());
        assert!(path.wall_ns > 0);
        let straggler = path.straggler.as_ref().expect("straggler attributed");
        assert_eq!(straggler.end_ns, path.steps.last().unwrap().end_ns);
        for pair in path.steps.windows(2) {
            assert!(pair[0].end_ns <= pair[1].start_ns, "steps never overlap");
        }
    }

    // Folded stacks: drains fold as roots; every line carries a weight.
    assert!(profile
        .folded
        .iter()
        .any(|(stack, _)| stack == "drain_shard"));
    for (_, weight) in &profile.folded {
        assert!(*weight > 0);
    }
}

#[test]
fn chrome_trace_ids_resolve_against_the_waitgraph_model() {
    let service = ExplorationService::start(ServiceConfig {
        workers: 4,
        hedge: HedgeConfig::disabled(),
        ..ServiceConfig::default()
    });
    let system = scaling_system(6, 2).unwrap();
    let spec = JobSpec {
        name: "traced".into(),
        shard_count: 8,
        top_k: 4,
        tenant: "render-farm".to_string(),
        use_cache: false,
        ..JobSpec::default()
    };
    let job = service
        .submit(&system, spec, Arc::new(PartitionEvaluator::default()))
        .unwrap();
    service.wait(job).unwrap();
    let spans = settle_spans(&service, 8);

    // The compiled evaluator contributes lowering and search spans nested
    // inside the drains.
    for phase in [PhaseId::CompileLower, PhaseId::PartitionSearch] {
        let nested: Vec<&Span> = spans.iter().filter(|span| span.phase == phase).collect();
        assert!(!nested.is_empty(), "{phase:?} instrumented");
        for span in nested {
            assert!(span.parent.is_some(), "{phase:?} nests under a drain");
        }
    }

    // Round-trip the export through the strict parser, then resolve every
    // span's ids against the waitgraph node-id model over the real run.
    let raw = service.chrome_trace().to_line();
    let trace = JsonValue::parse(&raw).unwrap();
    let events = trace.get("traceEvents").unwrap().as_array().unwrap();
    let mut complete = 0usize;
    for event in events {
        if event.get("ph").unwrap().as_str() != Some("X") {
            continue;
        }
        complete += 1;
        let args = event.get("args").unwrap();
        let job_id = args.get("job").unwrap().as_str().unwrap();
        assert_eq!(job_id, format!("job:{}", job.raw()));
        let shard = args.get("shard").unwrap().as_str().unwrap();
        let (prefix, rest) = shard.split_at("shard:".len());
        assert_eq!(prefix, "shard:");
        let (job_part, shard_part) = rest.split_once('/').unwrap();
        assert_eq!(job_part, job.raw().to_string());
        assert!(shard_part.parse::<usize>().unwrap() < 8);
        let lease = args.get("lease").unwrap().as_str().unwrap();
        assert!(lease.strip_prefix("lease:").unwrap().parse::<u64>().is_ok());
        assert_eq!(
            args.get("tenant").unwrap().as_str(),
            Some("tenant:render-farm")
        );
        let worker = args.get("worker").unwrap().as_str().unwrap();
        assert!(
            worker
                .strip_prefix("worker:spi-explore-worker-")
                .is_some_and(|index| index.parse::<usize>().is_ok_and(|index| index < 4)),
            "worker id resolves: {worker}"
        );
        // Trace-seq correlation: the window is well-formed and bounded by
        // the scheduler trace cursor.
        let first = args.get("trace_first").unwrap().as_u64().unwrap();
        let last = args.get("trace_last").unwrap().as_u64().unwrap();
        assert!(first <= last);
        assert!(last <= service.trace_next_seq());
    }
    assert!(complete >= 8 * 3, "drain + lower + search per shard");
}

#[test]
fn quiesce_persists_profile_json_beside_metrics_json() {
    let dir = std::env::temp_dir().join(format!("spi-explore-profiling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let service = ExplorationService::try_start(ServiceConfig {
            workers: 2,
            store_dir: Some(dir.clone()),
            hedge: HedgeConfig::disabled(),
            ..ServiceConfig::default()
        })
        .unwrap();
        let system = scaling_system(5, 2).unwrap(); // 32 variants
        let spec = JobSpec {
            name: "durable".into(),
            shard_count: 4,
            use_cache: false,
            ..JobSpec::default()
        };
        let job = service
            .submit(&system, spec, slow_evaluator(Duration::ZERO))
            .unwrap();
        service.wait(job).unwrap();
        settle_spans(&service, 4);
        service.quiesce().unwrap();
    }
    let raw = std::fs::read_to_string(dir.join("profile.json")).unwrap();
    let profile = JsonValue::parse(raw.trim()).unwrap();
    assert!(profile.get("captured_unix_ms").unwrap().as_u64().unwrap() > 0);
    assert!(profile.get("uptime_ns").unwrap().as_u64().is_some());
    let phases = profile.get("phases").unwrap().as_array().unwrap();
    let drain = phases
        .iter()
        .find(|entry| entry.get("phase").unwrap().as_str() == Some("drain_shard"))
        .expect("drain phase persisted");
    assert_eq!(drain.get("count").unwrap().as_u64(), Some(4));
    // WAL appends were both counted and profiled in the same durable run.
    let wal = phases
        .iter()
        .find(|entry| entry.get("phase").unwrap().as_str() == Some("wal_append"))
        .expect("wal phase persisted");
    assert!(wal.get("count").unwrap().as_u64().unwrap() > 0);
    assert_eq!(
        profile
            .get("critical_paths")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        1
    );
    // The metrics snapshot beside it now leads with the same capture header.
    let raw = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    let metrics = JsonValue::parse(raw.trim()).unwrap();
    assert!(metrics.get("captured_unix_ms").unwrap().as_u64().unwrap() > 0);
    assert!(metrics.get("uptime_ns").unwrap().as_u64().is_some());
    let _ = std::fs::remove_dir_all(&dir);

    // A --no-spans service records nothing and writes no profile.
    let dir =
        std::env::temp_dir().join(format!("spi-explore-profiling-off-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let service = ExplorationService::try_start(ServiceConfig {
            workers: 2,
            store_dir: Some(dir.clone()),
            spans_enabled: false,
            ..ServiceConfig::default()
        })
        .unwrap();
        let system = scaling_system(4, 2).unwrap();
        let job = service
            .submit(
                &system,
                JobSpec {
                    use_cache: false,
                    ..JobSpec::default()
                },
                slow_evaluator(Duration::ZERO),
            )
            .unwrap();
        service.wait(job).unwrap();
        assert!(!service.span_recorder().is_enabled());
        assert!(service.spans_since(0).spans.is_empty());
        service.quiesce().unwrap();
    }
    assert!(!dir.join("profile.json").exists());
    assert!(dir.join("metrics.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
