//! End-to-end acceptance of the observability plane on real runs:
//!
//! 1. the **metrics** plane counts a full multi-tenant service run exactly —
//!    enqueues, commits and evaluated variants match the submitted work, the
//!    latency histograms saw every shard, and per-tenant service equals each
//!    tenant's shard share;
//! 2. **quiesce** persists the final snapshot as `metrics.json` in the store
//!    directory, and the file round-trips through the JSON parser with the
//!    same counters the live snapshot reported;
//! 3. the **watchdog** flags injected stall scenarios — an abandoned lease
//!    past its deadline and a tenant starved of service while backlogged —
//!    with findings that name real waitgraph nodes;
//! 4. a bounded **trace subscription** on a busy service lags (drops events)
//!    instead of blocking the scheduler, while everything it did deliver
//!    stays in recorded order.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_explore::{
    Evaluation, ExplorationService, FnEvaluator, JobRegistry, JobSpec, RegistryConfig,
    ServiceConfig, Watchdog,
};
use spi_model::json::JsonValue;
use spi_store::sched::HedgeConfig;
use spi_workloads::scaling_system;

fn slow_evaluator(delay: Duration) -> Arc<dyn spi_explore::Evaluator> {
    Arc::new(FnEvaluator::new(move |index, _choice, _graph| {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(Evaluation {
            cost: ((index as u64) * 131) % 251,
            feasible: true,
            detail: String::new(),
        })
    }))
}

#[test]
fn metrics_plane_counts_a_full_multi_tenant_run() {
    let service = ExplorationService::start(ServiceConfig {
        workers: 4,
        batch_size: 8,
        hedge: HedgeConfig::disabled(),
        ..ServiceConfig::default()
    });
    let system = scaling_system(6, 2).unwrap(); // 64 variants per job
    let mut jobs = Vec::new();
    for tenant in ["alpha", "beta"] {
        let spec = JobSpec {
            name: format!("{tenant}-job"),
            shard_count: 8,
            top_k: 4,
            tenant: tenant.to_string(),
            use_cache: false,
            ..JobSpec::default()
        };
        jobs.push(
            service
                .submit(&system, spec, slow_evaluator(Duration::ZERO))
                .unwrap(),
        );
    }
    for job in jobs {
        let status = service.wait(job).unwrap();
        assert_eq!(status.report.accounted(), 64);
    }

    let metrics = service.metrics();
    assert!(metrics.is_enabled());
    // 2 jobs x 8 shards, no hedging, no expiries: exactly one enqueue,
    // one grant and one commit per shard; no pruning bound, so every
    // variant of both 2^6 spaces was evaluated.
    assert_eq!(metrics.counter(spi_explore::CounterId::WfqEnqueues), 16);
    assert_eq!(metrics.counter(spi_explore::CounterId::LeaseGrants), 16);
    assert_eq!(metrics.counter(spi_explore::CounterId::ShardCommits), 16);
    assert_eq!(metrics.counter(spi_explore::CounterId::EvalVariants), 128);
    assert_eq!(metrics.counter(spi_explore::CounterId::HedgesIssued), 0);
    assert_eq!(metrics.counter(spi_explore::CounterId::LeaseExpiries), 0);

    let snapshot = service.metrics_snapshot();
    let histograms = snapshot.get("histograms").unwrap();
    let eval = histograms.get("shard.eval_ns").unwrap();
    assert_eq!(eval.get("count").unwrap().as_u64(), Some(16));
    let p50 = eval.get("p50").unwrap().as_u64().unwrap();
    let max = eval.get("max").unwrap().as_u64().unwrap();
    assert!(p50 <= max);

    let tenants = snapshot.get("tenants").unwrap();
    for tenant in ["alpha", "beta"] {
        let entry = tenants.get(tenant).unwrap();
        assert_eq!(entry.get("service").unwrap().as_u64(), Some(8));
        assert_eq!(entry.get("enqueues").unwrap().as_u64(), Some(8));
        assert_eq!(entry.get("backlog").unwrap().as_u64(), Some(0));
    }

    // The service drained everything: the health sweep is clean.
    let report = service.health();
    assert_eq!(report.status(), "ok");
    assert!(report.findings.is_empty());
    assert!(service.is_idle());
}

#[test]
fn quiesce_persists_the_final_metrics_snapshot() {
    let dir = std::env::temp_dir().join(format!("spi-explore-obs-metrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let service = ExplorationService::try_start(ServiceConfig {
            workers: 2,
            store_dir: Some(dir.clone()),
            hedge: HedgeConfig::disabled(),
            ..ServiceConfig::default()
        })
        .unwrap();
        let system = scaling_system(5, 2).unwrap(); // 32 variants
        let spec = JobSpec {
            name: "durable".into(),
            shard_count: 4,
            use_cache: false,
            ..JobSpec::default()
        };
        let job = service
            .submit(&system, spec, slow_evaluator(Duration::ZERO))
            .unwrap();
        service.wait(job).unwrap();
        service.quiesce().unwrap();
    }
    let raw = std::fs::read_to_string(dir.join("metrics.json")).unwrap();
    let snapshot = JsonValue::parse(raw.trim()).unwrap();
    let counters = snapshot.get("counters").unwrap();
    assert_eq!(counters.get("shard.commits").unwrap().as_u64(), Some(4));
    assert_eq!(counters.get("eval.variants").unwrap().as_u64(), Some(32));
    assert!(counters.get("wal.appends").unwrap().as_u64().unwrap() > 0);
    // Quiesce compacts the store before writing the snapshot.
    assert!(counters.get("wal.compactions").unwrap().as_u64().unwrap() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected stalls on a registry nobody drains: a lease left past its
/// deadline and a backlogged tenant receiving no service. The watchdog must
/// name both, pointing at real waitgraph nodes.
#[test]
fn watchdog_flags_injected_stalls() {
    let mut registry = JobRegistry::with_config(RegistryConfig {
        lease_timeout: Duration::from_millis(50),
        hedge: HedgeConfig::disabled(),
        ..RegistryConfig::default()
    });
    let system = scaling_system(4, 2).unwrap();
    for tenant in ["hog", "victim"] {
        let spec = JobSpec {
            name: format!("{tenant}-stuck"),
            shard_count: 2,
            tenant: tenant.to_string(),
            use_cache: false,
            ..JobSpec::default()
        };
        registry
            .submit(&system, spec, slow_evaluator(Duration::ZERO))
            .unwrap();
    }
    let t0 = Instant::now();
    // Take one lease and never report on it; everything else stays queued.
    let lease = registry.lease_as("w1", t0).expect("a dispatch is queued");

    let mut watchdog = Watchdog::new();
    // First sweep establishes the baseline; the lease is within deadline.
    let report = watchdog.sweep(&registry.observe_health(t0), t0);
    assert_eq!(report.status(), "ok");

    // 200ms later (simulated): the lease is past its 50ms deadline and no
    // tenant has made progress over a full starvation window.
    let later = t0 + Duration::from_millis(200);
    let report = watchdog.sweep(&registry.observe_health(later), later);
    assert_eq!(report.status(), "stalled");
    let stuck: Vec<_> = report
        .findings
        .iter()
        .filter(|finding| finding.kind == "stuck_lease")
        .collect();
    assert_eq!(stuck.len(), 1);
    assert!(stuck[0]
        .nodes
        .contains(&format!("lease:{}", lease.lease.raw())));
    assert!(stuck[0].nodes.contains(&"worker:w1".to_string()));
    let starved: Vec<_> = report
        .findings
        .iter()
        .filter(|finding| finding.kind == "starved_tenant")
        .collect();
    assert!(
        starved
            .iter()
            .any(|finding| finding.nodes.contains(&"tenant:victim".to_string())),
        "victim is backlogged with zero service: {:?}",
        report.findings
    );
}

/// A tiny subscription queue on a busy service drops events (recorded in the
/// lag counter) rather than blocking the scheduler; delivered events stay in
/// recorded order and the run itself is unaffected.
#[test]
fn bounded_subscription_lags_without_blocking_the_scheduler() {
    let service = ExplorationService::start(ServiceConfig {
        workers: 2,
        batch_size: 4,
        hedge: HedgeConfig::disabled(),
        ..ServiceConfig::default()
    });
    let subscription = service.subscribe_trace(2);
    let system = scaling_system(5, 2).unwrap();
    let spec = JobSpec {
        name: "busy".into(),
        shard_count: 16,
        use_cache: false,
        ..JobSpec::default()
    };
    let job = service
        .submit(&system, spec, slow_evaluator(Duration::from_millis(1)))
        .unwrap();
    let status = service.wait(job).unwrap();
    assert_eq!(status.report.accounted(), 32);

    // Nobody drained the queue of 2 while hundreds of decisions were
    // recorded: the overflow is counted, not blocked on.
    assert!(subscription.take_lagged() > 0);
    let mut last = None;
    while let Some(event) = subscription.try_next() {
        if let Some(previous) = last {
            assert!(event.seq > previous, "delivered events stay ordered");
        }
        last = Some(event.seq);
    }
    assert!(service.is_idle());
}
