//! Wire-protocol error paths of [`run_session`]: malformed and truncated
//! ndjson, unknown ops, duplicate keys and mid-frame EOF must each produce
//! one structured `{"ok":false,"error":…}` line, leave the stream usable for
//! the *next* request, and never prevent the session from quiescing cleanly.

use spi_explore::wire::{run_session, status_from_json};
use spi_explore::{ExplorationService, HedgeConfig, JobId, ServiceConfig};
use spi_model::json::JsonValue;

const SUBMIT: &str = r#"{"op":"submit","name":"wire-errors","system":{"scaling":{"interfaces":4,"clusters":2}},"shards":4,"top_k":4,"evaluator":{"kind":"partition","strategy":"exhaustive","params":{"kind":"hashed","seed":42}}}"#;

fn service() -> ExplorationService {
    ExplorationService::start(ServiceConfig {
        hedge: HedgeConfig::disabled(),
        ..ServiceConfig::with_workers(2)
    })
}

/// Runs one session over `input` and returns the parsed response lines.
fn session(input: &str) -> Vec<JsonValue> {
    let service = service();
    let mut output = Vec::new();
    run_session(&service, input.as_bytes(), &mut output).expect("session I/O is in-memory");
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|line| JsonValue::parse(line).expect("every response line is valid JSON"))
        .collect()
}

fn is_error(line: &JsonValue) -> bool {
    line.get("ok").and_then(JsonValue::as_bool) == Some(false)
        && line
            .get("error")
            .and_then(JsonValue::as_str)
            .is_some_and(|message| !message.is_empty())
}

#[test]
fn malformed_json_yields_a_structured_error_and_the_stream_continues() {
    let input = format!("this is not json\n{SUBMIT}\n{{\"op\":\"wait\",\"job\":0}}\n");
    let lines = session(&input);
    assert_eq!(lines.len(), 3, "{lines:?}");
    assert!(is_error(&lines[0]), "{:?}", lines[0]);
    assert_eq!(lines[1].get("ok").and_then(JsonValue::as_bool), Some(true));
    let status = status_from_json(&lines[2]).unwrap();
    assert_eq!(status.state, "completed");
    assert_eq!(
        status.evaluated + status.pruned + status.errors,
        16,
        "a garbage line must not disturb the job that follows it"
    );
}

#[test]
fn unknown_ops_and_missing_ops_are_rejected_individually() {
    let lines = session("{\"op\":\"frobnicate\"}\n{\"noop\":true}\n{\"op\":\"poll\",\"job\":99}\n");
    assert_eq!(lines.len(), 3, "{lines:?}");
    for line in &lines {
        assert!(is_error(line), "{line:?}");
    }
    assert!(
        lines[0]
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("unknown op"),
        "{:?}",
        lines[0]
    );
}

#[test]
fn duplicate_object_keys_are_a_parse_error_not_a_silent_override() {
    // A duplicated `shards` key could silently shrink or inflate a job; the
    // parser must refuse the frame outright.
    let input = format!(
        "{}\n",
        r#"{"op":"submit","system":{"scaling":{"interfaces":4,"clusters":2}},"shards":4,"shards":1,"evaluator":{"kind":"partition","strategy":"exhaustive","params":{"kind":"hashed","seed":42}}}"#
    );
    let lines = session(&input);
    assert_eq!(lines.len(), 1, "{lines:?}");
    assert!(is_error(&lines[0]), "{:?}", lines[0]);
    assert!(
        lines[0]
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("duplicate"),
        "{:?}",
        lines[0]
    );
}

#[test]
fn mid_frame_eof_is_an_error_line_then_a_clean_quiesce() {
    // The stream dies mid-frame: the final line is a truncated submit with no
    // trailing newline. The torn frame gets a structured error, the earlier
    // submit still quiesces to a whole-shard census.
    let truncated = &SUBMIT[..SUBMIT.len() / 2];
    let service = service();
    let mut output = Vec::new();
    let input = format!("{SUBMIT}\n{truncated}");
    run_session(&service, input.as_bytes(), &mut output).expect("EOF is a clean shutdown");
    let lines: Vec<JsonValue> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|line| JsonValue::parse(line).unwrap())
        .collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert_eq!(lines[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    assert!(is_error(&lines[1]), "{:?}", lines[1]);

    // Post-quiesce: nothing in flight and no shard torn — the census is
    // exactly the committed whole shards (4 variants per shard).
    let status = service.poll(JobId::from_raw(0)).unwrap();
    assert_eq!(status.shards_in_flight, 0);
    assert_eq!(
        status.report.accounted(),
        4 * status.shards_done as u64,
        "quiesce must commit whole shards, never tear one"
    );
}

#[test]
fn blank_lines_are_ignored_and_shutdown_still_answers() {
    let lines = session("\n\n{\"op\":\"shutdown\"}\n{\"op\":\"poll\",\"job\":0}\n");
    assert_eq!(lines.len(), 1, "shutdown ends the session: {lines:?}");
    assert_eq!(lines[0].get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(
        lines[0].get("op").and_then(JsonValue::as_str),
        Some("shutdown")
    );
}
