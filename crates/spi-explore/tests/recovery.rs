//! Crash-recovery acceptance tests for the durable store:
//!
//! 1. **Randomized kill points** — a job is driven through the registry with
//!    a real on-disk WAL; at pseudo-random points the whole process state is
//!    "killed" (registry + WAL handle dropped, nothing flushed beyond what
//!    the write-ahead discipline already made durable) and recovered from
//!    disk. After every recovery the committed census must be exactly what
//!    was committed before the kill, and the finished job's `(cost, index)`
//!    optimum must be bit-identical to an uninterrupted run *and* to the
//!    serial `optimize_serial_reference` oracle.
//! 2. **EOF is a clean shutdown** (wire level) — a `run_session` whose stdin
//!    closes without a `shutdown` op drains in-flight shards, compacts the
//!    store, and a second service over the same directory resumes and
//!    finishes the job; a third submission of the same job is then served
//!    from the result cache with `evaluated == 0`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use spi_explore::wire::{run_session, status_from_json};
use spi_explore::{
    drain_lease, handle_request, rebuild_from_recipe, DrainOutcome, ExplorationService,
    FlushResponse, HedgeConfig, JobId, JobRegistry, JobSpec, JobState, Lease, RegistryConfig,
    ServiceConfig, ShardReport, TaskParamsSpec, WalSink,
};
use spi_model::json::JsonValue;
use spi_store::Wal;
use spi_synth::from_flat_graph;
use spi_synth::partition::{optimize_serial_reference, FeasibilityMode};
use spi_workloads::scaling_system;

const INTERFACES: usize = 4;
const CLUSTERS: usize = 2; // 2^4 = 16 variants
const COMBINATIONS: usize = 16;
const PROCESSOR_COST: u64 = 15;
const SEED: u64 = 42;

/// Deterministic pseudo-random case generator (the repo's usual 64-bit LCG).
use spi_testutil::Lcg as Cases;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spi-explore-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The wire-style recipe both the live submission and recovery rebuild from.
fn recipe() -> JsonValue {
    JsonValue::parse(&format!(
        r#"{{"system":{{"scaling":{{"interfaces":{INTERFACES},"clusters":{CLUSTERS}}}}},"evaluator":{{"kind":"partition","processor_cost":{PROCESSOR_COST},"strategy":"exhaustive","mode":"per_application","params":{{"kind":"hashed","seed":{SEED}}}}}}}"#
    ))
    .unwrap()
}

/// The serial oracle: flatten every combination in index order and keep the
/// first strict `(cost, index)` minimum of `optimize_serial_reference`.
fn serial_oracle() -> (usize, u64) {
    let system = scaling_system(INTERFACES, CLUSTERS).unwrap();
    let params = TaskParamsSpec::Hashed { seed: SEED };
    let mut best: Option<(u64, usize)> = None;
    for (index, (_choice, graph)) in system.flatten_all().unwrap().into_iter().enumerate() {
        let problem =
            from_flat_graph(&graph, PROCESSOR_COST, |name| Some(params.params_for(name))).unwrap();
        let result = optimize_serial_reference(&problem, FeasibilityMode::PerApplication).unwrap();
        let total = result.cost.total();
        if best.is_none_or(|(cost, _)| total < cost) {
            best = Some((total, index));
        }
    }
    let (cost, index) = best.unwrap();
    (index, cost)
}

/// Drains `lease` completely against `registry`, committing every flush.
fn drain_fully(
    registry: &mut JobRegistry,
    lease: &Lease,
    batch: usize,
    clock: Instant,
) -> ShardReport {
    let mut flushes: Vec<(ShardReport, bool)> = Vec::new();
    let outcome = drain_lease(
        lease,
        batch,
        || false,
        |delta, is_final| {
            flushes.push((delta, is_final));
            FlushResponse::Continue
        },
    );
    assert_eq!(outcome, DrainOutcome::Completed);
    let mut merged = ShardReport::default();
    for (delta, is_final) in flushes {
        merged.merge(&delta, COMBINATIONS);
        let result = if is_final {
            registry
                .complete_shard(lease.lease, delta, clock)
                .map(|_| ())
        } else {
            registry.report_batch(lease.lease, delta, clock)
        };
        result.expect("lease is live throughout a healthy drain");
    }
    merged
}

/// Stages one partial batch under the lease, then goes silent forever.
fn stage_and_vanish(registry: &mut JobRegistry, lease: &Lease, clock: Instant) {
    let mut first: Option<ShardReport> = None;
    let _ = drain_lease(
        lease,
        2,
        || false,
        |delta, is_final| {
            if first.is_none() && !is_final {
                first = Some(delta);
                FlushResponse::Continue
            } else {
                FlushResponse::Stop
            }
        },
    );
    if let Some(delta) = first {
        registry
            .report_batch(lease.lease, delta, clock)
            .expect("lease is live at stage time");
    }
}

fn open_registry(dir: &PathBuf) -> JobRegistry {
    let (wal, recovered) = Wal::open(dir).unwrap();
    let mut registry = JobRegistry::new(Duration::from_secs(10));
    registry
        .restore(
            recovered.snapshot.as_ref(),
            &recovered.records,
            &rebuild_from_recipe,
        )
        .unwrap();
    registry.set_sink(Box::new(WalSink(wal)));
    registry
}

/// One uninterrupted run through the same drain harness: the bit-identical
/// reference every chaos schedule must reproduce.
fn uninterrupted_reference() -> (ShardReport, usize, u64, String) {
    let (system, evaluator) = rebuild_from_recipe(&recipe()).unwrap();
    let mut registry = JobRegistry::new(Duration::from_secs(10));
    let job = registry
        .submit_with_recipe(
            &system,
            JobSpec {
                name: "reference".into(),
                shard_count: 4,
                top_k: COMBINATIONS,
                ..JobSpec::default()
            },
            evaluator,
            Some(recipe()),
        )
        .unwrap();
    let clock = Instant::now();
    while let Some(lease) = registry.lease(clock) {
        drain_fully(&mut registry, &lease, 3, clock);
    }
    let status = registry.poll(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    let best = status.best().unwrap();
    (
        status.report.clone(),
        best.index,
        best.cost,
        best.detail.clone(),
    )
}

#[test]
fn randomized_kill_points_recover_to_the_exact_census_and_optimum() {
    let (reference_report, oracle_index, oracle_cost, oracle_detail) = uninterrupted_reference();
    let (serial_index, serial_cost) = serial_oracle();
    assert_eq!(
        (oracle_index, oracle_cost),
        (serial_index, serial_cost),
        "uninterrupted run must already match the serial oracle"
    );

    for seed in 0..10u64 {
        let mut cases = Cases::new(seed);
        let dir = temp_dir(&format!("chaos-{seed}"));
        let mut registry = open_registry(&dir);
        let (system, evaluator) = rebuild_from_recipe(&recipe()).unwrap();
        let job = registry
            .submit_with_recipe(
                &system,
                JobSpec {
                    name: format!("chaos-{seed}"),
                    shard_count: 4,
                    top_k: COMBINATIONS,
                    ..JobSpec::default()
                },
                evaluator,
                Some(recipe()),
            )
            .unwrap();
        let timeout = Duration::from_secs(10);
        let mut clock = Instant::now();
        let mut kills = 0u32;
        let mut steps = 0u32;
        // At least one kill lands at a pseudo-random committed-shard count.
        let forced_kill_after = cases.below(4);

        while !registry.poll(job).unwrap().state.is_terminal() {
            steps += 1;
            assert!(steps < 10_000, "seed {seed}: schedule failed to converge");
            let done = registry.poll(job).unwrap().shards_done as u64;
            let force_kill = kills == 0 && done >= forced_kill_after;
            match if force_kill { 4 } else { cases.below(6) } {
                0 | 1 => {
                    let batch = 1 + cases.below(3) as usize;
                    if let Some(lease) = registry.lease(clock) {
                        drain_fully(&mut registry, &lease, batch, clock);
                    }
                }
                2 => {
                    if let Some(lease) = registry.lease(clock) {
                        stage_and_vanish(&mut registry, &lease, clock);
                    }
                }
                3 => {
                    clock += timeout + Duration::from_millis(1);
                    registry.expire(clock);
                }
                _ => {
                    kills += 1;
                    // What is committed (and only that) must survive the kill:
                    // compare against a poll with all staged state scrubbed.
                    registry.expire(clock + timeout + Duration::from_millis(1));
                    let committed_before = registry.poll(job).unwrap().report.clone();
                    drop(registry); // the "kill": no quiesce, no compaction
                    registry = open_registry(&dir);
                    let after = registry.poll(job).unwrap();
                    assert_eq!(
                        after.report, committed_before,
                        "seed {seed}: recovery changed the committed census"
                    );
                    assert_eq!(after.shards_in_flight, 0, "seed {seed}");
                    clock = Instant::now();
                }
            }
        }

        assert!(
            kills >= 1,
            "seed {seed}: every schedule must kill at least once"
        );
        let status = registry.poll(job).unwrap();
        assert_eq!(status.state, JobState::Completed, "seed {seed}");
        assert_eq!(
            status.report.accounted(),
            COMBINATIONS as u64,
            "seed {seed}: census must be exact"
        );
        let violations = spi_chaos::oracle::check_census(&status, COMBINATIONS);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let best = status.best().expect("a feasible optimum exists");
        assert_eq!(
            (best.index, best.cost, best.detail.as_str()),
            (oracle_index, oracle_cost, oracle_detail.as_str()),
            "seed {seed}: optimum must be bit-identical to the uninterrupted run"
        );
        // With hedging/pruning the per-counter split can differ between
        // schedules, but evaluated+pruned always re-partitions the same space.
        assert_eq!(
            status.report.accounted(),
            reference_report.accounted(),
            "seed {seed}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn eof_quiesces_cleanly_and_the_next_start_resumes_and_caches() {
    let dir = temp_dir("eof");
    let submit_line = format!(
        r#"{{"op":"submit","name":"eof","system":{{"scaling":{{"interfaces":5,"clusters":2}}}},"shards":16,"top_k":4,"evaluator":{{"kind":"partition","strategy":"exhaustive","params":{{"kind":"hashed","seed":{SEED}}}}}}}"#
    );

    // The uninterrupted answer, from a store-less service.
    let reference = {
        let service = ExplorationService::start(ServiceConfig::with_workers(2));
        let mut output = Vec::new();
        let input = format!("{submit_line}\n{{\"op\":\"wait\",\"job\":0}}\n");
        run_session(&service, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<JsonValue> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| JsonValue::parse(line).unwrap())
            .collect();
        status_from_json(&lines[1]).unwrap()
    };
    assert_eq!(reference.state, "completed");
    let reference_best = reference.best.clone().expect("feasible optimum");

    // Session 1: submit, then stdin closes immediately — EOF mid-job.
    let config = |dir: &PathBuf, workers: usize| ServiceConfig {
        workers,
        store_dir: Some(dir.clone()),
        hedge: HedgeConfig::disabled(),
        ..ServiceConfig::with_workers(workers)
    };
    {
        let service = ExplorationService::try_start(config(&dir, 1)).unwrap();
        let mut output = Vec::new();
        run_session(&service, format!("{submit_line}\n").as_bytes(), &mut output).unwrap();
        // Post-quiesce (run_session returned): nothing in flight, and the
        // accounted census is exactly the committed shards — a 32-variant
        // space in 16 shards means every committed shard accounts 2 variants.
        let status = handle_request(
            &service,
            &JsonValue::parse(r#"{"op":"poll","job":0}"#).unwrap(),
        );
        let status = status_from_json(&status).unwrap();
        assert_eq!(
            status.evaluated + status.pruned + status.errors,
            2 * wire_shards_done(&service, 0),
            "quiesce must commit whole shards, never tear one"
        );
    }

    // Session 2: same directory — the job resumes and completes exactly.
    {
        let service = ExplorationService::try_start(config(&dir, 4)).unwrap();
        assert_eq!(service.restored().jobs, 1);
        let mut output = Vec::new();
        run_session(
            &service,
            b"{\"op\":\"wait\",\"job\":0}\n{\"op\":\"shutdown\"}\n" as &[u8],
            &mut output,
        )
        .unwrap();
        let lines: Vec<JsonValue> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| JsonValue::parse(line).unwrap())
            .collect();
        let status = status_from_json(&lines[0]).unwrap();
        assert_eq!(status.state, "completed");
        assert_eq!(status.evaluated + status.pruned + status.errors, 32);
        let best = status.best.expect("feasible optimum");
        assert_eq!(
            (best.index, best.cost),
            (reference_best.index, reference_best.cost)
        );
        assert_eq!(best.choice, reference_best.choice);
    }

    // Session 3: identical resubmission is a cache hit — served at birth,
    // evaluated == 0, optimum intact, across a restart.
    {
        let service = ExplorationService::try_start(config(&dir, 2)).unwrap();
        let mut output = Vec::new();
        let input =
            format!("{submit_line}\n{{\"op\":\"wait\",\"job\":1}}\n{{\"op\":\"shutdown\"}}\n");
        run_session(&service, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<JsonValue> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| JsonValue::parse(line).unwrap())
            .collect();
        assert_eq!(lines[0].get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(lines[0].get("state").unwrap().as_str(), Some("completed"));
        let status = status_from_json(&lines[1]).unwrap();
        assert!(status.cache_hit);
        assert_eq!(status.evaluated, 0, "no worker evaluation may run");
        assert_eq!(status.pruned, 0);
        let best = status.best.expect("cached optimum served");
        assert_eq!(
            (best.index, best.cost),
            (reference_best.index, reference_best.cost)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `shards_done` of a job over the wire (u64 for arithmetic convenience).
fn wire_shards_done(service: &ExplorationService, job: u64) -> u64 {
    service.poll(JobId::from_raw(job)).unwrap().shards_done as u64
}

#[test]
fn byte_budgeted_registry_compacts_its_real_wal_mid_flight() {
    let dir = temp_dir("autocompact");
    let (system, evaluator) = rebuild_from_recipe(&recipe()).unwrap();
    let job_raw;
    {
        let (wal, recovered) = Wal::open(&dir).unwrap();
        assert!(recovered.is_empty());
        let mut registry = JobRegistry::with_config(RegistryConfig {
            lease_timeout: Duration::from_secs(10),
            // Tiny budget: every committed shard overflows it, so the log is
            // compacted after each commit instead of only at quiesce.
            compact_log_bytes: Some(256),
            ..RegistryConfig::default()
        });
        registry.set_sink(Box::new(WalSink(wal)));
        let job = registry
            .submit_with_recipe(
                &system,
                JobSpec {
                    name: "autocompact".into(),
                    shard_count: 4,
                    top_k: COMBINATIONS,
                    ..JobSpec::default()
                },
                evaluator,
                Some(recipe()),
            )
            .unwrap();
        let clock = Instant::now();
        while let Some(lease) = registry.lease(clock) {
            drain_fully(&mut registry, &lease, 3, clock);
        }
        job_raw = job.raw();
        assert_eq!(registry.poll(job).unwrap().state, JobState::Completed);
        assert!(
            registry.auto_compactions() >= 4,
            "every commit over the 256-byte budget must compact, got {}",
            registry.auto_compactions()
        );
    }
    // The last commit compacted, so the log on disk is empty and the whole
    // history lives in the snapshot — from which a reopen must recover the
    // completed job exactly.
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len(),
        0,
        "compaction must leave an empty log"
    );
    let registry = open_registry(&dir);
    let status = registry.poll(JobId::from_raw(job_raw)).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.report.accounted(), COMBINATIONS as u64);
    let violations = spi_chaos::oracle::check_census(&status, COMBINATIONS);
    assert!(violations.is_empty(), "{violations:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
