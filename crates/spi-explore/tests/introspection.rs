//! End-to-end acceptance of the introspection plane: a traced multi-tenant
//! run on the real 8-worker service must
//!
//! 1. produce a **waitgraph** snapshot that validates structurally and
//!    agrees with the registry's own job listing, and
//! 2. produce a **decision trace** that [`TraceReplay`] certifies clean —
//!    the WFQ proportional-share bound holds over every joint-backlog
//!    window, and the lease census is exactly-once: every shard of every
//!    job committed exactly once, however many leases (hedged duplicates
//!    included) were in flight.
//!
//! The CI step runs this test in release mode: a scheduler-truth regression
//! (double commit, retired-lease action, starvation) fails here even if no
//! unit test anticipated its exact shape.

use std::sync::Arc;
use std::time::Duration;

use spi_explore::{
    Evaluation, ExplorationService, FnEvaluator, JobSpec, JobState, ServiceConfig, TraceReplay,
};
use spi_workloads::scaling_system;

#[test]
fn traced_multi_tenant_run_replays_clean_and_snapshots_truthfully() {
    let service = ExplorationService::start(ServiceConfig {
        workers: 8,
        batch_size: 8,
        ..ServiceConfig::default()
    });
    assert_eq!(service.worker_count(), 8);

    // Three tenants at different weights, two jobs each; a mildly slow
    // evaluator so shards overlap across workers instead of completing
    // before the next lease is taken.
    let evaluator = || {
        Arc::new(FnEvaluator::new(|index, _choice, _graph| {
            std::thread::sleep(Duration::from_micros(200));
            Ok(Evaluation {
                cost: ((index as u64) * 131) % 251,
                feasible: true,
                detail: String::new(),
            })
        }))
    };
    let system = scaling_system(6, 2).unwrap(); // 64 variants per job
    let mut jobs = Vec::new();
    let mut total_shards = 0usize;
    for (tenant, weight) in [("alpha", 1u32), ("beta", 2), ("gamma", 4)] {
        for round in 0..2 {
            let spec = JobSpec {
                name: format!("{tenant}-{round}"),
                shard_count: 8,
                top_k: 4,
                tenant: tenant.to_string(),
                weight,
                use_cache: false,
            };
            total_shards += spec.shard_count;
            jobs.push(service.submit(&system, spec, evaluator()).unwrap());
        }
    }

    // Snapshot mid-flight: whatever the graph claims must be structurally
    // valid even while workers are actively mutating the registry.
    let mid_flight = service.waitgraph();
    mid_flight.validate().unwrap();

    for &job in &jobs {
        let status = service.wait(job).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, 64);
    }

    // --- Waitgraph agrees with the registry's own listing. ---
    let graph = service.waitgraph();
    graph.validate().unwrap();
    let statuses = service.jobs();
    assert_eq!(graph.nodes_of_kind("job").count(), statuses.len());
    for status in &statuses {
        let node = graph
            .node(&format!("job:{}", status.job.raw()))
            .expect("every registered job has a node");
        assert_eq!(node.label, status.name);
        let attr = |key: &str| {
            node.attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap()
        };
        assert_eq!(attr("state"), status.state.to_string());
        assert_eq!(attr("shards_done"), status.shards_done.to_string());
        assert_eq!(attr("shards"), status.shard_count.to_string());
    }
    // All terminal: nothing waits on anything, and no shard/lease lingers.
    assert_eq!(graph.edges.len(), 0);
    assert_eq!(graph.nodes_of_kind("shard").count(), 0);
    assert_eq!(graph.nodes_of_kind("lease").count(), 0);
    assert_eq!(graph.nodes_of_kind("tenant").count(), 3);

    // --- The decision trace replays clean. ---
    let drained = service.drain_trace();
    assert_eq!(
        drained.dropped, 0,
        "the default ring must hold a run this size"
    );
    let report = TraceReplay::check(&drained.events);
    assert!(
        report.is_clean(),
        "scheduler-truth violations: {:#?}",
        report.violations
    );
    // Exactly-once census over the whole run: every shard of every job
    // committed once — hedged duplicates may add grants, never commits.
    assert_eq!(report.committed_shards, total_shards);
    assert_eq!(report.commits, total_shards as u64);
    assert!(report.grants >= total_shards as u64);
    assert_eq!(report.hedge_wins as usize + report.committed_shards, {
        let wins: u64 = statuses.iter().map(|s| s.hedge_wins).sum();
        wins as usize + total_shards
    });
}
