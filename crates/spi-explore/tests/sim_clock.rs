//! The injected clock seam at service level: a [`SimClock`] jump must be
//! enough to expire a stuck worker's lease and let the pool re-run its shard
//! — without waiting a single wall-clock lease timeout — and the resulting
//! census must still be exactly-once.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_explore::{
    Evaluation, ExplorationService, FnEvaluator, HedgeConfig, JobSpec, JobState, ServiceConfig,
    SimClock,
};
use spi_store::CounterId;
use spi_workloads::scaling_system;

const COMBINATIONS: u64 = 16;

#[test]
fn a_sim_clock_jump_expires_a_stuck_lease_without_wall_time() {
    let clock = Arc::new(SimClock::new());
    let service = ExplorationService::start(ServiceConfig {
        workers: 2,
        clock: Arc::clone(&clock) as Arc<dyn spi_explore::Clock>,
        lease_timeout: Duration::from_secs(10),
        hedge: HedgeConfig::disabled(),
        ..ServiceConfig::default()
    });

    // Variant 0 — the first index of shard 0, the first shard dispatched —
    // wedges its worker for 300 ms of *wall* time per visit; every other
    // variant is instant.
    let system = scaling_system(4, 2).unwrap(); // 16 variants over 4 shards
    let evaluator = Arc::new(FnEvaluator::new(|index, _choice, _graph| {
        if index == 0 {
            std::thread::sleep(Duration::from_millis(300));
        }
        Ok(Evaluation {
            cost: ((index as u64) * 131) % 251,
            feasible: true,
            detail: String::new(),
        })
    }));
    let started = Instant::now();
    let job = service
        .submit_with_recipe(
            &system,
            JobSpec {
                name: "sim-clock".into(),
                shard_count: 4,
                top_k: 4,
                use_cache: false,
                ..JobSpec::default()
            },
            evaluator,
            None,
        )
        .unwrap();

    // Wait (in wall time) until the healthy worker has made progress — by
    // then the other worker is wedged inside variant 0 holding shard 0's
    // lease, which it will not flush (and thus not renew) for ~300 ms.
    while service.poll(job).unwrap().report.accounted() < 4 {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "healthy worker made no progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Jump simulated time past the lease deadline. No wall-clock second ever
    // elapses: the idle worker's next sweep (≤ 20 ms away) reads the
    // advanced clock, expires the wedged lease and re-runs shard 0.
    clock.advance(Duration::from_secs(11));

    let status = service.wait(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(
        status.report.accounted(),
        COMBINATIONS,
        "the re-run shard must count exactly once — the wedged worker's \
         late flushes are stale and discarded"
    );
    assert_eq!(status.shards_done, 4);
    assert!(
        service.metrics().counter(CounterId::LeaseExpiries) >= 1,
        "the jump must have expired at least the wedged lease"
    );
    // The whole point of the clock seam: the 10 s lease timeout was crossed
    // in simulated time only.
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "test must not wait wall-clock lease timeouts (took {:?})",
        started.elapsed()
    );
}
