//! The issue's acceptance demo: a `SyntheticParams::scaling_system` job
//! submitted **over the ndjson wire**, drained by 8 workers, with the returned
//! optimum bit-identical to `optimize_serial_reference` run serially over the
//! flattened space.

use spi_explore::wire::{serve, status_from_json};
use spi_explore::{ExplorationService, JobSpec, PartitionEvaluator, ServiceConfig, TaskParamsSpec};
use spi_model::json::{FromJson, JsonValue};
use spi_synth::partition::{optimize_serial_reference, FeasibilityMode};
use spi_synth::{from_flat_graph, PartitionResult};
use spi_variants::VariantChoice;
use spi_workloads::scaling_system;
use std::sync::Arc;

const INTERFACES: usize = 5;
const CLUSTERS: usize = 2; // 2^5 = 32 variants, 11 tasks per variant problem
const PROCESSOR_COST: u64 = 15;
const SEED: u64 = 42;

/// The serial oracle: flatten every combination in index order and run the
/// historical string-keyed `optimize_serial_reference` on each derived
/// problem, keeping the first strict `(cost, index)` minimum.
fn serial_oracle() -> (usize, u64, VariantChoice, PartitionResult) {
    let system = scaling_system(INTERFACES, CLUSTERS).unwrap();
    let params = TaskParamsSpec::Hashed { seed: SEED };
    let mut best: Option<(usize, u64, VariantChoice, PartitionResult)> = None;
    for (index, (choice, graph)) in system.flatten_all().unwrap().into_iter().enumerate() {
        let problem =
            from_flat_graph(&graph, PROCESSOR_COST, |name| Some(params.params_for(name))).unwrap();
        let result = optimize_serial_reference(&problem, FeasibilityMode::PerApplication).unwrap();
        let total = result.cost.total();
        if best.as_ref().is_none_or(|(_, cost, _, _)| total < *cost) {
            best = Some((index, total, choice, result));
        }
    }
    best.expect("the scaling system always has feasible variants")
}

fn oracle_detail(result: &PartitionResult) -> String {
    format!(
        "hw=[{}] sw=[{}]",
        result.cost.hardware_tasks.join(","),
        result.cost.software_tasks.join(",")
    )
}

#[test]
fn ndjson_roundtrip_matches_the_serial_reference_with_8_workers() {
    let service = ExplorationService::start(ServiceConfig {
        workers: 8,
        batch_size: 4,
        ..ServiceConfig::default()
    });
    assert_eq!(service.worker_count(), 8);

    let request = format!(
        concat!(
            "{{\"op\":\"submit\",\"name\":\"acceptance\",",
            "\"system\":{{\"scaling\":{{\"interfaces\":{i},\"clusters\":{c}}}}},",
            "\"shards\":8,\"top_k\":4,",
            "\"evaluator\":{{\"kind\":\"partition\",\"processor_cost\":{p},",
            "\"strategy\":\"exhaustive\",\"mode\":\"per_application\",",
            "\"params\":{{\"kind\":\"hashed\",\"seed\":{s}}}}}}}\n",
            "{{\"op\":\"wait\",\"job\":0}}\n",
            "{{\"op\":\"top\",\"job\":0,\"k\":4}}\n",
            "{{\"op\":\"shutdown\"}}\n",
        ),
        i = INTERFACES,
        c = CLUSTERS,
        p = PROCESSOR_COST,
        s = SEED,
    );

    let mut output = Vec::new();
    serve(&service, request.as_bytes(), &mut output).unwrap();
    let responses: Vec<JsonValue> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|line| JsonValue::parse(line).expect("every response line is valid JSON"))
        .collect();
    assert_eq!(responses.len(), 4);
    for response in &responses {
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(true));
    }

    // Submit response: the job covers the full 32-combination space in 8 shards.
    assert_eq!(responses[0].get("job").unwrap().as_u64(), Some(0));
    assert_eq!(
        responses[0].get("combinations").unwrap().as_usize(),
        Some(32)
    );
    assert_eq!(responses[0].get("shards").unwrap().as_usize(), Some(8));

    // Wait response: drained to completion, every variant accounted.
    let status = status_from_json(&responses[1]).unwrap();
    assert_eq!(status.state, "completed");
    assert_eq!(status.combinations, 32);
    assert_eq!(status.errors, 0);
    assert_eq!(status.evaluated + status.pruned, 32);
    assert_eq!(status.feasible, status.evaluated);

    // The optimum that crossed the wire is bit-identical to the serial oracle.
    let (oracle_index, oracle_cost, oracle_choice, oracle_result) = serial_oracle();
    let best = status.best.as_ref().expect("a feasible optimum exists");
    assert_eq!(best.index, oracle_index);
    assert_eq!(best.cost, oracle_cost);
    assert_eq!(best.choice, oracle_choice, "choice survived re-interning");
    assert_eq!(best.detail, oracle_detail(&oracle_result));

    // Top response agrees with the wait response's leading entries.
    let top = responses[2].get("top").unwrap().as_array().unwrap();
    assert_eq!(top.len(), 4);
    let wire_best = spi_explore::BestVariant::from_json(&top[0]).unwrap();
    assert_eq!(wire_best.index, oracle_index);
    assert!(status.top.len() == 4 && status.top[0].index == oracle_index);
}

#[test]
fn in_process_client_matches_the_same_oracle() {
    // The in-process API must return the identical optimum — the wire adds
    // serialization, not semantics.
    let service = ExplorationService::start(ServiceConfig::with_workers(8));
    let system = scaling_system(INTERFACES, CLUSTERS).unwrap();
    let evaluator = PartitionEvaluator {
        processor_cost: PROCESSOR_COST,
        params: TaskParamsSpec::Hashed { seed: SEED },
        strategy: spi_synth::SearchStrategy::Exhaustive,
        ..PartitionEvaluator::default()
    };
    let job = service
        .submit(
            &system,
            JobSpec {
                name: "in-process".into(),
                shard_count: 8,
                top_k: 4,
                ..JobSpec::default()
            },
            Arc::new(evaluator),
        )
        .unwrap();
    let status = service.wait(job).unwrap();
    let (oracle_index, oracle_cost, oracle_choice, oracle_result) = serial_oracle();
    let best = status.best().unwrap();
    assert_eq!(best.index, oracle_index);
    assert_eq!(best.cost, oracle_cost);
    assert_eq!(best.choice, oracle_choice);
    assert_eq!(best.detail, oracle_detail(&oracle_result));
    assert_eq!(status.report.accounted(), 32);
}
