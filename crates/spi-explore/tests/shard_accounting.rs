//! Property tests for the lease protocol's accounting guarantee:
//!
//! 1. every variant index is evaluated **exactly once** across any worker
//!    count (happy path, real worker pool);
//! 2. cancel and lease-expiry mid-drain never lose or double-count a shard
//!    (chaos path, deterministic simulated workers over the same
//!    `drain_lease` + `JobRegistry` code the pool runs).
//!
//! No proptest in the offline environment, so properties are driven by the
//! repo's usual seeded-LCG case generator: a few dozen pseudo-random
//! schedules per property, reproducible by seed.
//!
//! The exactness probe: jobs run with `top_k == combinations` and a distinct
//! per-index cost, so the committed top list is a full census — it must be a
//! permutation of every index of the space, which catches both losses and
//! double-counts at per-variant (not just per-counter) granularity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spi_explore::{
    drain_lease, DrainOutcome, Evaluation, Evaluator, ExplorationService, FlushResponse,
    FnEvaluator, JobRegistry, JobSpec, JobState, Lease, ServiceConfig, ShardReport,
};
use spi_workloads::scaling_system;

/// Deterministic pseudo-random case generator (64-bit LCG, same constants as
/// the in-tree generator used by `tests/properties.rs`).
use spi_testutil::Lcg as Cases;

/// Distinct, index-derived cost: no two variants tie, so the census and the
/// serial optimum are unambiguous.
fn cost_of(index: usize) -> u64 {
    ((index as u64) * 2654435761) % 1_000_003
}

fn counting_evaluator(counters: Arc<Vec<AtomicU64>>) -> Arc<dyn Evaluator> {
    Arc::new(FnEvaluator::new(move |index, _choice, _graph| {
        counters[index].fetch_add(1, Ordering::Relaxed);
        Ok(Evaluation {
            cost: cost_of(index),
            feasible: true,
            detail: String::new(),
        })
    }))
}

/// Asserts that `top` is exactly the census of `indices` (each once, sorted by
/// the (cost, index) key).
fn assert_census(top: &[spi_explore::BestVariant], mut indices: Vec<usize>) {
    let mut seen: Vec<usize> = top.iter().map(|v| v.index).collect();
    seen.sort_unstable();
    indices.sort_unstable();
    assert_eq!(
        seen, indices,
        "census mismatch: lost or duplicated variants"
    );
    for variant in top {
        assert_eq!(
            variant.cost,
            cost_of(variant.index),
            "cost corrupted in merge"
        );
    }
    assert!(
        top.windows(2).all(|w| w[0].key() <= w[1].key()),
        "top list must stay sorted"
    );
}

#[test]
fn every_index_evaluated_exactly_once_across_worker_counts() {
    let system = scaling_system(6, 2).unwrap(); // 64 variants
    let combinations = 64usize;
    let mut cases = Cases::new(11);
    for workers in [1usize, 2, 4, 8] {
        // Vary the shard geometry and batch size per worker count.
        let shard_count = [1, 3, 8, 64][cases.below(4) as usize];
        let batch_size = 1 + cases.below(16) as usize;
        let counters: Arc<Vec<AtomicU64>> =
            Arc::new((0..combinations).map(|_| AtomicU64::new(0)).collect());
        // Hedging is off: this property asserts every *evaluator invocation*
        // happens exactly once, which speculative duplicate leases would
        // intentionally violate (accounting-exactly-once still holds under
        // hedges and is covered by the registry's hedging tests).
        let service = ExplorationService::start(ServiceConfig {
            workers,
            batch_size,
            lease_timeout: Duration::from_secs(60),
            hedge: spi_explore::HedgeConfig::disabled(),
            ..ServiceConfig::default()
        });
        let job = service
            .submit(
                &system,
                JobSpec {
                    name: format!("exact-once-{workers}w"),
                    shard_count,
                    top_k: combinations,
                    ..JobSpec::default()
                },
                counting_evaluator(Arc::clone(&counters)),
            )
            .unwrap();
        let status = service.wait(job).unwrap();
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.report.evaluated, combinations as u64);
        assert_eq!(status.report.accounted(), combinations as u64);
        let violations = spi_chaos::oracle::check_census(&status, combinations);
        assert!(violations.is_empty(), "{workers} workers: {violations:?}");
        for (index, counter) in counters.iter().enumerate() {
            assert_eq!(
                counter.load(Ordering::Relaxed),
                1,
                "variant {index} evaluated a wrong number of times with {workers} workers"
            );
        }
        assert_census(&status.report.top, (0..combinations).collect());
        // The optimum equals the serial sweep's (cost, index) minimum.
        let serial = (0..combinations).map(|i| (cost_of(i), i)).min().unwrap();
        let best = status.best().unwrap();
        assert_eq!((best.cost, best.index), serial);
    }
}

/// Drains `lease` completely against `registry` at `clock`, like a healthy
/// pool worker would.
fn drain_fully(registry: &mut JobRegistry, lease: &Lease, batch: usize, clock: Instant) {
    // The registry is behind &mut here (no real concurrency), so route flushes
    // through a queue applied after the closure returns.
    let mut flushes: Vec<(ShardReport, bool)> = Vec::new();
    let outcome = drain_lease(
        lease,
        batch,
        || false,
        |delta, is_final| {
            flushes.push((delta, is_final));
            FlushResponse::Continue
        },
    );
    assert_eq!(outcome, DrainOutcome::Completed);
    for (delta, is_final) in flushes {
        let result = if is_final {
            registry
                .complete_shard(lease.lease, delta, clock)
                .map(|_| ())
        } else {
            registry.report_batch(lease.lease, delta, clock)
        };
        result.expect("lease is live throughout a healthy drain");
    }
}

/// Simulates a worker that stages one partial batch and then dies.
fn crash_after_one_batch(registry: &mut JobRegistry, lease: &Lease, batch: usize, clock: Instant) {
    let mut first: Option<ShardReport> = None;
    let _ = drain_lease(
        lease,
        batch,
        || false,
        |delta, is_final| {
            if first.is_none() && !is_final {
                first = Some(delta);
                FlushResponse::Continue
            } else {
                FlushResponse::Stop
            }
        },
    );
    if let Some(delta) = first {
        registry
            .report_batch(lease.lease, delta, clock)
            .expect("lease is live at crash time");
    }
    // ... and the worker is never heard from again: no complete, no abandon.
}

#[test]
fn lease_expiry_chaos_never_loses_or_double_counts_a_shard() {
    let system = scaling_system(5, 2).unwrap(); // 32 variants
    let combinations = 32usize;
    let timeout = Duration::from_secs(10);
    for seed in 0..24u64 {
        let mut cases = Cases::new(seed);
        let mut registry = JobRegistry::new(timeout);
        let shard_count = 1 + cases.below(8) as usize;
        let job = registry
            .submit(
                &system,
                JobSpec {
                    name: format!("chaos-{seed}"),
                    shard_count,
                    top_k: combinations,
                    ..JobSpec::default()
                },
                counting_evaluator(Arc::new(
                    (0..combinations).map(|_| AtomicU64::new(0)).collect(),
                )),
            )
            .unwrap();
        let mut clock = Instant::now();
        let mut steps = 0;
        while !registry.poll(job).unwrap().state.is_terminal() {
            steps += 1;
            assert!(steps < 10_000, "chaos schedule failed to converge");
            let batch = 1 + cases.below(5) as usize;
            match cases.below(4) {
                // Healthy worker: drain a shard to completion.
                0 | 1 => {
                    if let Some(lease) = registry.lease(clock) {
                        drain_fully(&mut registry, &lease, batch, clock);
                    }
                }
                // Doomed worker: stage a partial batch, then silence.
                2 => {
                    if let Some(lease) = registry.lease(clock) {
                        crash_after_one_batch(&mut registry, &lease, batch, clock);
                    }
                }
                // Time passes; stale leases get reclaimed.
                _ => {
                    clock += timeout + Duration::from_millis(1);
                    registry.expire(clock);
                }
            }
        }
        let status = registry.poll(job).unwrap();
        assert_eq!(status.state, JobState::Completed, "seed {seed}");
        assert_eq!(status.report.evaluated, combinations as u64, "seed {seed}");
        assert_eq!(
            status.report.accounted(),
            combinations as u64,
            "seed {seed}"
        );
        let violations = spi_chaos::oracle::check_census(&status, combinations);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert_census(&status.report.top, (0..combinations).collect());
    }
}

#[test]
fn cancel_mid_drain_keeps_exactly_the_completed_shards() {
    let system = scaling_system(5, 2).unwrap(); // 32 variants
    let combinations = 32usize;
    for seed in 0..16u64 {
        let mut cases = Cases::new(seed.wrapping_add(1000));
        let mut registry = JobRegistry::new(Duration::from_secs(10));
        let shard_count = 2 + cases.below(7) as usize;
        let job = registry
            .submit(
                &system,
                JobSpec {
                    name: format!("cancel-{seed}"),
                    shard_count,
                    top_k: combinations,
                    ..JobSpec::default()
                },
                counting_evaluator(Arc::new(
                    (0..combinations).map(|_| AtomicU64::new(0)).collect(),
                )),
            )
            .unwrap();
        let clock = Instant::now();

        // Complete a random prefix of shards, stage a partial on one more,
        // then cancel.
        let complete = cases.below(shard_count as u64) as usize;
        let mut completed_shards = Vec::new();
        for _ in 0..complete {
            let lease = registry.lease(clock).unwrap();
            completed_shards.push(lease.shard);
            drain_fully(&mut registry, &lease, 4, clock);
        }
        if let Some(lease) = registry.lease(clock) {
            crash_after_one_batch(&mut registry, &lease, 2, clock);
        }
        let status = registry.cancel(job).unwrap();
        assert_eq!(status.state, JobState::Cancelled);

        // Exactly the indices of the completed shards survive — the staged
        // partial of the in-flight shard is gone, nothing is double-counted.
        // A shard owns the Gray ranks congruent to it, so its index set is
        // the image of those ranks under the Gray walk.
        let space = system.variant_space();
        let expected: Vec<usize> = (0..combinations)
            .filter(|rank| completed_shards.contains(&(rank % shard_count)))
            .map(|rank| space.gray_index_at(rank).unwrap())
            .collect();
        assert_eq!(
            status.report.evaluated,
            expected.len() as u64,
            "seed {seed}"
        );
        assert_eq!(status.report.accounted(), expected.len() as u64);
        assert_census(&status.report.top, expected);

        // Cancel is terminal: no lease can be granted afterwards.
        assert!(registry.lease(clock).is_none(), "seed {seed}");
    }
}

#[test]
fn requeued_shard_after_expiry_is_re_draincable_by_another_worker() {
    // Directed version of the chaos property, checking the interleaving the
    // issue calls out: worker A stages partial work, stalls past the lease
    // timeout, worker B re-leases and completes the shard, then A wakes up
    // and tries to report — A's work must be discarded, B's counted.
    let system = scaling_system(4, 2).unwrap(); // 16 variants
    let mut registry = JobRegistry::new(Duration::from_secs(5));
    let job = registry
        .submit(
            &system,
            JobSpec {
                name: "handoff".into(),
                shard_count: 2,
                top_k: 16,
                ..JobSpec::default()
            },
            counting_evaluator(Arc::new((0..16).map(|_| AtomicU64::new(0)).collect())),
        )
        .unwrap();
    let t0 = Instant::now();

    let worker_a = registry.lease(t0).unwrap();
    crash_after_one_batch(&mut registry, &worker_a, 2, t0);

    let t1 = t0 + Duration::from_secs(6);
    assert_eq!(registry.expire(t1), 1);

    // B drains both shards (A's requeued one and the other).
    while let Some(lease) = registry.lease(t1) {
        drain_fully(&mut registry, &lease, 4, t1);
    }

    // A wakes up and reports into the void.
    let late = ShardReport {
        evaluated: 99,
        ..ShardReport::default()
    };
    assert!(registry
        .report_batch(worker_a.lease, late.clone(), t1)
        .is_err());
    assert!(registry.complete_shard(worker_a.lease, late, t1).is_err());

    let status = registry.poll(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.report.evaluated, 16);
    assert_census(&status.report.top, (0..16).collect());
}
