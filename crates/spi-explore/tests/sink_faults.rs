//! Durability-sink failure paths of the registry: every mutation that
//! write-ahead-logs (submit, shard commit, cancel, compaction) must treat a
//! sink failure as a full veto — the in-memory transition must not happen,
//! the state must stay exactly as it was, and the operation must succeed
//! once the sink heals. Torn appends (record persisted, ack lost) must be
//! deduplicated by recovery.
//!
//! These tests drive the faults through `spi-chaos`'s scripted
//! [`FaultSink`], the same decorator the simulation harness uses.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use spi_chaos::{AppendFault, FaultScript, FaultSink};
use spi_explore::{
    drain_lease, rebuild_from_recipe, DrainOutcome, ExploreError, FlushResponse, JobRegistry,
    JobSpec, JobState, Lease, MemoryStore, ShardReport,
};
use spi_model::json::JsonValue;

const COMBINATIONS: usize = 16;

fn recipe() -> JsonValue {
    JsonValue::parse(
        r#"{"system":{"scaling":{"interfaces":4,"clusters":2}},"evaluator":{"kind":"partition","processor_cost":15,"strategy":"exhaustive","mode":"per_application","params":{"kind":"hashed","seed":42}}}"#,
    )
    .unwrap()
}

struct Rig {
    registry: JobRegistry,
    store: Arc<Mutex<MemoryStore>>,
    script: Arc<Mutex<FaultScript>>,
    clock: Instant,
}

impl Rig {
    fn new() -> Rig {
        let store = Arc::new(Mutex::new(MemoryStore::default()));
        let script = Arc::new(Mutex::new(FaultScript::default()));
        let mut registry = JobRegistry::new(Duration::from_secs(10));
        registry.set_sink(Box::new(FaultSink::new(
            Arc::clone(&store),
            Arc::clone(&script),
        )));
        Rig {
            registry,
            store,
            script,
            clock: Instant::now(),
        }
    }

    fn arm(&self, fault: AppendFault) {
        self.script.lock().unwrap().appends.push_back(fault);
    }

    fn submit(&mut self) -> spi_explore::Result<spi_explore::JobId> {
        let (system, evaluator) = rebuild_from_recipe(&recipe()).unwrap();
        self.registry.submit_with_recipe(
            &system,
            JobSpec {
                name: "sink-faults".into(),
                shard_count: 4,
                top_k: COMBINATIONS,
                ..JobSpec::default()
            },
            evaluator,
            Some(recipe()),
        )
    }

    fn records(&self) -> usize {
        self.store.lock().unwrap().records.len()
    }

    /// Evaluates the lease's whole shard into one final delta (no flushes
    /// applied to the registry — the caller decides how to commit it).
    fn evaluate(lease: &Lease) -> ShardReport {
        let mut merged = ShardReport::default();
        let outcome = drain_lease(
            lease,
            COMBINATIONS,
            || false,
            |delta, _is_final| {
                merged.merge(&delta, COMBINATIONS);
                FlushResponse::Continue
            },
        );
        assert_eq!(outcome, DrainOutcome::Completed);
        merged
    }
}

#[test]
fn submit_through_a_failing_sink_registers_nothing_and_heals() {
    let mut rig = Rig::new();
    rig.arm(AppendFault::Fail);
    let refused = rig.submit();
    assert!(
        matches!(refused, Err(ExploreError::Store(_))),
        "{refused:?}"
    );
    assert!(
        rig.registry.job_ids().is_empty(),
        "vetoed submit must not register"
    );
    assert!(
        rig.registry.lease(rig.clock).is_none(),
        "nothing may be leased"
    );
    assert_eq!(rig.records(), 0, "nothing may be persisted");

    // Healed: the identical submission goes through.
    let job = rig.submit().expect("sink healed");
    assert_eq!(rig.registry.poll(job).unwrap().state, JobState::Running);
    assert_eq!(rig.records(), 1);
}

#[test]
fn vetoed_commit_leaves_state_unchanged_and_the_same_delta_retries() {
    let mut rig = Rig::new();
    let job = rig.submit().unwrap();
    let lease = rig.registry.lease(rig.clock).unwrap();
    let delta = Rig::evaluate(&lease);

    rig.arm(AppendFault::Fail);
    let before = rig.registry.poll(job).unwrap();
    let vetoed = rig
        .registry
        .complete_shard(lease.lease, delta.clone(), rig.clock);
    assert!(matches!(vetoed, Err(ExploreError::Store(_))), "{vetoed:?}");
    let after = rig.registry.poll(job).unwrap();
    assert_eq!(
        after.shards_done, before.shards_done,
        "commit must be vetoed"
    );
    assert_eq!(
        after.report.evaluated, before.report.evaluated,
        "staged census must be unchanged by the veto"
    );

    // The lease survived the veto: the very same delta commits cleanly and
    // nothing is double-counted.
    rig.registry
        .complete_shard(lease.lease, delta, rig.clock)
        .expect("same-delta retry is safe");
    let done = rig.registry.poll(job).unwrap();
    assert_eq!(done.shards_done, 1);
    assert_eq!(done.report.accounted(), (COMBINATIONS / 4) as u64);
}

#[test]
fn a_twice_vetoed_shard_stays_re_leasable_after_abandon() {
    let mut rig = Rig::new();
    let job = rig
        .registry
        .submit_with_recipe(
            &rebuild_from_recipe(&recipe()).unwrap().0,
            JobSpec {
                name: "sink-faults".into(),
                shard_count: 1,
                top_k: COMBINATIONS,
                ..JobSpec::default()
            },
            rebuild_from_recipe(&recipe()).unwrap().1,
            Some(recipe()),
        )
        .unwrap();
    let lease = rig.registry.lease(rig.clock).unwrap();
    let delta = Rig::evaluate(&lease);

    rig.arm(AppendFault::Fail);
    rig.arm(AppendFault::Fail);
    assert!(rig
        .registry
        .complete_shard(lease.lease, delta.clone(), rig.clock)
        .is_err());
    assert!(rig
        .registry
        .complete_shard(lease.lease, delta, rig.clock)
        .is_err());
    rig.registry.abandon(lease.lease);

    // The shard went back to the queue; a fresh lease finishes the job with
    // an exact census — the abandoned attempts left no residue.
    let lease = rig.registry.lease(rig.clock).expect("shard re-leasable");
    let delta = Rig::evaluate(&lease);
    rig.registry
        .complete_shard(lease.lease, delta, rig.clock)
        .expect("healed sink commits");
    let status = rig.registry.poll(job).unwrap();
    assert_eq!(status.state, JobState::Completed);
    assert_eq!(status.report.accounted(), COMBINATIONS as u64);
}

#[test]
fn vetoed_cancel_keeps_the_job_running_and_heals() {
    let mut rig = Rig::new();
    let job = rig.submit().unwrap();
    rig.arm(AppendFault::Fail);
    let vetoed = rig.registry.cancel(job);
    assert!(matches!(vetoed, Err(ExploreError::Store(_))), "{vetoed:?}");
    assert_eq!(
        rig.registry.poll(job).unwrap().state,
        JobState::Running,
        "vetoed cancel must leave the job running"
    );
    assert!(
        rig.registry.lease(rig.clock).is_some(),
        "a running job's shards stay leasable after a vetoed cancel"
    );

    let status = rig.registry.cancel(job).expect("healed sink cancels");
    assert_eq!(status.state, JobState::Cancelled);
}

#[test]
fn vetoed_compaction_keeps_the_log_replayable() {
    let mut rig = Rig::new();
    let job = rig.submit().unwrap();
    let lease = rig.registry.lease(rig.clock).unwrap();
    let delta = Rig::evaluate(&lease);
    rig.registry
        .complete_shard(lease.lease, delta, rig.clock)
        .unwrap();
    let records_before = rig.records();
    assert!(records_before >= 2, "submit + shard records expected");

    rig.script.lock().unwrap().compacts = 1;
    assert!(rig.registry.compact_store().is_err());
    let store = rig.store.lock().unwrap();
    assert!(
        store.snapshot.is_none(),
        "failed compaction must not snapshot"
    );
    assert_eq!(store.records.len(), records_before, "log must be untouched");
    drop(store);

    // The untouched log still recovers the exact committed state.
    let (snapshot, records) = {
        let store = rig.store.lock().unwrap();
        (store.snapshot.clone(), store.records.clone())
    };
    let mut recovered = JobRegistry::new(Duration::from_secs(10));
    recovered
        .restore(snapshot.as_ref(), &records, &rebuild_from_recipe)
        .unwrap();
    assert_eq!(recovered.poll(job).unwrap().shards_done, 1);
}

#[test]
fn torn_commit_appends_are_deduplicated_by_recovery() {
    let mut rig = Rig::new();
    let job = rig.submit().unwrap();
    let lease = rig.registry.lease(rig.clock).unwrap();
    let delta = Rig::evaluate(&lease);

    // The append lands but the ack is lost: the worker-side retry persists a
    // second, identical commit record.
    rig.arm(AppendFault::Torn);
    assert!(rig
        .registry
        .complete_shard(lease.lease, delta.clone(), rig.clock)
        .is_err());
    rig.registry
        .complete_shard(lease.lease, delta, rig.clock)
        .expect("retry commits");
    assert_eq!(
        rig.records(),
        3,
        "submit + torn shard record + retried shard record"
    );

    // Recovery replays both records but counts the shard once.
    let (snapshot, records) = {
        let store = rig.store.lock().unwrap();
        (store.snapshot.clone(), store.records.clone())
    };
    let mut recovered = JobRegistry::new(Duration::from_secs(10));
    recovered
        .restore(snapshot.as_ref(), &records, &rebuild_from_recipe)
        .unwrap();
    let status = recovered.poll(job).unwrap();
    assert_eq!(
        status.shards_done, 1,
        "duplicate record must not double-commit"
    );
    assert_eq!(
        status.report.accounted(),
        (COMBINATIONS / 4) as u64,
        "census must not double-count the torn append"
    );
}
